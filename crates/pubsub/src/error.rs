//! Error type for broker, producer and consumer operations.

use std::fmt;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the pub/sub layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The referenced topic does not exist.
    UnknownTopic(String),
    /// A topic with this name already exists.
    TopicExists(String),
    /// The referenced partition index is out of range for the topic.
    UnknownPartition {
        /// Topic name.
        topic: String,
        /// Requested partition index.
        partition: u32,
    },
    /// A read referenced an offset below the log's start (compacted or
    /// retention-trimmed) or beyond its end.
    OffsetOutOfRange {
        /// Requested offset.
        requested: u64,
        /// First offset still stored.
        start: u64,
        /// One past the last stored offset.
        end: u64,
    },
    /// The consumer was fenced by a group rebalance and must re-poll
    /// to pick up its new assignment. Transient by design.
    RebalanceInProgress,
    /// A configuration parameter is invalid (e.g. zero partitions).
    InvalidConfig(String),
    /// A stored segment failed checksum or framing validation.
    Corrupt(String),
    /// An underlying file operation failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTopic(name) => write!(f, "unknown topic `{name}`"),
            Error::TopicExists(name) => write!(f, "topic `{name}` already exists"),
            Error::UnknownPartition { topic, partition } => {
                write!(f, "topic `{topic}` has no partition {partition}")
            }
            Error::OffsetOutOfRange {
                requested,
                start,
                end,
            } => write!(
                f,
                "offset {requested} out of range (log covers [{start}, {end}))"
            ),
            Error::RebalanceInProgress => write!(f, "group rebalance in progress, poll again"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt log data: {msg}"),
            Error::Io(err) => write!(f, "i/o failure: {err}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::UnknownTopic("t".into()).to_string().contains("`t`"));
        let e = Error::OffsetOutOfRange {
            requested: 7,
            start: 10,
            end: 20,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("[10, 20)"));
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("disk"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
