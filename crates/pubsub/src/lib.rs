//! `strata-pubsub` — an in-process publish/subscribe broker.
//!
//! This crate is the pub/sub substrate of the STRATA reproduction,
//! standing in for the Apache Kafka deployment of the paper's
//! prototype (§4: the *Raw Data Connector* and *Event Connector*
//! modules "run in Apache Kafka"). It follows Kafka's storage and
//! consumption model:
//!
//! * named **topics** split into **partitions**;
//! * each partition is an append-only, offset-addressed **log**,
//!   either memory-resident or file-backed with segment files;
//! * **producers** append records, picking the partition by key hash
//!   (or sticky round-robin for keyless records);
//! * **consumers** poll records at their own pace; consumers sharing
//!   a **group** split the partitions among themselves and can
//!   **commit** offsets to resume after a restart;
//! * optional per-partition **retention** bounds the log.
//!
//! Unlike Kafka there is no network: producers and consumers must
//! live in the same process as the [`Broker`]. That preserves what
//! STRATA actually needs from the connector layer — decoupling of
//! modules, multiple independent subscribers, replay from arbitrary
//! offsets — while keeping the reproduction self-contained.
//!
//! # Example
//!
//! ```
//! use strata_pubsub::{Broker, TopicConfig};
//!
//! let broker = Broker::new();
//! broker.create_topic("ot-images", TopicConfig::new(2))?;
//! let producer = broker.producer();
//! producer.send("ot-images", Some(b"job-1"), b"layer-0 bytes".to_vec())?;
//!
//! let mut consumer = broker.consumer("monitor-group", &["ot-images"])?;
//! let records = consumer.poll(std::time::Duration::from_millis(100))?;
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].record.value.as_ref(), b"layer-0 bytes");
//! consumer.commit()?;
//! # Ok::<(), strata_pubsub::Error>(())
//! ```

pub mod broker;
pub mod checksum;
pub mod consumer;
pub mod error;
pub mod log;
pub mod offsets;
pub mod producer;
pub mod record;
pub mod retention;
pub mod topic;
pub mod wire;

pub use broker::{Broker, TopicConfig};
pub use consumer::{Consumer, PolledRecord};
pub use error::{Error, Result};
pub use log::{segment_tails_truncated, LogKind, SyncPolicy};
pub use offsets::OffsetStore;
pub use producer::Producer;
pub use record::{Record, StoredRecord};
pub use retention::RetentionPolicy;
