//! Consumers: poll records, coordinate through groups, commit
//! offsets.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::broker::BrokerInner;
use crate::error::{Error, Result};
use crate::record::Record;

/// A record returned by [`Consumer::poll`], annotated with where it
/// came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolledRecord {
    /// Topic the record was read from.
    pub topic: String,
    /// Partition within the topic.
    pub partition: u32,
    /// The record's offset in that partition.
    pub offset: u64,
    /// The record itself.
    pub record: Record,
}

/// A group member reading records from its assigned partitions.
///
/// A consumer starts at the group's committed offset for each
/// assigned partition (or at the partition's start when nothing was
/// committed). Positions advance as records are polled;
/// [`commit`](Consumer::commit) persists them in the broker so a
/// successor in the same group resumes where this consumer left off.
///
/// Dropping the consumer leaves the group, triggering a rebalance of
/// its partitions onto the surviving members.
pub struct Consumer {
    inner: Arc<BrokerInner>,
    group: String,
    member_id: u64,
    generation: u64,
    assignment: Vec<(String, u32)>,
    positions: HashMap<(String, u32), u64>,
    appends_seen: u64,
    max_poll_records: usize,
}

impl std::fmt::Debug for Consumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("group", &self.group)
            .field("member_id", &self.member_id)
            .field("assignment", &self.assignment)
            .finish()
    }
}

impl Consumer {
    pub(crate) fn register(inner: Arc<BrokerInner>, group: String, topics: Vec<String>) -> Self {
        let member_id = inner.register_member(&group, &topics);
        Consumer {
            inner,
            group,
            member_id,
            generation: 0, // Stale on purpose: first poll fetches the assignment.
            assignment: Vec::new(),
            positions: HashMap::new(),
            appends_seen: 0,
            max_poll_records: 500,
        }
    }

    /// This consumer's broker-assigned member id.
    pub fn member_id(&self) -> u64 {
        self.member_id
    }

    /// The group this consumer belongs to.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Caps how many records a single [`poll`](Consumer::poll)
    /// returns (default 500).
    pub fn set_max_poll_records(&mut self, max: usize) {
        self.max_poll_records = max.max(1);
    }

    /// The partitions currently assigned to this consumer. Empty
    /// until the first poll after joining or a rebalance.
    pub fn assignment(&self) -> &[(String, u32)] {
        &self.assignment
    }

    fn refresh_assignment(&mut self) -> Result<()> {
        let (generation, assignment) = self.inner.assignment_for(&self.group, self.member_id)?;
        if generation == self.generation && !self.assignment.is_empty() {
            return Ok(());
        }
        self.generation = generation;
        self.assignment = assignment;
        self.positions.clear();
        let groups = self.inner.groups.lock();
        let committed = groups.get(&self.group).map(|g| &g.offsets);
        for (topic, partition) in &self.assignment {
            let key = (topic.clone(), *partition);
            let position = match committed.and_then(|offsets| offsets.get(&key).copied()) {
                Some(committed) => committed,
                // No committed offset: start from the log's start.
                None => self.inner.topic(topic)?.offsets(*partition)?.0,
            };
            self.positions.insert(key, position);
        }
        Ok(())
    }

    /// Fetches available records from the assigned partitions,
    /// blocking up to `timeout` when none are immediately available.
    /// An empty vector after `timeout` means no data arrived.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if a subscribed topic was deleted,
    /// or storage errors. [`Error::OffsetOutOfRange`] is handled
    /// internally by snapping to the log start (retention may trim
    /// records this consumer had not read yet).
    pub fn poll(&mut self, timeout: Duration) -> Result<Vec<PolledRecord>> {
        let deadline = Instant::now() + timeout;
        loop {
            self.refresh_assignment()?;
            let mut out = Vec::new();
            for (topic_name, partition) in self.assignment.clone() {
                if out.len() >= self.max_poll_records {
                    break;
                }
                let key = (topic_name.clone(), partition);
                let position = *self.positions.get(&key).expect("assigned partition");
                let topic = self.inner.topic(&topic_name)?;
                let batch = match topic.read(partition, position, self.max_poll_records - out.len())
                {
                    Ok(batch) => batch,
                    Err(Error::OffsetOutOfRange { start, .. }) => {
                        // Retention trimmed past our position: snap forward.
                        self.positions.insert(key.clone(), start);
                        topic.read(partition, start, self.max_poll_records - out.len())?
                    }
                    Err(other) => return Err(other),
                };
                if let Some(last) = batch.last() {
                    self.positions.insert(key, last.offset + 1);
                }
                out.extend(batch.into_iter().map(|stored| PolledRecord {
                    topic: topic_name.clone(),
                    partition,
                    offset: stored.offset,
                    record: stored.record,
                }));
            }
            if !out.is_empty() {
                return Ok(out);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            self.inner
                .wait_for_data(&mut self.appends_seen, deadline - now);
        }
    }

    /// Commits the current positions to the broker, making them the
    /// group's resume points. With a durable offset store configured
    /// on the broker, the positions are persisted before the
    /// in-memory group state acknowledges them.
    ///
    /// # Errors
    ///
    /// I/O failures writing the broker's durable offset store, when
    /// one is configured.
    pub fn commit(&mut self) -> Result<()> {
        for ((topic, partition), &position) in &self.positions {
            self.inner
                .persist_offset(&self.group, topic, *partition, position)?;
        }
        let mut groups = self.inner.groups.lock();
        if let Some(state) = groups.get_mut(&self.group) {
            for (key, &position) in &self.positions {
                state.offsets.insert(key.clone(), position);
            }
        }
        Ok(())
    }

    /// Moves this consumer's position on one partition.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the partition is not assigned to
    /// this consumer.
    pub fn seek(&mut self, topic: &str, partition: u32, offset: u64) -> Result<()> {
        let key = (topic.to_string(), partition);
        if !self.positions.contains_key(&key) {
            // The assignment may simply not have been fetched yet.
            self.refresh_assignment()?;
        }
        match self.positions.get_mut(&key) {
            Some(position) => {
                *position = offset;
                Ok(())
            }
            None => Err(Error::InvalidConfig(format!(
                "partition {topic}/{partition} is not assigned to this consumer"
            ))),
        }
    }

    /// Rewinds every assigned partition to its first stored record.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if a subscribed topic was deleted.
    pub fn seek_to_beginning(&mut self) -> Result<()> {
        self.refresh_assignment()?;
        for (topic, partition) in self.assignment.clone() {
            let (start, _) = self.inner.topic(&topic)?.offsets(partition)?;
            self.positions.insert((topic, partition), start);
        }
        Ok(())
    }

    /// Fast-forwards every assigned partition past all stored
    /// records, so only new data is polled.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if a subscribed topic was deleted.
    pub fn seek_to_end(&mut self) -> Result<()> {
        self.refresh_assignment()?;
        for (topic, partition) in self.assignment.clone() {
            let (_, end) = self.inner.topic(&topic)?.offsets(partition)?;
            self.positions.insert((topic, partition), end);
        }
        Ok(())
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        self.inner.deregister_member(&self.group, self.member_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{Broker, TopicConfig};

    fn broker_with(topic: &str, partitions: u32) -> Broker {
        let broker = Broker::new();
        broker
            .create_topic(topic, TopicConfig::new(partitions))
            .unwrap();
        broker
    }

    #[test]
    fn polls_produced_records() {
        let broker = broker_with("t", 1);
        let producer = broker.producer();
        producer.send("t", None, "a").unwrap();
        producer.send("t", None, "b").unwrap();
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        let got = consumer.poll(Duration::from_millis(100)).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].record.value.as_ref(), b"a");
        assert_eq!(got[1].offset, 1);
    }

    #[test]
    fn poll_times_out_without_data() {
        let broker = broker_with("t", 1);
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        let start = Instant::now();
        let got = consumer.poll(Duration::from_millis(50)).unwrap();
        assert!(got.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn blocked_poll_wakes_on_produce() {
        let broker = broker_with("t", 1);
        let producer = broker.producer();
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        let handle = std::thread::spawn(move || consumer.poll(Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        producer.send("t", None, "late").unwrap();
        let got = handle.join().unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn independent_groups_both_see_everything() {
        let broker = broker_with("t", 2);
        let producer = broker.producer();
        for n in 0..10u8 {
            producer.send("t", Some(&[n]), vec![n]).unwrap();
        }
        for group in ["g1", "g2"] {
            let mut consumer = broker.consumer(group, &["t"]).unwrap();
            let got = consumer.poll(Duration::from_millis(100)).unwrap();
            assert_eq!(got.len(), 10, "group {group}");
        }
    }

    #[test]
    fn committed_offsets_resume_a_group() {
        let broker = broker_with("t", 1);
        let producer = broker.producer();
        for n in 0..6u8 {
            producer.send("t", None, vec![n]).unwrap();
        }
        {
            let mut c = broker.consumer("g", &["t"]).unwrap();
            c.set_max_poll_records(4);
            let got = c.poll(Duration::from_millis(100)).unwrap();
            assert_eq!(got.len(), 4);
            c.commit().unwrap();
        } // Consumer gone; offsets live in the group.
        let mut c2 = broker.consumer("g", &["t"]).unwrap();
        let got = c2.poll(Duration::from_millis(100)).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].offset, 4);
    }

    #[test]
    fn group_members_split_the_stream() {
        let broker = broker_with("t", 2);
        let producer = broker.producer();
        let mut c1 = broker.consumer("g", &["t"]).unwrap();
        let mut c2 = broker.consumer("g", &["t"]).unwrap();
        for n in 0..20u8 {
            producer.send("t", Some(&[n]), vec![n]).unwrap();
        }
        let got1 = c1.poll(Duration::from_millis(100)).unwrap();
        let got2 = c2.poll(Duration::from_millis(100)).unwrap();
        assert_eq!(got1.len() + got2.len(), 20);
        assert!(!got1.is_empty() && !got2.is_empty());
        // No overlap between the two members.
        let p1: std::collections::HashSet<u32> = got1.iter().map(|r| r.partition).collect();
        let p2: std::collections::HashSet<u32> = got2.iter().map(|r| r.partition).collect();
        assert!(p1.is_disjoint(&p2));
    }

    #[test]
    fn seek_to_end_skips_history() {
        let broker = broker_with("t", 1);
        let producer = broker.producer();
        producer.send("t", None, "old").unwrap();
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        consumer.seek_to_end().unwrap();
        producer.send("t", None, "new").unwrap();
        let got = consumer.poll(Duration::from_millis(100)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].record.value.as_ref(), b"new");
    }

    #[test]
    fn seek_replays_from_arbitrary_offset() {
        let broker = broker_with("t", 1);
        let producer = broker.producer();
        for n in 0..5u8 {
            producer.send("t", None, vec![n]).unwrap();
        }
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        let _ = consumer.poll(Duration::from_millis(50)).unwrap();
        consumer.seek("t", 0, 2).unwrap();
        let got = consumer.poll(Duration::from_millis(50)).unwrap();
        assert_eq!(got[0].offset, 2);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn retention_snaps_position_forward() {
        let broker = Broker::new();
        broker
            .create_topic(
                "t",
                TopicConfig::new(1).with_retention(
                    crate::retention::RetentionPolicy::default().with_max_records(2),
                ),
            )
            .unwrap();
        let producer = broker.producer();
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        producer.send("t", None, "a").unwrap();
        let _ = consumer.poll(Duration::from_millis(50)).unwrap();
        // Produce enough that offset 1 is trimmed away.
        for n in 0..5u8 {
            producer.send("t", None, vec![n]).unwrap();
        }
        let got = consumer.poll(Duration::from_millis(100)).unwrap();
        assert!(!got.is_empty(), "must recover instead of erroring");
        assert!(got[0].offset >= 1);
    }
}
