//! Partition logs: append-only, offset-addressed record storage.
//!
//! Two implementations back a partition:
//!
//! * [`MemoryLog`] — records held in memory; fast, lost on drop.
//! * [`FileLog`] — records framed into segment files (see
//!   [`wire`]) that roll at a configurable size, with
//!   crash recovery by re-scanning segments on open and retention by
//!   deleting whole segments.

use std::collections::VecDeque;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use strata_chaos::{fsync_dir, ChaosFile};

use crate::error::{Error, Result};
use crate::record::{Record, StoredRecord};
use crate::wire;

/// Failpoint prefix for segment I/O (`pubsub.segment.write`,
/// `pubsub.segment.sync`).
const CHAOS_POINT: &str = "pubsub.segment";

/// Count of torn segment tails truncated during recovery since
/// process start (see [`segment_tails_truncated`]).
static TAILS_TRUNCATED: AtomicU64 = AtomicU64::new(0);

/// Times a torn segment tail was truncated on [`FileLog::open`],
/// process-wide. Mirrors `strata_kv::wal_tails_truncated`.
#[must_use]
pub fn segment_tails_truncated() -> u64 {
    TAILS_TRUNCATED.load(Ordering::Relaxed)
}

/// When a [`FileLog`] issues an `fsync` for appended records.
///
/// Same contract as the kv store's policy (duplicated here to keep
/// substrate crates independent): after a crash, recovery yields every
/// record up to the last successful sync, and possibly more.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append.
    Always,
    /// `fsync` once every `n` appends.
    EveryN(u32),
    /// Never `fsync` explicitly (historical behavior; the default).
    #[default]
    Never,
}

/// Which storage backs a topic's partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogKind {
    /// Keep records in memory only.
    Memory,
    /// Persist records into segment files under `dir`
    /// (one subdirectory per partition), rolling segments at
    /// `segment_bytes`.
    File {
        /// Root directory for this topic's partition logs.
        dir: PathBuf,
        /// Maximum byte size of one segment file before rolling.
        segment_bytes: u64,
        /// When appends are `fsync`ed.
        sync: SyncPolicy,
    },
}

/// The storage interface a partition requires.
pub trait PartitionLog: Send {
    /// Appends `record`, returning the offset it was assigned.
    ///
    /// # Errors
    ///
    /// I/O failures for file-backed logs.
    fn append(&mut self, record: Record) -> Result<u64>;

    /// Reads up to `max_records` records starting at `offset`
    /// (inclusive). An `offset` equal to [`end_offset`] yields an
    /// empty vector; an offset below [`start_offset`] or above the end
    /// is an error.
    ///
    /// # Errors
    ///
    /// [`Error::OffsetOutOfRange`], [`Error::Corrupt`], or I/O
    /// failures.
    ///
    /// [`end_offset`]: PartitionLog::end_offset
    /// [`start_offset`]: PartitionLog::start_offset
    fn read_from(&mut self, offset: u64, max_records: usize) -> Result<Vec<StoredRecord>>;

    /// The first offset still stored (moves up under retention).
    fn start_offset(&self) -> u64;

    /// One past the last stored offset.
    fn end_offset(&self) -> u64;

    /// Drops all records with offsets strictly below `offset`
    /// (file-backed logs drop whole segments, so they may retain
    /// slightly more). Returns the new start offset.
    ///
    /// # Errors
    ///
    /// I/O failures when deleting segment files.
    fn truncate_before(&mut self, offset: u64) -> Result<u64>;

    /// Total payload bytes currently stored (approximate for
    /// file-backed logs: framed size on disk).
    fn size_bytes(&self) -> u64;

    /// Number of records currently stored.
    fn len(&self) -> u64 {
        self.end_offset() - self.start_offset()
    }

    /// `true` when no records are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn out_of_range(requested: u64, start: u64, end: u64) -> Error {
    Error::OffsetOutOfRange {
        requested,
        start,
        end,
    }
}

/// A memory-resident partition log.
#[derive(Debug, Default)]
pub struct MemoryLog {
    records: VecDeque<StoredRecord>,
    start: u64,
    bytes: u64,
}

impl MemoryLog {
    /// Creates an empty log starting at offset 0.
    pub fn new() -> Self {
        MemoryLog::default()
    }
}

impl PartitionLog for MemoryLog {
    fn append(&mut self, record: Record) -> Result<u64> {
        let offset = self.end_offset();
        self.bytes += record.payload_size() as u64;
        self.records.push_back(StoredRecord { offset, record });
        Ok(offset)
    }

    fn read_from(&mut self, offset: u64, max_records: usize) -> Result<Vec<StoredRecord>> {
        let end = self.end_offset();
        if offset < self.start || offset > end {
            return Err(out_of_range(offset, self.start, end));
        }
        let skip = (offset - self.start) as usize;
        Ok(self
            .records
            .iter()
            .skip(skip)
            .take(max_records)
            .cloned()
            .collect())
    }

    fn start_offset(&self) -> u64 {
        self.start
    }

    fn end_offset(&self) -> u64 {
        self.start + self.records.len() as u64
    }

    fn truncate_before(&mut self, offset: u64) -> Result<u64> {
        while self.start < offset.min(self.end_offset()) {
            if let Some(dropped) = self.records.pop_front() {
                self.bytes -= dropped.record.payload_size() as u64;
            }
            self.start += 1;
        }
        Ok(self.start)
    }

    fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

/// One segment file of a [`FileLog`]: its base offset, the byte
/// position of every stored frame, and the file size.
#[derive(Debug)]
struct Segment {
    base_offset: u64,
    path: PathBuf,
    /// `positions[i]` is the byte position of offset `base_offset + i`.
    positions: Vec<u64>,
    bytes: u64,
}

impl Segment {
    fn file_name(base_offset: u64) -> String {
        format!("{base_offset:020}.seg")
    }

    fn next_offset(&self) -> u64 {
        self.base_offset + self.positions.len() as u64
    }
}

/// A file-backed partition log with rolling segments.
#[derive(Debug)]
pub struct FileLog {
    dir: PathBuf,
    segment_bytes: u64,
    sync: SyncPolicy,
    /// Appends since the last sync (for `EveryN`).
    unsynced: u32,
    segments: Vec<Segment>,
    writer: Option<ChaosFile>,
    scratch: Vec<u8>,
}

impl FileLog {
    /// Opens (or creates) the log stored under `dir`, recovering
    /// existing segments by re-scanning their frames. A torn tail in
    /// the *final* segment (crash mid-append) is truncated away, like
    /// the kv WAL's tail rule; corruption anywhere else is an error.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`Error::Corrupt`] if a recovered segment
    /// fails validation.
    pub fn open(dir: impl Into<PathBuf>, segment_bytes: u64, sync: SyncPolicy) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments: Vec<Segment> = Vec::new();
        let mut names: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        names.sort();
        let last = names.len().saturating_sub(1);
        for (i, path) in names.iter().enumerate() {
            let segment = Self::recover_segment(path, i == last)?;
            if let Some(prev) = segments.last() {
                if segment.base_offset != prev.next_offset() {
                    return Err(Error::Corrupt(format!(
                        "segment {:?}: base offset {} does not continue previous segment \
                         (expected {})",
                        segment.path,
                        segment.base_offset,
                        prev.next_offset()
                    )));
                }
            }
            segments.push(segment);
        }
        Ok(FileLog {
            dir,
            segment_bytes: segment_bytes.max(1),
            sync,
            unsynced: 0,
            segments,
            writer: None,
            scratch: Vec::new(),
        })
    }

    /// A frame that fails to decode only because the file ran out of
    /// bytes is a torn tail from a crash mid-append — safe to discard.
    fn is_torn_tail(data: &[u8]) -> bool {
        if data.len() < 4 {
            return true;
        }
        let body_len = u32::from_le_bytes(data[..4].try_into().expect("len 4")) as usize;
        data.len() < 4 + body_len + 4
    }

    fn recover_segment(path: &Path, is_final: bool) -> Result<Segment> {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| Error::Corrupt(format!("bad segment name {path:?}")))?;
        let base_offset: u64 = stem
            .parse()
            .map_err(|_| Error::Corrupt(format!("bad segment name {path:?}")))?;
        let data = fs::read(path)?;
        let mut positions = Vec::new();
        let mut pos = 0u64;
        let mut expected = base_offset;
        while (pos as usize) < data.len() {
            match wire::decode_frame(&data[pos as usize..]) {
                Ok((stored, used)) => {
                    if stored.offset != expected {
                        return Err(Error::Corrupt(format!(
                            "segment {path:?}: offset {} where {expected} expected",
                            stored.offset
                        )));
                    }
                    positions.push(pos);
                    pos += used as u64;
                    expected += 1;
                }
                // Only the final segment can legitimately end mid-frame
                // (the crash happened while appending to it); a complete
                // frame that fails its checksum is real corruption.
                Err(_) if is_final && Self::is_torn_tail(&data[pos as usize..]) => {
                    let file = fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(pos)?;
                    file.sync_data()?;
                    TAILS_TRUNCATED.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(err) => return Err(err),
            }
        }
        Ok(Segment {
            base_offset,
            path: path.to_path_buf(),
            positions,
            bytes: pos,
        })
    }

    fn roll_segment(&mut self, base_offset: u64) -> Result<()> {
        let path = self.dir.join(Segment::file_name(base_offset));
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if self.sync != SyncPolicy::Never {
            // Make the new segment's directory entry durable.
            fsync_dir(&self.dir)?;
        }
        self.segments.push(Segment {
            base_offset,
            path: path.clone(),
            positions: Vec::new(),
            bytes: 0,
        });
        self.writer = Some(ChaosFile::new(CHAOS_POINT, path, file)?);
        Ok(())
    }

    fn active_is_full(&self) -> bool {
        self.segments
            .last()
            .is_none_or(|s| s.bytes >= self.segment_bytes)
    }

    /// Ensures a writable active segment exists: reuses the recovered
    /// final segment while it has room (so recovery does not strand
    /// partially filled segments), rolling a fresh one otherwise.
    fn ensure_writer(&mut self) -> Result<()> {
        if self.writer.is_some() && !self.active_is_full() {
            return Ok(());
        }
        if self.writer.is_none() && !self.active_is_full() {
            let last = self.segments.last().expect("non-full implies a segment");
            let file = fs::OpenOptions::new().append(true).open(&last.path)?;
            self.writer = Some(ChaosFile::new(CHAOS_POINT, last.path.clone(), file)?);
            return Ok(());
        }
        let next = self.end_offset();
        self.roll_segment(next)
    }

    fn segment_for(&self, offset: u64) -> Option<&Segment> {
        match self
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(i) => Some(&self.segments[i]),
            Err(0) => None,
            Err(i) => Some(&self.segments[i - 1]),
        }
    }
}

impl PartitionLog for FileLog {
    fn append(&mut self, record: Record) -> Result<u64> {
        self.ensure_writer()?;
        let offset = self.end_offset();
        let stored = StoredRecord { offset, record };
        self.scratch.clear();
        wire::encode_frame(&stored, &mut self.scratch);
        let writer = self.writer.as_mut().expect("writer ensured above");
        writer.write_all(&self.scratch)?;
        writer.flush()?;
        match self.sync {
            SyncPolicy::Always => writer.sync_data()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    writer.sync_data()?;
                    self.unsynced = 0;
                }
            }
            SyncPolicy::Never => {}
        }
        let segment = self.segments.last_mut().expect("segment ensured above");
        segment.positions.push(segment.bytes);
        segment.bytes += self.scratch.len() as u64;
        Ok(offset)
    }

    fn read_from(&mut self, offset: u64, max_records: usize) -> Result<Vec<StoredRecord>> {
        let (start, end) = (self.start_offset(), self.end_offset());
        if offset < start || offset > end {
            return Err(out_of_range(offset, start, end));
        }
        let mut out = Vec::new();
        let mut cursor = offset;
        while out.len() < max_records && cursor < end {
            let segment = self
                .segment_for(cursor)
                .ok_or_else(|| out_of_range(cursor, start, end))?;
            let within = (cursor - segment.base_offset) as usize;
            let pos = segment.positions[within];
            let mut file = fs::File::open(&segment.path)?;
            file.seek(SeekFrom::Start(pos))?;
            let mut data = Vec::new();
            file.read_to_end(&mut data)?;
            let mut at = 0usize;
            let last_in_segment = segment.next_offset();
            while out.len() < max_records && cursor < last_in_segment {
                let (stored, used) = wire::decode_frame(&data[at..])?;
                debug_assert_eq!(stored.offset, cursor);
                out.push(stored);
                at += used;
                cursor += 1;
            }
        }
        Ok(out)
    }

    fn start_offset(&self) -> u64 {
        self.segments.first().map_or(0, |s| s.base_offset)
    }

    fn end_offset(&self) -> u64 {
        self.segments.last().map_or(0, Segment::next_offset)
    }

    fn truncate_before(&mut self, offset: u64) -> Result<u64> {
        // Drop whole segments that end at or before `offset`, but
        // always keep the active (last) segment.
        while self.segments.len() > 1 {
            let first = &self.segments[0];
            if first.next_offset() <= offset {
                fs::remove_file(&first.path)?;
                self.segments.remove(0);
            } else {
                break;
            }
        }
        Ok(self.start_offset())
    }

    fn size_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: u8) -> Record {
        Record::new(Some(vec![n]), vec![n; 16]).with_timestamp(n as u64)
    }

    fn check_log_contract(log: &mut dyn PartitionLog) {
        assert!(log.is_empty());
        for n in 0..10u8 {
            assert_eq!(log.append(record(n)).unwrap(), n as u64);
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.end_offset(), 10);

        let all = log.read_from(0, usize::MAX).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[3].offset, 3);
        assert_eq!(all[3].record, record(3));

        let some = log.read_from(7, 2).unwrap();
        assert_eq!(some.len(), 2);
        assert_eq!(some[0].offset, 7);

        assert!(log.read_from(10, 5).unwrap().is_empty());
        assert!(matches!(
            log.read_from(11, 1),
            Err(Error::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn memory_log_contract() {
        check_log_contract(&mut MemoryLog::new());
    }

    #[test]
    fn file_log_contract() {
        let dir = std::env::temp_dir().join(format!("strata-pubsub-t1-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        check_log_contract(&mut FileLog::open(&dir, 256, SyncPolicy::Never).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_truncation_moves_start() {
        let mut log = MemoryLog::new();
        for n in 0..10u8 {
            log.append(record(n)).unwrap();
        }
        assert_eq!(log.truncate_before(4).unwrap(), 4);
        assert_eq!(log.start_offset(), 4);
        assert!(matches!(
            log.read_from(3, 1),
            Err(Error::OffsetOutOfRange { .. })
        ));
        assert_eq!(log.read_from(4, 1).unwrap()[0].offset, 4);
        // Truncating past the end empties but never over-runs.
        assert_eq!(log.truncate_before(100).unwrap(), 10);
        assert!(log.is_empty());
    }

    #[test]
    fn file_log_rolls_and_recovers() {
        let dir = std::env::temp_dir().join(format!("strata-pubsub-t2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            // Tiny segment size forces several segment files.
            let mut log = FileLog::open(&dir, 64, SyncPolicy::Never).unwrap();
            for n in 0..20u8 {
                log.append(record(n)).unwrap();
            }
            assert!(log.segments.len() > 1, "expected multiple segments");
        }
        // Re-open: recovery must rebuild offsets and allow appends.
        let mut log = FileLog::open(&dir, 64, SyncPolicy::Never).unwrap();
        assert_eq!(log.end_offset(), 20);
        assert_eq!(log.append(record(20)).unwrap(), 20);
        let all = log.read_from(0, usize::MAX).unwrap();
        assert_eq!(all.len(), 21);
        assert_eq!(all[20].record, record(20));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_log_truncates_whole_segments() {
        let dir = std::env::temp_dir().join(format!("strata-pubsub-t3-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut log = FileLog::open(&dir, 64, SyncPolicy::Never).unwrap();
        for n in 0..20u8 {
            log.append(record(n)).unwrap();
        }
        let new_start = log.truncate_before(10).unwrap();
        // Whole-segment granularity: the new start is ≤ 10 but > 0.
        assert!(new_start > 0 && new_start <= 10, "start={new_start}");
        assert_eq!(log.end_offset(), 20);
        let survivors = log.read_from(new_start, usize::MAX).unwrap();
        assert_eq!(survivors.first().unwrap().offset, new_start);
        assert_eq!(survivors.last().unwrap().offset, 19);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_log_reports_corruption() {
        let dir = std::env::temp_dir().join(format!("strata-pubsub-t4-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut log = FileLog::open(&dir, 1 << 20, SyncPolicy::Never).unwrap();
            log.append(record(0)).unwrap();
        }
        // Flip a byte in the middle of the single segment.
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut data = fs::read(&seg).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&seg, data).unwrap();
        assert!(matches!(
            FileLog::open(&dir, 1 << 20, SyncPolicy::Never),
            Err(Error::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash mid-append leaves a half-written frame at the end of
    /// the final segment. Recovery must truncate it away and keep the
    /// log usable — not refuse to open.
    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = std::env::temp_dir().join(format!("strata-pubsub-t5-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut log = FileLog::open(&dir, 1 << 20, SyncPolicy::Never).unwrap();
            for n in 0..3u8 {
                log.append(record(n)).unwrap();
            }
        }
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let full = fs::read(&seg).unwrap();
        let frame = full.len() / 3;
        // Chop into the middle of the last frame.
        fs::write(&seg, &full[..full.len() - frame / 2]).unwrap();
        let before = segment_tails_truncated();

        let mut log = FileLog::open(&dir, 1 << 20, SyncPolicy::Never).unwrap();
        assert_eq!(log.end_offset(), 2, "torn record dropped");
        assert_eq!(segment_tails_truncated(), before + 1);
        assert_eq!(
            fs::metadata(&seg).unwrap().len() as usize,
            2 * frame,
            "file truncated back to the valid prefix"
        );
        // Appends land where the next recovery will find them.
        assert_eq!(log.append(record(9)).unwrap(), 2);
        drop(log);
        let mut log = FileLog::open(&dir, 1 << 20, SyncPolicy::Never).unwrap();
        let all = log.read_from(0, usize::MAX).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].record, record(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The torn-tail rule only applies to the final segment: a tear
    /// mid-log (an earlier segment) means records that were once
    /// readable are gone, and must surface as corruption.
    #[test]
    fn torn_tail_in_a_non_final_segment_is_an_error() {
        let dir = std::env::temp_dir().join(format!("strata-pubsub-t6-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut log = FileLog::open(&dir, 64, SyncPolicy::Never).unwrap();
            for n in 0..20u8 {
                log.append(record(n)).unwrap();
            }
            assert!(log.segments.len() > 1, "expected multiple segments");
        }
        let mut names: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        names.sort();
        let first = &names[0];
        let data = fs::read(first).unwrap();
        fs::write(first, &data[..data.len() - 3]).unwrap();
        assert!(matches!(
            FileLog::open(&dir, 64, SyncPolicy::Never),
            Err(Error::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
