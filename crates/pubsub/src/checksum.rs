//! CRC-32 checksumming shared by the on-disk wire format and the
//! network transport (`strata-net`).

/// Computes the IEEE CRC-32 checksum of `data`.
///
/// Implemented locally (table-driven, reflected polynomial
/// `0xEDB88320`) to keep the crate dependency-free. Both the segment
/// framing in [`wire`](crate::wire) and the TCP message framing in
/// `strata-net` use this checksum, so a record's bytes are covered by
/// the same algorithm at rest and in flight.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_is_order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
