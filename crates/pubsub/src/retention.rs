//! Retention policies bounding partition logs.

use crate::error::Result;
use crate::log::PartitionLog;

/// Bounds the size of each partition log; checked after every append.
///
/// The default policy retains everything. A bound is a *target*:
/// file-backed logs trim at whole-segment granularity, so they may
/// briefly exceed it.
///
/// ```
/// use strata_pubsub::RetentionPolicy;
/// let policy = RetentionPolicy::default()
///     .with_max_records(10_000)
///     .with_max_bytes(64 * 1024 * 1024);
/// assert_eq!(policy.max_records(), Some(10_000));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    max_records: Option<u64>,
    max_bytes: Option<u64>,
}

impl RetentionPolicy {
    /// Retains everything (same as `default`).
    pub fn unbounded() -> Self {
        RetentionPolicy::default()
    }

    /// Limits each partition to at most `max` records.
    pub fn with_max_records(mut self, max: u64) -> Self {
        self.max_records = Some(max);
        self
    }

    /// Limits each partition to approximately `max` payload bytes.
    pub fn with_max_bytes(mut self, max: u64) -> Self {
        self.max_bytes = Some(max);
        self
    }

    /// The record-count bound, if any.
    pub fn max_records(&self) -> Option<u64> {
        self.max_records
    }

    /// The byte-size bound, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Applies the policy to `log`, trimming old records as needed.
    ///
    /// # Errors
    ///
    /// Propagates storage failures from the log.
    pub fn apply(&self, log: &mut dyn PartitionLog) -> Result<()> {
        if let Some(max) = self.max_records {
            if log.len() > max {
                let target = log.end_offset() - max;
                log.truncate_before(target)?;
            }
        }
        if let Some(max) = self.max_bytes {
            // Trim one record at a time until under the bound; cheap
            // because appends check after every record.
            while log.size_bytes() > max && log.len() > 1 {
                let start = log.start_offset();
                if log.truncate_before(start + 1)? == start {
                    break; // Storage cannot trim further (segment granularity).
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::MemoryLog;
    use crate::record::Record;

    fn filled(n: u64) -> MemoryLog {
        let mut log = MemoryLog::new();
        for i in 0..n {
            log.append(Record::new(None::<Vec<u8>>, vec![0u8; 10]).with_timestamp(i))
                .unwrap();
        }
        log
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut log = filled(100);
        RetentionPolicy::unbounded().apply(&mut log).unwrap();
        assert_eq!(log.len(), 100);
    }

    #[test]
    fn record_bound_trims_oldest() {
        let mut log = filled(100);
        RetentionPolicy::default()
            .with_max_records(30)
            .apply(&mut log)
            .unwrap();
        assert_eq!(log.len(), 30);
        assert_eq!(log.start_offset(), 70);
    }

    #[test]
    fn byte_bound_trims_to_target() {
        let mut log = filled(100); // 10 bytes per record.
        RetentionPolicy::default()
            .with_max_bytes(55)
            .apply(&mut log)
            .unwrap();
        assert!(log.size_bytes() <= 55);
        assert!(log.len() >= 1);
    }
}
