//! Topics and partitions: named groups of ordered logs.

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::log::{FileLog, LogKind, MemoryLog, PartitionLog};
use crate::record::{Record, StoredRecord};
use crate::retention::RetentionPolicy;

/// One partition: a lock-protected log.
pub(crate) struct Partition {
    log: Mutex<Box<dyn PartitionLog>>,
}

impl Partition {
    fn new(log: Box<dyn PartitionLog>) -> Self {
        Partition {
            log: Mutex::new(log),
        }
    }
}

/// A named topic with a fixed number of partitions.
pub(crate) struct Topic {
    name: String,
    partitions: Vec<Partition>,
    retention: RetentionPolicy,
}

impl std::fmt::Debug for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

impl Topic {
    pub(crate) fn create(
        name: String,
        partitions: u32,
        kind: &LogKind,
        retention: RetentionPolicy,
    ) -> Result<Self> {
        if partitions == 0 {
            return Err(Error::InvalidConfig(format!(
                "topic `{name}` needs at least one partition"
            )));
        }
        let mut parts = Vec::with_capacity(partitions as usize);
        for p in 0..partitions {
            let log: Box<dyn PartitionLog> = match kind {
                LogKind::Memory => Box::new(MemoryLog::new()),
                LogKind::File {
                    dir,
                    segment_bytes,
                    sync,
                } => Box::new(FileLog::open(
                    dir.join(&name).join(format!("p{p:04}")),
                    *segment_bytes,
                    *sync,
                )?),
            };
            parts.push(Partition::new(log));
        }
        Ok(Topic {
            name,
            partitions: parts,
            retention,
        })
    }

    pub(crate) fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    fn partition(&self, partition: u32) -> Result<&Partition> {
        self.partitions
            .get(partition as usize)
            .ok_or_else(|| Error::UnknownPartition {
                topic: self.name.clone(),
                partition,
            })
    }

    /// Appends `record` to `partition`, applying retention, and
    /// returns the assigned offset.
    pub(crate) fn append(&self, partition: u32, record: Record) -> Result<u64> {
        let mut log = self.partition(partition)?.log.lock();
        let offset = log.append(record)?;
        self.retention.apply(log.as_mut())?;
        Ok(offset)
    }

    /// Reads up to `max_records` records of `partition` starting at
    /// `offset`.
    pub(crate) fn read(
        &self,
        partition: u32,
        offset: u64,
        max_records: usize,
    ) -> Result<Vec<StoredRecord>> {
        self.partition(partition)?
            .log
            .lock()
            .read_from(offset, max_records)
    }

    /// `(start, end)` offsets of `partition`.
    pub(crate) fn offsets(&self, partition: u32) -> Result<(u64, u64)> {
        let log = self.partition(partition)?.log.lock();
        Ok((log.start_offset(), log.end_offset()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(partitions: u32) -> Topic {
        Topic::create(
            "t".into(),
            partitions,
            &LogKind::Memory,
            RetentionPolicy::unbounded(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_partitions() {
        assert!(matches!(
            Topic::create(
                "t".into(),
                0,
                &LogKind::Memory,
                RetentionPolicy::unbounded()
            ),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn partitions_are_independent() {
        let t = topic(2);
        t.append(0, Record::new(None::<Vec<u8>>, "a")).unwrap();
        t.append(1, Record::new(None::<Vec<u8>>, "b")).unwrap();
        t.append(1, Record::new(None::<Vec<u8>>, "c")).unwrap();
        assert_eq!(t.offsets(0).unwrap(), (0, 1));
        assert_eq!(t.offsets(1).unwrap(), (0, 2));
        assert_eq!(t.read(1, 1, 10).unwrap()[0].record.value.as_ref(), b"c");
    }

    #[test]
    fn unknown_partition_is_reported() {
        let t = topic(1);
        assert!(matches!(
            t.read(7, 0, 1),
            Err(Error::UnknownPartition { partition: 7, .. })
        ));
    }

    #[test]
    fn retention_applies_on_append() {
        let t = Topic::create(
            "t".into(),
            1,
            &LogKind::Memory,
            RetentionPolicy::default().with_max_records(2),
        )
        .unwrap();
        for n in 0..5u8 {
            t.append(0, Record::new(None::<Vec<u8>>, vec![n])).unwrap();
        }
        assert_eq!(t.offsets(0).unwrap(), (3, 5));
    }
}
