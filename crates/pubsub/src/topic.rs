//! Topics and partitions: named groups of ordered logs.

use parking_lot::Mutex;
use strata_obs::{Counter, Registry};

use crate::error::{Error, Result};
use crate::log::{FileLog, LogKind, MemoryLog, PartitionLog};
use crate::record::{Record, StoredRecord};
use crate::retention::RetentionPolicy;

/// Per-topic flow counters, registered with a `{topic=...}` label.
struct TopicMetrics {
    records_in: Counter,
    bytes_in: Counter,
    records_out: Counter,
    bytes_out: Counter,
}

impl TopicMetrics {
    fn new(registry: &Registry, topic: &str) -> Self {
        let labels: &[(&str, &str)] = &[("topic", topic)];
        TopicMetrics {
            records_in: registry.counter(
                "pubsub_topic_records_in_total",
                "Records appended to the topic",
                labels,
            ),
            bytes_in: registry.counter(
                "pubsub_topic_bytes_in_total",
                "Payload bytes appended to the topic",
                labels,
            ),
            records_out: registry.counter(
                "pubsub_topic_records_out_total",
                "Records read from the topic",
                labels,
            ),
            bytes_out: registry.counter(
                "pubsub_topic_bytes_out_total",
                "Payload bytes read from the topic",
                labels,
            ),
        }
    }
}

/// One partition: a lock-protected log.
pub(crate) struct Partition {
    log: Mutex<Box<dyn PartitionLog>>,
}

impl Partition {
    fn new(log: Box<dyn PartitionLog>) -> Self {
        Partition {
            log: Mutex::new(log),
        }
    }
}

/// A named topic with a fixed number of partitions.
pub(crate) struct Topic {
    name: String,
    partitions: Vec<Partition>,
    retention: RetentionPolicy,
    metrics: TopicMetrics,
}

impl std::fmt::Debug for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

impl Topic {
    pub(crate) fn create(
        name: String,
        partitions: u32,
        kind: &LogKind,
        retention: RetentionPolicy,
        registry: &Registry,
    ) -> Result<Self> {
        if partitions == 0 {
            return Err(Error::InvalidConfig(format!(
                "topic `{name}` needs at least one partition"
            )));
        }
        let mut parts = Vec::with_capacity(partitions as usize);
        for p in 0..partitions {
            let log: Box<dyn PartitionLog> = match kind {
                LogKind::Memory => Box::new(MemoryLog::new()),
                LogKind::File {
                    dir,
                    segment_bytes,
                    sync,
                } => Box::new(FileLog::open(
                    dir.join(&name).join(format!("p{p:04}")),
                    *segment_bytes,
                    *sync,
                )?),
            };
            parts.push(Partition::new(log));
        }
        let metrics = TopicMetrics::new(registry, &name);
        Ok(Topic {
            name,
            partitions: parts,
            retention,
            metrics,
        })
    }

    pub(crate) fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    fn partition(&self, partition: u32) -> Result<&Partition> {
        self.partitions
            .get(partition as usize)
            .ok_or_else(|| Error::UnknownPartition {
                topic: self.name.clone(),
                partition,
            })
    }

    /// Appends `record` to `partition`, applying retention, and
    /// returns the assigned offset.
    pub(crate) fn append(&self, partition: u32, record: Record) -> Result<u64> {
        let bytes = record.payload_size() as u64;
        let mut log = self.partition(partition)?.log.lock();
        let offset = log.append(record)?;
        self.retention.apply(log.as_mut())?;
        self.metrics.records_in.inc();
        self.metrics.bytes_in.add(bytes);
        Ok(offset)
    }

    /// Reads up to `max_records` records of `partition` starting at
    /// `offset`.
    pub(crate) fn read(
        &self,
        partition: u32,
        offset: u64,
        max_records: usize,
    ) -> Result<Vec<StoredRecord>> {
        let batch = self
            .partition(partition)?
            .log
            .lock()
            .read_from(offset, max_records)?;
        self.metrics.records_out.add(batch.len() as u64);
        self.metrics
            .bytes_out
            .add(batch.iter().map(|r| r.record.payload_size() as u64).sum());
        Ok(batch)
    }

    /// `(start, end)` offsets of `partition`.
    pub(crate) fn offsets(&self, partition: u32) -> Result<(u64, u64)> {
        let log = self.partition(partition)?.log.lock();
        Ok((log.start_offset(), log.end_offset()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(partitions: u32) -> Topic {
        Topic::create(
            "t".into(),
            partitions,
            &LogKind::Memory,
            RetentionPolicy::unbounded(),
            &Registry::new(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_partitions() {
        assert!(matches!(
            Topic::create(
                "t".into(),
                0,
                &LogKind::Memory,
                RetentionPolicy::unbounded(),
                &Registry::new(),
            ),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn partitions_are_independent() {
        let t = topic(2);
        t.append(0, Record::new(None::<Vec<u8>>, "a")).unwrap();
        t.append(1, Record::new(None::<Vec<u8>>, "b")).unwrap();
        t.append(1, Record::new(None::<Vec<u8>>, "c")).unwrap();
        assert_eq!(t.offsets(0).unwrap(), (0, 1));
        assert_eq!(t.offsets(1).unwrap(), (0, 2));
        assert_eq!(t.read(1, 1, 10).unwrap()[0].record.value.as_ref(), b"c");
    }

    #[test]
    fn unknown_partition_is_reported() {
        let t = topic(1);
        assert!(matches!(
            t.read(7, 0, 1),
            Err(Error::UnknownPartition { partition: 7, .. })
        ));
    }

    #[test]
    fn flow_counters_track_appends_and_reads() {
        let registry = Registry::new();
        let t = Topic::create(
            "t".into(),
            1,
            &LogKind::Memory,
            RetentionPolicy::unbounded(),
            &registry,
        )
        .unwrap();
        t.append(0, Record::new(None::<Vec<u8>>, "abc")).unwrap();
        let _ = t.read(0, 0, 10).unwrap();
        let text = registry.render();
        assert!(
            text.contains("pubsub_topic_records_in_total{topic=\"t\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pubsub_topic_bytes_in_total{topic=\"t\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("pubsub_topic_records_out_total{topic=\"t\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pubsub_topic_bytes_out_total{topic=\"t\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn retention_applies_on_append() {
        let t = Topic::create(
            "t".into(),
            1,
            &LogKind::Memory,
            RetentionPolicy::default().with_max_records(2),
            &Registry::new(),
        )
        .unwrap();
        for n in 0..5u8 {
            t.append(0, Record::new(None::<Vec<u8>>, vec![n])).unwrap();
        }
        assert_eq!(t.offsets(0).unwrap(), (3, 5));
    }
}
