//! The broker: topic registry, consumer-group coordination, and the
//! wakeup machinery connecting producers to blocked consumers.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use strata_obs::{Histogram, Registry};

use crate::consumer::Consumer;
use crate::error::{Error, Result};
use crate::log::{LogKind, SyncPolicy};
use crate::offsets::OffsetStore;
use crate::producer::Producer;
use crate::retention::RetentionPolicy;
use crate::topic::Topic;

/// Configuration for a new topic.
///
/// ```
/// use strata_pubsub::{LogKind, RetentionPolicy, TopicConfig};
/// let cfg = TopicConfig::new(4)
///     .with_log(LogKind::Memory)
///     .with_retention(RetentionPolicy::default().with_max_records(1_000));
/// ```
#[derive(Debug, Clone)]
pub struct TopicConfig {
    partitions: u32,
    log: LogKind,
    retention: RetentionPolicy,
}

impl TopicConfig {
    /// A topic with `partitions` memory-backed partitions and
    /// unbounded retention.
    pub fn new(partitions: u32) -> Self {
        TopicConfig {
            partitions,
            log: LogKind::Memory,
            retention: RetentionPolicy::unbounded(),
        }
    }

    /// Chooses the storage backing the partitions.
    pub fn with_log(mut self, log: LogKind) -> Self {
        self.log = log;
        self
    }

    /// Bounds the partitions with a retention policy.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }
}

/// Coordination state of one consumer group.
#[derive(Debug, Default)]
pub(crate) struct GroupState {
    /// Member ids, ordered — the assignment function depends on it.
    pub(crate) members: BTreeSet<u64>,
    /// Bumped on every membership change; consumers holding an older
    /// generation refresh their assignment before polling.
    pub(crate) generation: u64,
    /// Committed offsets: (topic, partition) → next offset to read.
    pub(crate) offsets: BTreeMap<(String, u32), u64>,
    /// Union of the members' topic subscriptions.
    pub(crate) subscribed: BTreeSet<String>,
}

pub(crate) struct BrokerInner {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    pub(crate) groups: Mutex<HashMap<String, GroupState>>,
    /// Bumped on every append; consumers block on it while idle.
    appends: Mutex<u64>,
    data_ready: Condvar,
    next_member: AtomicU64,
    /// Optional durable backing for committed group offsets.
    offset_store: Option<Mutex<OffsetStore>>,
    /// The metrics registry topics register their counters into; also
    /// where embedders (kv, net, spe) land so one render covers the
    /// whole process.
    registry: Registry,
    /// How long consumers blocked in [`wait_for_data`]
    /// (`BrokerInner::wait_for_data`) — the fetch long-poll wait.
    fetch_wait_ns: Histogram,
    /// Offset-commit latency, durable persistence included.
    commit_ns: Histogram,
}

impl BrokerInner {
    /// Writes a commit through to the durable store, when one is
    /// configured. Callers update the in-memory group state only
    /// after this succeeds, so an acknowledged commit is always at
    /// least as durable as the store's sync policy promises.
    pub(crate) fn persist_offset(
        &self,
        group: &str,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<()> {
        if let Some(store) = &self.offset_store {
            store.lock().record(group, topic, partition, offset)?;
        }
        Ok(())
    }

    pub(crate) fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTopic(name.to_string()))
    }

    pub(crate) fn notify_append(&self) {
        *self.appends.lock() += 1;
        self.data_ready.notify_all();
    }

    /// Blocks until new data may be available or `timeout` elapses.
    pub(crate) fn wait_for_data(&self, seen: &mut u64, timeout: Duration) {
        let started = Instant::now();
        let mut guard = self.appends.lock();
        if *guard != *seen {
            *seen = *guard;
        } else {
            self.data_ready.wait_for(&mut guard, timeout);
            *seen = *guard;
        }
        drop(guard);
        self.fetch_wait_ns.record_since(started);
    }

    pub(crate) fn register_member(&self, group: &str, topics: &[String]) -> u64 {
        let id = self.next_member.fetch_add(1, Ordering::Relaxed);
        let mut groups = self.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.members.insert(id);
        state.subscribed.extend(topics.iter().cloned());
        state.generation += 1;
        id
    }

    pub(crate) fn deregister_member(&self, group: &str, id: u64) {
        let mut groups = self.groups.lock();
        if let Some(state) = groups.get_mut(group) {
            if state.members.remove(&id) {
                state.generation += 1;
            }
        }
        self.data_ready.notify_all();
    }

    /// The partitions assigned to `member` at the group's current
    /// generation, plus that generation: partitions of all subscribed
    /// topics, sorted, dealt round-robin over the sorted member list.
    pub(crate) fn assignment_for(
        &self,
        group: &str,
        member: u64,
    ) -> Result<(u64, Vec<(String, u32)>)> {
        let groups = self.groups.lock();
        let state = groups
            .get(group)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown group `{group}`")))?;
        let members: Vec<u64> = state.members.iter().copied().collect();
        let my_index = members
            .iter()
            .position(|&m| m == member)
            .ok_or(Error::RebalanceInProgress)?;
        let mut all: Vec<(String, u32)> = Vec::new();
        for topic_name in &state.subscribed {
            let topic = self.topic(topic_name)?;
            for p in 0..topic.partition_count() {
                all.push((topic_name.clone(), p));
            }
        }
        let mine = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % members.len() == my_index)
            .map(|(_, tp)| tp)
            .collect();
        Ok((state.generation, mine))
    }
}

/// The in-process message broker. Cheap to clone ([`Arc`]-backed);
/// all clones address the same topics and groups.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.inner.topics.read().len())
            .finish()
    }
}

impl Default for Broker {
    fn default() -> Self {
        Broker::new()
    }
}

impl Broker {
    /// Creates an empty broker with its own private metrics registry.
    pub fn new() -> Self {
        Broker::with_registry(Registry::new())
    }

    /// Creates an empty broker that registers its metrics (per-topic
    /// flow counters, fetch-wait and commit latency) into `registry`.
    /// Embedders share one registry across the broker, the kv store
    /// and the servers on top, so one render covers everything.
    pub fn with_registry(registry: Registry) -> Self {
        Broker {
            inner: Arc::new(Self::inner_with(registry, HashMap::new(), None)),
        }
    }

    fn inner_with(
        registry: Registry,
        groups: HashMap<String, GroupState>,
        offset_store: Option<Mutex<OffsetStore>>,
    ) -> BrokerInner {
        let fetch_wait_ns = registry.histogram(
            "pubsub_fetch_wait_ns",
            "Time consumers spent blocked waiting for new appends",
            &[],
        );
        let commit_ns = registry.histogram(
            "pubsub_commit_ns",
            "Offset-commit latency including durable persistence",
            &[],
        );
        BrokerInner {
            topics: RwLock::new(HashMap::new()),
            groups: Mutex::new(groups),
            appends: Mutex::new(0),
            data_ready: Condvar::new(),
            next_member: AtomicU64::new(1),
            offset_store,
            registry,
            fetch_wait_ns,
            commit_ns,
        }
    }

    /// The registry this broker's metrics live in.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Creates a broker whose committed group offsets are written
    /// through to a durable [`OffsetStore`] at `path`, and seeds the
    /// group state with whatever the store recovered — so a restarted
    /// broker resumes consumers from their last committed positions.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] if the store is damaged before its final
    /// frame (a torn final frame is truncated away), or I/O failures.
    pub fn with_offset_store(path: impl Into<PathBuf>, sync: SyncPolicy) -> Result<Self> {
        let store = OffsetStore::open(path, sync)?;
        let mut groups: HashMap<String, GroupState> = HashMap::new();
        for ((group, topic, partition), offset) in store.entries() {
            groups
                .entry(group.clone())
                .or_default()
                .offsets
                .insert((topic.clone(), *partition), offset);
        }
        Ok(Broker {
            inner: Arc::new(Self::inner_with(
                Registry::new(),
                groups,
                Some(Mutex::new(store)),
            )),
        })
    }

    /// Creates a topic.
    ///
    /// # Errors
    ///
    /// [`Error::TopicExists`] if the name is taken,
    /// [`Error::InvalidConfig`] for zero partitions, or storage errors
    /// for file-backed logs.
    pub fn create_topic(&self, name: impl Into<String>, config: TopicConfig) -> Result<()> {
        let name = name.into();
        let mut topics = self.inner.topics.write();
        if topics.contains_key(&name) {
            return Err(Error::TopicExists(name));
        }
        let topic = Topic::create(
            name.clone(),
            config.partitions,
            &config.log,
            config.retention,
            &self.inner.registry,
        )?;
        topics.insert(name, Arc::new(topic));
        Ok(())
    }

    /// Deletes a topic. Consumers subscribed to it will error on
    /// their next poll.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if it does not exist.
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        self.inner
            .topics
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::UnknownTopic(name.to_string()))
    }

    /// Names of all existing topics, sorted.
    pub fn topics(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of partitions of `name`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if it does not exist.
    pub fn partition_count(&self, name: &str) -> Result<u32> {
        Ok(self.inner.topic(name)?.partition_count())
    }

    /// The `(start, end)` offsets of a partition.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] / [`Error::UnknownPartition`].
    pub fn offsets(&self, topic: &str, partition: u32) -> Result<(u64, u64)> {
        self.inner.topic(topic)?.offsets(partition)
    }

    /// Creates a producer for this broker.
    pub fn producer(&self) -> Producer {
        Producer::new(Arc::clone(&self.inner))
    }

    /// Creates a consumer in `group` subscribed to `topics`.
    /// Consumers sharing a group split the partitions between them;
    /// distinct groups each see every record.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if any subscribed topic is missing.
    pub fn consumer(&self, group: impl Into<String>, topics: &[&str]) -> Result<Consumer> {
        let group = group.into();
        let names: Vec<String> = topics.iter().map(|t| t.to_string()).collect();
        for name in &names {
            self.inner.topic(name)?; // Validate before registering.
        }
        Ok(Consumer::register(Arc::clone(&self.inner), group, names))
    }

    /// Reads up to `max_records` records of `topic`/`partition`
    /// starting at `offset`, without any group bookkeeping. This is
    /// the server-side read primitive of the TCP transport
    /// (`strata-net`), whose consumers track their own positions.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] / [`Error::UnknownPartition`], or
    /// [`Error::OffsetOutOfRange`] when `offset` lies outside
    /// `[start, end]` (reading exactly at `end` returns an empty
    /// batch).
    pub fn fetch(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
    ) -> Result<Vec<crate::record::StoredRecord>> {
        self.inner
            .topic(topic)?
            .read(partition, offset, max_records)
    }

    /// Commits `offset` as the resume point of `(group, topic,
    /// partition)`, creating the group if it does not exist. Remote
    /// consumers commit through this instead of holding a group
    /// membership: their partition assignment lives client-side.
    ///
    /// # Errors
    ///
    /// I/O failures writing the durable offset store, when one is
    /// configured; the in-memory offset is not updated in that case.
    pub fn commit_offset(
        &self,
        group: &str,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<()> {
        let started = Instant::now();
        self.inner.persist_offset(group, topic, partition, offset)?;
        let mut groups = self.inner.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.offsets.insert((topic.to_string(), partition), offset);
        drop(groups);
        self.inner.commit_ns.record_since(started);
        Ok(())
    }

    /// Blocks until a producer appends somewhere in the broker or
    /// `timeout` elapses. `seen` carries the caller's append-counter
    /// state between calls (start at 0); a change means data may be
    /// available. Long-polling reads (the TCP transport's `Fetch`
    /// with a wait budget) are built on this.
    pub fn wait_for_appends(&self, seen: &mut u64, timeout: Duration) {
        self.inner.wait_for_data(seen, timeout);
    }

    /// The committed offset of `(group, topic, partition)`, if any.
    pub fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> Option<u64> {
        self.inner
            .groups
            .lock()
            .get(group)
            .and_then(|g| g.offsets.get(&(topic.to_string(), partition)).copied())
    }

    /// The consumer lag of `group` on `topic`: how many stored
    /// records lie beyond the group's committed offsets, summed over
    /// partitions. Partitions with no committed offset count from the
    /// log start. This is the backlog a saturated pipeline builds up
    /// (the steeply-rising-latency regime of Figure 7).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`] if the topic does not exist.
    pub fn consumer_lag(&self, group: &str, topic: &str) -> Result<u64> {
        let t = self.inner.topic(topic)?;
        let groups = self.inner.groups.lock();
        let offsets = groups.get(group).map(|g| &g.offsets);
        let mut lag = 0u64;
        for p in 0..t.partition_count() {
            let (start, end) = t.offsets(p)?;
            let committed = offsets
                .and_then(|o| o.get(&(topic.to_string(), p)).copied())
                .unwrap_or(start)
                .clamp(start, end);
            lag += end - committed;
        }
        Ok(lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_lifecycle() {
        let broker = Broker::new();
        broker.create_topic("a", TopicConfig::new(3)).unwrap();
        assert!(matches!(
            broker.create_topic("a", TopicConfig::new(1)),
            Err(Error::TopicExists(_))
        ));
        assert_eq!(broker.topics(), vec!["a".to_string()]);
        assert_eq!(broker.partition_count("a").unwrap(), 3);
        broker.delete_topic("a").unwrap();
        assert!(matches!(
            broker.delete_topic("a"),
            Err(Error::UnknownTopic(_))
        ));
    }

    #[test]
    fn consumer_requires_existing_topics() {
        let broker = Broker::new();
        assert!(matches!(
            broker.consumer("g", &["missing"]),
            Err(Error::UnknownTopic(_))
        ));
    }

    #[test]
    fn assignment_splits_partitions_across_members() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(4)).unwrap();
        let c1 = broker.consumer("g", &["t"]).unwrap();
        let c2 = broker.consumer("g", &["t"]).unwrap();
        let (_, a1) = broker.inner.assignment_for("g", c1.member_id()).unwrap();
        let (_, a2) = broker.inner.assignment_for("g", c2.member_id()).unwrap();
        assert_eq!(a1.len(), 2);
        assert_eq!(a2.len(), 2);
        let mut all: Vec<u32> = a1.iter().chain(&a2).map(|(_, p)| *p).collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn consumer_lag_tracks_committed_offsets() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(2)).unwrap();
        let producer = broker.producer();
        for i in 0..10u8 {
            producer.send("t", Some(&[i]), vec![i]).unwrap();
        }
        // No group state yet: everything is backlog.
        assert_eq!(broker.consumer_lag("g", "t").unwrap(), 10);
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        let polled = consumer
            .poll(std::time::Duration::from_millis(200))
            .unwrap();
        assert_eq!(polled.len(), 10);
        // Polled but not committed: lag unchanged.
        assert_eq!(broker.consumer_lag("g", "t").unwrap(), 10);
        consumer.commit().unwrap();
        assert_eq!(broker.consumer_lag("g", "t").unwrap(), 0);
        producer.send("t", Some(&[7]), vec![7]).unwrap();
        assert_eq!(broker.consumer_lag("g", "t").unwrap(), 1);
        assert!(broker.consumer_lag("g", "missing").is_err());
    }

    #[test]
    fn fetch_reads_without_group_state() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(1)).unwrap();
        let producer = broker.producer();
        for n in 0..4u8 {
            producer.send("t", None, vec![n]).unwrap();
        }
        let batch = broker.fetch("t", 0, 1, 2).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].offset, 1);
        // Reading at the end is an empty batch, past it an error.
        assert!(broker.fetch("t", 0, 4, 10).unwrap().is_empty());
        assert!(matches!(
            broker.fetch("t", 0, 5, 10),
            Err(Error::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn commit_offset_creates_group_state() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(1)).unwrap();
        assert_eq!(broker.committed_offset("g", "t", 0), None);
        broker.commit_offset("g", "t", 0, 7).unwrap();
        assert_eq!(broker.committed_offset("g", "t", 0), Some(7));
        // A committed offset bounds consumer lag like any other.
        let producer = broker.producer();
        for n in 0..10u8 {
            producer.send("t", None, vec![n]).unwrap();
        }
        assert_eq!(broker.consumer_lag("g", "t").unwrap(), 3);
    }

    #[test]
    fn offset_store_survives_broker_restart() {
        let path = std::env::temp_dir().join(format!(
            "strata-pubsub-broker-offsets-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let broker = Broker::with_offset_store(&path, SyncPolicy::Always).unwrap();
            broker.create_topic("t", TopicConfig::new(2)).unwrap();
            broker.commit_offset("g", "t", 0, 5).unwrap();
            broker.commit_offset("g", "t", 1, 9).unwrap();
            broker.commit_offset("g", "t", 0, 6).unwrap(); // last write wins
        }
        let broker = Broker::with_offset_store(&path, SyncPolicy::Always).unwrap();
        assert_eq!(broker.committed_offset("g", "t", 0), Some(6));
        assert_eq!(broker.committed_offset("g", "t", 1), Some(9));
        assert_eq!(broker.committed_offset("other", "t", 0), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wait_for_appends_wakes_on_produce() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(1)).unwrap();
        let producer = broker.producer();
        let waiter = broker.clone();
        let handle = std::thread::spawn(move || {
            let mut seen = 0;
            let start = std::time::Instant::now();
            waiter.wait_for_appends(&mut seen, Duration::from_secs(5));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(30));
        producer.send("t", None, "x").unwrap();
        let waited = handle.join().unwrap();
        assert!(
            waited < Duration::from_secs(4),
            "woke early, not by timeout"
        );
    }

    #[test]
    fn dropping_a_member_rebalances() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(2)).unwrap();
        let c1 = broker.consumer("g", &["t"]).unwrap();
        let gen_before = {
            let c2 = broker.consumer("g", &["t"]).unwrap();
            let (g, _) = broker.inner.assignment_for("g", c2.member_id()).unwrap();
            g
        }; // c2 dropped here.
        let (gen_after, a1) = broker.inner.assignment_for("g", c1.member_id()).unwrap();
        assert!(gen_after > gen_before);
        assert_eq!(a1.len(), 2, "sole member owns every partition");
    }
}
