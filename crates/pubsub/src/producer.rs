//! Producers: append records to topics.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::broker::BrokerInner;
use crate::error::Result;
use crate::record::Record;

/// Appends records to the broker's topics.
///
/// Partition choice follows Kafka's contract: keyed records go to
/// `hash(key) % partitions`, preserving per-key order; keyless
/// records round-robin for balance.
pub struct Producer {
    inner: Arc<BrokerInner>,
    round_robin: AtomicUsize,
}

impl std::fmt::Debug for Producer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").finish_non_exhaustive()
    }
}

impl Producer {
    pub(crate) fn new(inner: Arc<BrokerInner>) -> Self {
        Producer {
            inner,
            round_robin: AtomicUsize::new(0),
        }
    }

    /// Sends a record with the given `key` and `value` to `topic`,
    /// returning `(partition, offset)`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`](crate::Error::UnknownTopic) or storage
    /// failures.
    pub fn send(
        &self,
        topic: &str,
        key: Option<&[u8]>,
        value: impl Into<bytes::Bytes>,
    ) -> Result<(u32, u64)> {
        let record = Record::new(key.map(bytes::Bytes::copy_from_slice), value.into());
        self.send_record(topic, record)
    }

    /// Sends a fully built [`Record`] to `topic`, returning
    /// `(partition, offset)`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`](crate::Error::UnknownTopic) or storage
    /// failures.
    pub fn send_record(&self, topic: &str, record: Record) -> Result<(u32, u64)> {
        let t = self.inner.topic(topic)?;
        let partitions = t.partition_count();
        let partition = match &record.key {
            Some(key) => {
                let mut hasher = DefaultHasher::new();
                key.hash(&mut hasher);
                (hasher.finish() % partitions as u64) as u32
            }
            None => (self.round_robin.fetch_add(1, Ordering::Relaxed) % partitions as usize) as u32,
        };
        let offset = t.append(partition, record)?;
        self.inner.notify_append();
        Ok((partition, offset))
    }

    /// Sends a record to an explicit partition, bypassing the
    /// partitioner. Returns the assigned offset.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTopic`](crate::Error::UnknownTopic),
    /// [`Error::UnknownPartition`](crate::Error::UnknownPartition), or
    /// storage failures.
    pub fn send_to_partition(&self, topic: &str, partition: u32, record: Record) -> Result<u64> {
        let t = self.inner.topic(topic)?;
        let offset = t.append(partition, record)?;
        self.inner.notify_append();
        Ok(offset)
    }
}

#[cfg(test)]
mod tests {
    use crate::broker::{Broker, TopicConfig};
    use crate::record::Record;

    #[test]
    fn keyed_records_stay_on_one_partition() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(8)).unwrap();
        let producer = broker.producer();
        let mut partitions = std::collections::HashSet::new();
        for _ in 0..10 {
            let (p, _) = producer.send("t", Some(b"same-key"), "v").unwrap();
            partitions.insert(p);
        }
        assert_eq!(partitions.len(), 1);
    }

    #[test]
    fn keyless_records_round_robin() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(4)).unwrap();
        let producer = broker.producer();
        let ps: Vec<u32> = (0..8)
            .map(|_| producer.send("t", None, "v").unwrap().0)
            .collect();
        assert_eq!(ps, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn offsets_are_dense_per_partition() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(1)).unwrap();
        let producer = broker.producer();
        for expected in 0..5u64 {
            let (_, offset) = producer.send("t", None, "v").unwrap();
            assert_eq!(offset, expected);
        }
    }

    #[test]
    fn explicit_partition_send() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(3)).unwrap();
        let producer = broker.producer();
        producer
            .send_to_partition("t", 2, Record::new(None::<Vec<u8>>, "x"))
            .unwrap();
        assert_eq!(broker.offsets("t", 2).unwrap(), (0, 1));
        assert_eq!(broker.offsets("t", 0).unwrap(), (0, 0));
    }
}
