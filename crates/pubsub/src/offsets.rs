//! Durable storage for committed consumer-group offsets.
//!
//! The broker's group offsets are plain in-memory state; an
//! [`OffsetStore`] write-through makes them survive a broker restart,
//! the way Kafka's `__consumer_offsets` topic does. The store is an
//! append-only log of commit frames:
//!
//! ```text
//! ┌──────────────┬───────────────┬──────────────┐
//! │ body_len u32 │ body (…)      │ crc32 u32    │   little-endian
//! └──────────────┴───────────────┴──────────────┘
//! body := group_len u16 · group · topic_len u16 · topic
//!       · partition u32 · offset u64
//! ```
//!
//! The last frame for a `(group, topic, partition)` wins. Recovery
//! follows the same tail rule as the WAL and segment files: a torn
//! final frame is truncated away, corruption before the tail is an
//! error. When the log grows well past the number of live entries it
//! is compacted by rewriting and atomically renaming.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use strata_chaos::{fsync_dir, ChaosFile};

use crate::checksum::crc32;
use crate::error::{Error, Result};
use crate::log::SyncPolicy;
use crate::wire::Reader;

/// Failpoint prefix for offset-store I/O (`pubsub.offsets.write`,
/// `pubsub.offsets.sync`).
const CHAOS_POINT: &str = "pubsub.offsets";

/// Compact when the log holds this many frames beyond the live count.
const COMPACT_SLACK: u64 = 1024;

type Key = (String, String, u32);

/// An append-only, crash-recoverable store of committed offsets.
#[derive(Debug)]
pub struct OffsetStore {
    path: PathBuf,
    file: ChaosFile,
    policy: SyncPolicy,
    unsynced: u32,
    /// Frames currently in the file (live + superseded).
    frames: u64,
    live: BTreeMap<Key, u64>,
    scratch: Vec<u8>,
}

impl OffsetStore {
    /// Opens (or creates) the store at `path`, replaying every commit
    /// frame. A torn final frame is truncated away.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] for mid-log corruption; I/O failures.
    pub fn open(path: impl Into<PathBuf>, policy: SyncPolicy) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err.into()),
        };
        let (live, frames, valid_len) = Self::scan(&data)?;
        let created = !path.exists();
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if valid_len < data.len() as u64 {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        if created && policy != SyncPolicy::Never {
            if let Some(parent) = path.parent() {
                fsync_dir(parent)?;
            }
        }
        let file = ChaosFile::new(CHAOS_POINT, &path, file)?;
        Ok(OffsetStore {
            path,
            file,
            policy,
            unsynced: 0,
            frames,
            live,
            scratch: Vec::new(),
        })
    }

    fn scan(data: &[u8]) -> Result<(BTreeMap<Key, u64>, u64, u64)> {
        let mut live = BTreeMap::new();
        let mut frames = 0u64;
        let mut pos = 0usize;
        while pos < data.len() {
            match Self::decode_frame(&data[pos..]) {
                Ok((key, offset, used)) => {
                    live.insert(key, offset);
                    frames += 1;
                    pos += used;
                }
                Err(_) if Self::is_torn_tail(&data[pos..]) => break,
                Err(err) => return Err(err),
            }
        }
        Ok((live, frames, pos as u64))
    }

    fn is_torn_tail(data: &[u8]) -> bool {
        if data.len() < 4 {
            return true;
        }
        let body_len = u32::from_le_bytes(data[..4].try_into().expect("len 4")) as usize;
        data.len() < 4 + body_len + 4
    }

    fn decode_frame(data: &[u8]) -> Result<(Key, u64, usize)> {
        let mut outer = Reader::new(data);
        let body_len = outer.u32()? as usize;
        let body = outer.bytes(body_len)?;
        let stored_crc = outer.u32()?;
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(Error::Corrupt(format!(
                "offset store: crc mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut r = Reader::new(body);
        let group_len = r.u16()? as usize;
        let group = std::str::from_utf8(r.bytes(group_len)?)
            .map_err(|_| Error::Corrupt("offset store: group is not utf-8".into()))?
            .to_string();
        let topic_len = r.u16()? as usize;
        let topic = std::str::from_utf8(r.bytes(topic_len)?)
            .map_err(|_| Error::Corrupt("offset store: topic is not utf-8".into()))?
            .to_string();
        let partition = r.u32()?;
        let offset = r.u64()?;
        if r.remaining() != 0 {
            return Err(Error::Corrupt(format!(
                "offset store: {} trailing bytes in frame body",
                r.remaining()
            )));
        }
        Ok(((group, topic, partition), offset, 4 + body_len + 4))
    }

    fn encode_frame(buf: &mut Vec<u8>, group: &str, topic: &str, partition: u32, offset: u64) {
        let start = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes()); // body_len placeholder
        let body_start = buf.len();
        buf.extend_from_slice(&(group.len() as u16).to_le_bytes());
        buf.extend_from_slice(group.as_bytes());
        buf.extend_from_slice(&(topic.len() as u16).to_le_bytes());
        buf.extend_from_slice(topic.as_bytes());
        buf.extend_from_slice(&partition.to_le_bytes());
        buf.extend_from_slice(&offset.to_le_bytes());
        let body_len = (buf.len() - body_start) as u32;
        buf[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&buf[body_start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
    }

    /// The stored offset of `(group, topic, partition)`, if any.
    #[must_use]
    pub fn get(&self, group: &str, topic: &str, partition: u32) -> Option<u64> {
        self.live
            .get(&(group.to_string(), topic.to_string(), partition))
            .copied()
    }

    /// Every live `((group, topic, partition), offset)` entry, in key
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.live.iter().map(|(k, &v)| (k, v))
    }

    /// Number of live `(group, topic, partition)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no offsets are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Appends one commit frame (and syncs per policy), compacting
    /// the log when superseded frames pile up.
    ///
    /// # Errors
    ///
    /// I/O failures. The in-memory view is only updated once the
    /// append succeeded.
    pub fn record(&mut self, group: &str, topic: &str, partition: u32, offset: u64) -> Result<()> {
        self.scratch.clear();
        Self::encode_frame(&mut self.scratch, group, topic, partition, offset);
        self.file.write_all(&self.scratch)?;
        self.file.flush()?;
        match self.policy {
            SyncPolicy::Always => self.file.sync_data()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.file.sync_data()?;
                    self.unsynced = 0;
                }
            }
            SyncPolicy::Never => {}
        }
        self.frames += 1;
        self.live
            .insert((group.to_string(), topic.to_string(), partition), offset);
        if self.frames > self.live.len() as u64 + COMPACT_SLACK {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log with one frame per live entry and atomically
    /// renames it into place (with a directory fsync, so the rename
    /// survives a crash).
    ///
    /// # Errors
    ///
    /// I/O failures; on error the previous log remains in place.
    pub fn compact(&mut self) -> Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let file = fs::File::create(&tmp)?;
            let mut out = ChaosFile::new(CHAOS_POINT, &tmp, file)?;
            let mut buf = Vec::new();
            for ((group, topic, partition), offset) in &self.live {
                Self::encode_frame(&mut buf, group, topic, *partition, *offset);
            }
            out.write_all(&buf)?;
            out.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            fsync_dir(parent)?;
        }
        let file = fs::OpenOptions::new().append(true).open(&self.path)?;
        self.file = ChaosFile::new(CHAOS_POINT, &self.path, file)?;
        self.frames = self.live.len() as u64;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "strata-pubsub-offsets-{tag}-{}",
            std::process::id()
        ))
    }

    #[test]
    fn offsets_survive_reopen_with_last_write_winning() {
        let path = temp_path("reopen");
        let _ = fs::remove_file(&path);
        {
            let mut store = OffsetStore::open(&path, SyncPolicy::Never).unwrap();
            store.record("g1", "t", 0, 5).unwrap();
            store.record("g1", "t", 1, 9).unwrap();
            store.record("g1", "t", 0, 7).unwrap(); // supersedes 5
            store.record("g2", "t", 0, 1).unwrap();
        }
        let store = OffsetStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get("g1", "t", 0), Some(7));
        assert_eq!(store.get("g1", "t", 1), Some(9));
        assert_eq!(store.get("g2", "t", 0), Some(1));
        assert_eq!(store.get("g2", "t", 1), None);
        assert_eq!(store.len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_mid_log_corruption_errors() {
        let path = temp_path("tail");
        let _ = fs::remove_file(&path);
        {
            let mut store = OffsetStore::open(&path, SyncPolicy::Never).unwrap();
            store.record("group", "topic", 0, 11).unwrap();
            store.record("group", "topic", 1, 22).unwrap();
        }
        let full = fs::read(&path).unwrap();
        // Tear the final frame: the first commit must survive.
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        let store = OffsetStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get("group", "topic", 0), Some(11));
        assert_eq!(store.get("group", "topic", 1), None);
        drop(store);
        // Corrupt the first frame: that is not a tail, so it errors.
        let mut data = full.clone();
        data[6] ^= 0xFF;
        fs::write(&path, data).unwrap();
        assert!(matches!(
            OffsetStore::open(&path, SyncPolicy::Never),
            Err(Error::Corrupt(_))
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_keeps_only_live_entries() {
        let path = temp_path("compact");
        let _ = fs::remove_file(&path);
        let mut store = OffsetStore::open(&path, SyncPolicy::Never).unwrap();
        for i in 0..100u64 {
            store.record("g", "t", 0, i).unwrap();
        }
        let before = fs::metadata(&path).unwrap().len();
        store.compact().unwrap();
        let after = fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction shrank the log");
        assert_eq!(store.get("g", "t", 0), Some(99));
        // Still appendable and recoverable after compaction.
        store.record("g", "t", 0, 100).unwrap();
        drop(store);
        let store = OffsetStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get("g", "t", 0), Some(100));
        fs::remove_file(&path).unwrap();
    }
}
