//! Records: the unit of data exchanged through the broker.

use bytes::Bytes;

/// A record as handed to the broker by a producer: an optional
/// partitioning key, an opaque value, a creation timestamp and
/// optional string-keyed headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Optional partitioning key: records sharing a key land in the
    /// same partition, preserving their relative order.
    pub key: Option<Bytes>,
    /// The payload. The broker never interprets it.
    pub value: Bytes,
    /// Producer-assigned creation time, in milliseconds since an
    /// application-defined epoch.
    pub timestamp_millis: u64,
    /// Application headers, carried verbatim.
    pub headers: Vec<(String, Bytes)>,
}

impl Record {
    /// Creates a record with the given key and value and no headers.
    pub fn new(key: Option<impl Into<Bytes>>, value: impl Into<Bytes>) -> Self {
        Record {
            key: key.map(Into::into),
            value: value.into(),
            timestamp_millis: 0,
            headers: Vec::new(),
        }
    }

    /// Sets the creation timestamp (builder style).
    pub fn with_timestamp(mut self, millis: u64) -> Self {
        self.timestamp_millis = millis;
        self
    }

    /// Appends a header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<Bytes>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Total payload size in bytes (key + value + headers), used for
    /// retention accounting.
    pub fn payload_size(&self) -> usize {
        self.key.as_ref().map_or(0, |k| k.len())
            + self.value.len()
            + self
                .headers
                .iter()
                .map(|(name, value)| name.len() + value.len())
                .sum::<usize>()
    }
}

/// A record as stored in (and read back from) a partition log, i.e. a
/// [`Record`] plus the offset the log assigned to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// The record's position in its partition; dense and increasing.
    pub offset: u64,
    /// The stored record.
    pub record: Record,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_construction() {
        let r = Record::new(Some("k"), "v")
            .with_timestamp(42)
            .with_header("trace", "abc");
        assert_eq!(r.key.as_deref(), Some(b"k".as_ref()));
        assert_eq!(r.value.as_ref(), b"v");
        assert_eq!(r.timestamp_millis, 42);
        assert_eq!(r.headers.len(), 1);
    }

    #[test]
    fn keyless_records() {
        let r = Record::new(None::<Bytes>, vec![1u8, 2, 3]);
        assert!(r.key.is_none());
        assert_eq!(r.payload_size(), 3);
    }

    #[test]
    fn payload_size_counts_everything() {
        let r = Record::new(Some("kk"), "vvv").with_header("h", "x");
        assert_eq!(r.payload_size(), 2 + 3 + 1 + 1);
    }
}
