//! On-disk framing for file-backed partition logs.
//!
//! A segment file is a sequence of frames, each holding one record:
//!
//! ```text
//! ┌──────────────┬───────────────┬──────────────┐
//! │ body_len u32 │ body (…)      │ crc32 u32    │   little-endian
//! └──────────────┴───────────────┴──────────────┘
//! body := offset u64 · timestamp u64
//!       · key_len u32 (u32::MAX = none) · key bytes
//!       · value_len u32 · value bytes
//!       · header_count u16 · (name_len u16 · name · value_len u32 · value)*
//! ```
//!
//! The CRC-32 (IEEE 802.3 polynomial) covers the body only; a frame
//! failing the checksum or the framing invariants is reported as
//! [`Error::Corrupt`].

use bytes::Bytes;

use crate::error::{Error, Result};
use crate::record::{Record, StoredRecord};

/// Marker for "no key" in the key-length field.
const NO_KEY: u32 = u32::MAX;

pub use crate::checksum::crc32;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corrupt(format!(
                "truncated frame: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

/// Encodes one stored record into a framed byte buffer (appended to
/// `buf`). Returns the number of bytes written.
pub fn encode_frame(stored: &StoredRecord, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    put_u32(buf, 0); // body_len placeholder
    let body_start = buf.len();
    put_u64(buf, stored.offset);
    put_u64(buf, stored.record.timestamp_millis);
    match &stored.record.key {
        Some(key) => {
            put_u32(buf, key.len() as u32);
            buf.extend_from_slice(key);
        }
        None => put_u32(buf, NO_KEY),
    }
    put_u32(buf, stored.record.value.len() as u32);
    buf.extend_from_slice(&stored.record.value);
    put_u16(buf, stored.record.headers.len() as u16);
    for (name, value) in &stored.record.headers {
        put_u16(buf, name.len() as u16);
        buf.extend_from_slice(name.as_bytes());
        put_u32(buf, value.len() as u32);
        buf.extend_from_slice(value);
    }
    let body_len = (buf.len() - body_start) as u32;
    buf[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&buf[body_start..]);
    put_u32(buf, crc);
    buf.len() - start
}

/// Decodes one frame from the front of `data`.
///
/// Returns the record and the total number of bytes the frame
/// occupied, so callers can advance through a segment.
///
/// # Errors
///
/// [`Error::Corrupt`] on truncation, checksum mismatch, or invalid
/// UTF-8 in a header name.
pub fn decode_frame(data: &[u8]) -> Result<(StoredRecord, usize)> {
    let mut outer = Reader::new(data);
    let body_len = outer.u32()? as usize;
    let body = outer.bytes(body_len)?;
    let stored_crc = outer.u32()?;
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(Error::Corrupt(format!(
            "crc mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    let mut r = Reader::new(body);
    let offset = r.u64()?;
    let timestamp_millis = r.u64()?;
    let key_len = r.u32()?;
    let key = if key_len == NO_KEY {
        None
    } else {
        Some(Bytes::copy_from_slice(r.bytes(key_len as usize)?))
    };
    let value_len = r.u32()? as usize;
    let value = Bytes::copy_from_slice(r.bytes(value_len)?);
    let header_count = r.u16()?;
    let mut headers = Vec::with_capacity(header_count as usize);
    for _ in 0..header_count {
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|_| Error::Corrupt("header name is not utf-8".into()))?
            .to_string();
        let hval_len = r.u32()? as usize;
        let hval = Bytes::copy_from_slice(r.bytes(hval_len)?);
        headers.push((name, hval));
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes in frame body",
            r.remaining()
        )));
    }
    Ok((
        StoredRecord {
            offset,
            record: Record {
                key,
                value,
                timestamp_millis,
                headers,
            },
        },
        4 + body_len + 4,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(offset: u64) -> StoredRecord {
        StoredRecord {
            offset,
            record: Record::new(Some("job-7"), vec![1u8, 2, 3])
                .with_timestamp(123)
                .with_header("layer", vec![9u8]),
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let written = encode_frame(&sample(42), &mut buf);
        assert_eq!(written, buf.len());
        let (decoded, consumed) = decode_frame(&buf).unwrap();
        assert_eq!(consumed, written);
        assert_eq!(decoded, sample(42));
    }

    #[test]
    fn keyless_frames_round_trip() {
        let stored = StoredRecord {
            offset: 0,
            record: Record::new(None::<Bytes>, "payload"),
        };
        let mut buf = Vec::new();
        encode_frame(&stored, &mut buf);
        let (decoded, _) = decode_frame(&buf).unwrap();
        assert!(decoded.record.key.is_none());
    }

    #[test]
    fn consecutive_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_frame(&sample(1), &mut buf);
        encode_frame(&sample(2), &mut buf);
        let (first, used) = decode_frame(&buf).unwrap();
        let (second, _) = decode_frame(&buf[used..]).unwrap();
        assert_eq!(first.offset, 1);
        assert_eq!(second.offset, 2);
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut buf = Vec::new();
        encode_frame(&sample(1), &mut buf);
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(matches!(decode_frame(&buf), Err(Error::Corrupt(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        encode_frame(&sample(1), &mut buf);
        buf.truncate(buf.len() - 3);
        assert!(matches!(decode_frame(&buf), Err(Error::Corrupt(_))));
    }
}
