//! Property-based tests: wire-format round-trips, log-backend
//! equivalence, and broker delivery invariants.

use proptest::prelude::*;
use strata_pubsub::log::{FileLog, MemoryLog, PartitionLog};
use strata_pubsub::wire;
use strata_pubsub::{Broker, Record, StoredRecord, SyncPolicy, TopicConfig};

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16)),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<u64>(),
        proptest::collection::vec(
            ("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..8)),
            0..3,
        ),
    )
        .prop_map(|(key, value, ts, headers)| {
            let mut r = Record::new(key.map(bytes::Bytes::from), value).with_timestamp(ts);
            for (name, hval) in headers {
                r = r.with_header(name, hval);
            }
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary records survive the frame codec bit-exactly.
    #[test]
    fn frames_round_trip(record in record_strategy(), offset in any::<u64>()) {
        let stored = StoredRecord { offset, record };
        let mut buf = Vec::new();
        wire::encode_frame(&stored, &mut buf);
        let (decoded, used) = wire::decode_frame(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, stored);
    }

    /// The file-backed log and the memory log expose identical
    /// contents for the same appends, including across re-open.
    #[test]
    fn file_and_memory_logs_agree(
        records in proptest::collection::vec(record_strategy(), 1..20),
        segment_bytes in 64u64..512,
        case in 0u32..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "strata-pubsub-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mem = MemoryLog::new();
        {
            let mut file = FileLog::open(&dir, segment_bytes, SyncPolicy::Never).unwrap();
            for r in &records {
                let a = mem.append(r.clone()).unwrap();
                let b = file.append(r.clone()).unwrap();
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(
                mem.read_from(0, usize::MAX).unwrap(),
                file.read_from(0, usize::MAX).unwrap()
            );
        }
        // Recovery sees the same contents.
        let mut reopened = FileLog::open(&dir, segment_bytes, SyncPolicy::Never).unwrap();
        prop_assert_eq!(
            mem.read_from(0, usize::MAX).unwrap(),
            reopened.read_from(0, usize::MAX).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Per-key ordering: a consumer sees the records of any one key
    /// in production order, whatever the partition count.
    #[test]
    fn per_key_order_is_preserved(
        keys in proptest::collection::vec(0u8..4, 1..60),
        partitions in 1u32..5,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(partitions)).unwrap();
        let producer = broker.producer();
        // Value = production sequence number.
        for (seq, key) in keys.iter().enumerate() {
            producer
                .send("t", Some(&[*key]), (seq as u64).to_le_bytes().to_vec())
                .unwrap();
        }
        let mut consumer = broker.consumer("g", &["t"]).unwrap();
        consumer.set_max_poll_records(1_000);
        let mut per_key: std::collections::HashMap<u8, Vec<u64>> = Default::default();
        let mut got = 0;
        while got < keys.len() {
            let polled = consumer.poll(std::time::Duration::from_millis(200)).unwrap();
            prop_assert!(!polled.is_empty(), "all records must be delivered");
            for r in polled {
                got += 1;
                let key = r.record.key.as_ref().unwrap()[0];
                let seq = u64::from_le_bytes(r.record.value.as_ref().try_into().unwrap());
                per_key.entry(key).or_default().push(seq);
            }
        }
        for (key, seqs) in per_key {
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "key {} out of order: {:?}",
                key,
                seqs
            );
        }
    }
}
