//! Broker integration: consumer-group rebalancing under churn and
//! file-backed topics end-to-end.

use std::time::Duration;

use strata_pubsub::{Broker, LogKind, RetentionPolicy, SyncPolicy, TopicConfig};

#[test]
fn rebalance_mid_stream_loses_nothing_committed() {
    let broker = Broker::new();
    broker.create_topic("t", TopicConfig::new(4)).unwrap();
    let producer = broker.producer();
    for i in 0..100u32 {
        producer
            .send("t", Some(&i.to_le_bytes()), i.to_le_bytes().to_vec())
            .unwrap();
    }

    let mut seen = std::collections::BTreeSet::new();
    {
        // First consumer takes everything, reads half, commits.
        let mut c1 = broker.consumer("g", &["t"]).unwrap();
        c1.set_max_poll_records(50);
        for r in c1.poll(Duration::from_millis(200)).unwrap() {
            seen.insert(u32::from_le_bytes(
                r.record.value.as_ref().try_into().unwrap(),
            ));
        }
        c1.commit().unwrap();

        // A second member joins: c1's assignment shrinks; more data
        // arrives and both consume their shares.
        let mut c2 = broker.consumer("g", &["t"]).unwrap();
        for i in 100..140u32 {
            producer
                .send("t", Some(&i.to_le_bytes()), i.to_le_bytes().to_vec())
                .unwrap();
        }
        for consumer in [&mut c1, &mut c2] {
            consumer.set_max_poll_records(500);
            loop {
                let polled = consumer.poll(Duration::from_millis(150)).unwrap();
                if polled.is_empty() {
                    break;
                }
                for r in polled {
                    seen.insert(u32::from_le_bytes(
                        r.record.value.as_ref().try_into().unwrap(),
                    ));
                }
            }
            consumer.commit().unwrap();
        }
    } // Both die; offsets remain.

    // A fresh member resumes from the committed offsets and sees the
    // tail produced after the others left.
    for i in 140..150u32 {
        producer
            .send("t", Some(&i.to_le_bytes()), i.to_le_bytes().to_vec())
            .unwrap();
    }
    let mut c3 = broker.consumer("g", &["t"]).unwrap();
    c3.set_max_poll_records(500);
    loop {
        let polled = c3.poll(Duration::from_millis(150)).unwrap();
        if polled.is_empty() {
            break;
        }
        for r in polled {
            seen.insert(u32::from_le_bytes(
                r.record.value.as_ref().try_into().unwrap(),
            ));
        }
    }
    // Every produced value was seen exactly once overall (the set
    // covers 0..150; committed offsets prevented re-reads from
    // inflating counts, and nothing was skipped).
    assert_eq!(seen.len(), 150);
    assert_eq!(seen.iter().next_back(), Some(&149));
}

#[test]
fn file_backed_topic_round_trips_and_retains() {
    let dir = std::env::temp_dir().join(format!("strata-pubsub-filetopic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let broker = Broker::new();
    broker
        .create_topic(
            "persisted",
            TopicConfig::new(2)
                .with_log(LogKind::File {
                    dir: dir.clone(),
                    segment_bytes: 256,
                    sync: SyncPolicy::Never,
                })
                .with_retention(RetentionPolicy::default().with_max_records(64)),
        )
        .unwrap();
    let producer = broker.producer();
    for i in 0..100u32 {
        producer
            .send("persisted", Some(&[i as u8 % 7]), vec![i as u8; 16])
            .unwrap();
    }
    // Segment files exist on disk.
    let segments = walk_segments(&dir);
    assert!(!segments.is_empty(), "segment files on disk");

    // Retention bounded each partition.
    for p in 0..2 {
        let (start, end) = broker.offsets("persisted", p).unwrap();
        assert!(
            end - start <= 64 + 16,
            "partition {p}: {} live",
            end - start
        );
    }

    // A consumer reads the retained tail.
    let mut consumer = broker.consumer("g", &["persisted"]).unwrap();
    consumer.set_max_poll_records(1_000);
    let mut total = 0;
    loop {
        let polled = consumer.poll(Duration::from_millis(150)).unwrap();
        if polled.is_empty() {
            break;
        }
        total += polled.len();
    }
    let live: u64 = (0..2)
        .map(|p| {
            let (s, e) = broker.offsets("persisted", p).unwrap();
            e - s
        })
        .sum();
    assert_eq!(total as u64, live);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn walk_segments(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                out.extend(walk_segments(&path));
            } else if path.extension().is_some_and(|e| e == "seg") {
                out.push(path);
            }
        }
    }
    out
}

#[test]
fn many_topics_are_isolated() {
    let broker = Broker::new();
    for t in 0..20 {
        broker
            .create_topic(format!("topic-{t}"), TopicConfig::new(1))
            .unwrap();
    }
    let producer = broker.producer();
    for t in 0..20 {
        for _ in 0..=t {
            producer
                .send(&format!("topic-{t}"), None, vec![t as u8])
                .unwrap();
        }
    }
    for t in 0..20u64 {
        let (start, end) = broker.offsets(&format!("topic-{t}"), 0).unwrap();
        assert_eq!(end - start, t + 1, "topic-{t}");
    }
    assert_eq!(broker.topics().len(), 20);
}
