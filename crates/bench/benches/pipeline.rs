//! Criterion end-to-end pipeline benchmarks: per-layer cost of the
//! Algorithm-1 pipeline at two cell sizes, and the connector-mode
//! ablation (pub/sub hop vs direct channels vs a TCP broker server)
//! from DESIGN.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{ConnectorMode, Strata, StrataConfig};
use strata_bench::{bench_machine, BenchScale};

const LAYERS: u32 = 6;

fn run_layers(mode: ConnectorMode, cell_px: u32) -> usize {
    // The config default (batched, 64) — what a deployment gets out
    // of the box.
    run_layers_batched(mode, cell_px, 64)
}

fn run_layers_batched(mode: ConnectorMode, cell_px: u32, batch_size: usize) -> usize {
    let machine = bench_machine(7, BenchScale::Reduced);
    let strata = Strata::new(
        StrataConfig::default()
            .connector_mode(mode.clone())
            .batch_size(batch_size),
    )
    .unwrap();
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        machine,
        ThermalPipelineOptions {
            cell_px,
            depth_l: 10,
            layers: 0..LAYERS,
            offered_rate: Some(0.0),
            parallelism: 2,
            ..ThermalPipelineOptions::default()
        },
    )
    .unwrap();
    let mut got = 0usize;
    while reports.recv_timeout(Duration::from_secs(60)).is_ok() {
        got += 1;
    }
    running.join().unwrap();
    got
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_layers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(LAYERS as u64));
    for cell_px in [10u32, 5] {
        group.bench_with_input(
            BenchmarkId::new("cell_px", cell_px),
            &cell_px,
            |b, &cell| b.iter(|| run_layers(ConnectorMode::PubSub, cell)),
        );
    }
    group.finish();
}

fn bench_connector_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("connector_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(LAYERS as u64));
    group.bench_function("pubsub", |b| {
        b.iter(|| run_layers(ConnectorMode::PubSub, 10))
    });
    group.bench_function("direct", |b| {
        b.iter(|| run_layers(ConnectorMode::Direct, 10))
    });
    // Same pipeline, but every connector hop crosses a TCP broker
    // server on loopback — the cost of going from in-process pub/sub
    // to a real networked broker. A fresh server per iteration keeps
    // topics and committed offsets from leaking across runs.
    group.bench_function("tcp", |b| {
        b.iter(|| {
            let mut server =
                strata_net::BrokerServer::bind("127.0.0.1:0", strata_pubsub::Broker::new())
                    .unwrap();
            let got = run_layers(
                ConnectorMode::Remote {
                    addr: server.local_addr().to_string(),
                },
                10,
            );
            server.shutdown();
            got
        })
    });
    group.finish();
}

/// The data-plane batching ablation at pipeline granularity: the
/// whole Algorithm-1 pipeline item-at-a-time vs micro-batched. The
/// end-to-end win is smaller than the raw engine's (the pipeline is
/// dominated by image processing, not channel hops) but comes for
/// free — results are identical at every batch size.
fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_batching");
    group.sample_size(10);
    group.throughput(Throughput::Elements(LAYERS as u64));
    for batch in [1usize, 64] {
        group.bench_with_input(BenchmarkId::new("batch_size", batch), &batch, |b, &bs| {
            b.iter(|| run_layers_batched(ConnectorMode::PubSub, 10, bs))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_connector_overhead,
    bench_batching
);
criterion_main!(benches);
