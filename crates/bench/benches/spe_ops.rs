//! Criterion micro-benchmarks of the stream engine's native
//! operators, plus the operator-chaining ablation called out in
//! DESIGN.md (thread-per-operator vs fused closures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strata_spe::prelude::*;

const N: u64 = 100_000;

fn run_linear_query(stages: usize, fused: bool, batch: usize) -> usize {
    let mut qb = QueryBuilder::new("bench");
    qb.channel_capacity(1024);
    qb.batch_size(batch);
    let src = qb.source("src", IteratorSource::new(0..N));
    let out = if fused {
        // One operator applying all stages in a single closure.
        let stream = qb.map("fused", &src, move |x: u64| {
            let mut v = x;
            for _ in 0..stages {
                v = v.wrapping_mul(31).wrapping_add(7);
            }
            v
        });
        qb.collect_sink("out", &stream)
    } else {
        // One thread-hopping operator per stage.
        let mut stream = src;
        for k in 0..stages {
            stream = qb.map(format!("stage{k}"), &stream, |x: u64| {
                x.wrapping_mul(31).wrapping_add(7)
            });
        }
        qb.collect_sink("out", &stream)
    };
    qb.build().unwrap().run().join().unwrap();
    out.take().len()
}

fn bench_chaining(c: &mut Criterion) {
    let mut group = c.benchmark_group("spe_chaining");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);
    for stages in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("thread_per_operator", stages),
            &stages,
            |b, &s| b.iter(|| assert_eq!(run_linear_query(s, false, 1), N as usize)),
        );
        // The same thread-per-operator chain with micro-batched
        // channels: how much of the fusion win batching recovers
        // without giving up the operator boundaries.
        group.bench_with_input(
            BenchmarkId::new("thread_per_operator_batch64", stages),
            &stages,
            |b, &s| b.iter(|| assert_eq!(run_linear_query(s, false, 64), N as usize)),
        );
        group.bench_with_input(BenchmarkId::new("fused", stages), &stages, |b, &s| {
            b.iter(|| assert_eq!(run_linear_query(s, true, 1), N as usize))
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    #[derive(Debug, Clone)]
    struct E(u64, u32);
    impl Timestamped for E {
        fn timestamp(&self) -> Timestamp {
            Timestamp::from_millis(self.0)
        }
    }
    let mut group = c.benchmark_group("spe_aggregate");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);
    group.bench_function("tumbling_count_grouped", |b| {
        b.iter(|| {
            let items: Vec<E> = (0..N).map(|i| E(i, (i % 16) as u32)).collect();
            let mut qb = QueryBuilder::new("agg");
            qb.channel_capacity(1024);
            let src = qb.source("src", IteratorSource::with_watermarks(items));
            let agg = qb.aggregate(
                "count",
                &src,
                WindowSpec::tumbling(1_000).unwrap(),
                |e: &E| e.1,
                |_, _, items: &[E]| vec![items.len()],
            );
            let out = qb.collect_sink("out", &agg);
            qb.build().unwrap().run().join().unwrap();
            out.take().iter().sum::<usize>()
        })
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    #[derive(Debug, Clone)]
    struct E(u64, u32);
    impl Timestamped for E {
        fn timestamp(&self) -> Timestamp {
            Timestamp::from_millis(self.0)
        }
    }
    let n = 20_000u64;
    let mut group = c.benchmark_group("spe_join");
    group.throughput(Throughput::Elements(n * 2));
    group.sample_size(10);
    group.bench_function("same_timestamp_keyed", |b| {
        b.iter(|| {
            let left: Vec<E> = (0..n).map(|i| E(i, (i % 64) as u32)).collect();
            let right = left.clone();
            let mut qb = QueryBuilder::new("join");
            qb.channel_capacity(1024);
            let l = qb.source("l", IteratorSource::with_watermarks(left));
            let r = qb.source("r", IteratorSource::with_watermarks(right));
            let joined = qb.join(
                "join",
                &l,
                &r,
                0,
                |e: &E| e.1,
                |e: &E| e.1,
                |a: &E, b: &E| (a.0 == b.0).then_some(a.0),
            );
            let out = qb.collect_sink("out", &joined);
            qb.build().unwrap().run().join().unwrap();
            out.take().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chaining, bench_aggregate, bench_join);
criterion_main!(benches);
