//! Criterion micro-benchmarks of the clustering substrate: the
//! grid-accelerated vs naive DBSCAN ablation, and DBSCAN vs the
//! k-means baseline the paper's use-case replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strata_cluster::naive::dbscan_naive;
use strata_cluster::{dbscan, kmeans, DbscanParams, KmeansParams, Point};

/// A defect-like point cloud: dense blobs on a sparse background,
/// deterministic via an xorshift generator.
fn defect_cloud(n: usize) -> Vec<Point> {
    let mut seed = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 100_000) as f64 / 1_000.0
    };
    let mut points = Vec::with_capacity(n);
    // 80% blob members around 10 centers, 20% background noise.
    let centers: Vec<(f64, f64)> = (0..10).map(|_| (next(), next())).collect();
    for i in 0..n {
        if i % 5 == 0 {
            points.push(Point::new(next(), next(), next() / 50.0));
        } else {
            let (cx, cy) = centers[i % centers.len()];
            points.push(Point::new(
                cx + (next() - 50.0) / 100.0,
                cy + (next() - 50.0) / 100.0,
                next() / 50.0,
            ));
        }
    }
    points
}

fn bench_dbscan_grid_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    let params = DbscanParams::new(0.8, 4).unwrap();
    for n in [1_000usize, 5_000] {
        let points = defect_cloud(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("grid", n), &points, |b, pts| {
            b.iter(|| dbscan(pts, &params).len())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &points, |b, pts| {
            b.iter(|| dbscan_naive(pts, &params).len())
        });
    }
    group.finish();
}

fn bench_dbscan_vs_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_baseline");
    let points = defect_cloud(5_000);
    group.throughput(Throughput::Elements(points.len() as u64));
    let db = DbscanParams::new(0.8, 4).unwrap();
    group.bench_function("dbscan", |b| b.iter(|| dbscan(&points, &db).len()));
    let km = KmeansParams::new(10).unwrap().max_iterations(20);
    group.bench_function("kmeans_k10", |b| b.iter(|| kmeans(&points, &km).iterations));
    group.finish();
}

criterion_group!(benches, bench_dbscan_grid_vs_naive, bench_dbscan_vs_kmeans);
criterion_main!(benches);
