//! Micro-batch throughput: the map→filter→aggregate chain from the
//! paper's operator benchmarks, swept across `QueryBuilder::batch_size`
//! values. Besides the criterion-style report, the harness writes
//! `BENCH_spe_batch.json` at the repository root with the items/sec
//! datapoint for every batch size, so the before/after table in
//! EXPERIMENTS.md can be regenerated mechanically:
//!
//! ```text
//! cargo bench --bench spe_batch
//! ```

use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use strata_spe::prelude::*;

const ITEMS: u64 = 300_000;
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

#[derive(Clone, Copy)]
struct Ev {
    ts: u64,
    val: u64,
}

impl Timestamped for Ev {
    fn timestamp(&self) -> Timestamp {
        Timestamp::from_millis(self.ts)
    }
}

/// Emits `n` items with a watermark every 1024 items: sparse enough
/// that batches actually form (watermarks are batch boundaries),
/// frequent enough that the aggregate's windows close as data flows.
struct SparseSource {
    n: u64,
}

impl Source for SparseSource {
    type Out = Ev;

    fn run(&mut self, ctx: &mut SourceContext<Ev>) -> std::result::Result<(), String> {
        for i in 0..self.n {
            let item = Ev {
                ts: i / 8,
                val: i.wrapping_mul(2_654_435_761) % 1_000,
            };
            if !ctx.emit(item) {
                return Ok(());
            }
            if (i + 1) % 1024 == 0 && !ctx.emit_watermark(Timestamp::from_millis(item.ts)) {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Runs the chain once and returns the wall-clock time from start to
/// full drain (query join).
fn run_chain(n: u64, batch_size: usize) -> Duration {
    let mut qb = QueryBuilder::new(format!("spe_batch.bs{batch_size}"));
    qb.channel_capacity(1024);
    qb.batch_size(batch_size);
    qb.batch_timeout(Duration::from_millis(100));
    let src = qb.source("src", SparseSource { n });
    let mapped = qb.map("map", &src, |e: Ev| Ev {
        ts: e.ts,
        val: e.val.wrapping_mul(31).wrapping_add(7) % 1_000,
    });
    let filtered = qb.filter("filter", &mapped, |e: &Ev| !e.val.is_multiple_of(3));
    let agg = qb.aggregate(
        "aggregate",
        &filtered,
        WindowSpec::tumbling(1_000).unwrap(),
        |e: &Ev| e.val % 16,
        |_k: &u64, bounds: WindowBounds, items: &[Ev]| {
            vec![Ev {
                ts: bounds.end.as_millis(),
                val: items.len() as u64,
            }]
        },
    );
    let counted = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink_counted = std::sync::Arc::clone(&counted);
    qb.sink("sink", &agg, move |_e: Ev| {
        sink_counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    let started = Instant::now();
    qb.build().unwrap().run().join().unwrap();
    let elapsed = started.elapsed();
    assert!(counted.load(std::sync::atomic::Ordering::Relaxed) > 0);
    elapsed
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("spe_batch");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(ITEMS));
    for batch_size in BATCH_SIZES {
        group.bench_with_input(
            BenchmarkId::new("map_filter_aggregate", batch_size),
            &batch_size,
            |b, &bs| b.iter(|| run_chain(ITEMS, bs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sizes);

/// Median items/sec over `runs` timed runs.
fn items_per_sec(batch_size: usize, runs: usize) -> f64 {
    let mut times: Vec<Duration> = (0..runs).map(|_| run_chain(ITEMS, batch_size)).collect();
    times.sort();
    ITEMS as f64 / times[times.len() / 2].as_secs_f64()
}

fn main() {
    benches();

    // Datapoints for EXPERIMENTS.md, written machine-readably to the
    // repository root (crates/bench/../..).
    let datapoints: Vec<String> = BATCH_SIZES
        .iter()
        .map(|&bs| {
            let rate = items_per_sec(bs, 5);
            println!("spe_batch json: batch_size={bs} items_per_sec={rate:.0}");
            format!("    {{ \"batch_size\": {bs}, \"items_per_sec\": {rate:.0} }}")
        })
        .collect();
    let doc = format!(
        "{{\n  \"bench\": \"spe_batch\",\n  \"chain\": \"map -> filter -> aggregate\",\n  \
         \"items\": {ITEMS},\n  \"datapoints\": [\n{}\n  ]\n}}\n",
        datapoints.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spe_batch.json");
    std::fs::write(path, doc).unwrap();
    println!("wrote {path}");
}
