//! Criterion micro-benchmarks of the metrics layer. Instruments sit
//! on every hot path (operator loop, broker append, kv put), so a
//! counter increment or histogram record must cost nanoseconds, and
//! rendering must stay cheap enough to scrape every few seconds.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use strata_obs::{Histogram, Registry};

fn bench_instruments(c: &mut Criterion) {
    let registry = Registry::new();
    let mut group = c.benchmark_group("obs_record");
    group.throughput(Throughput::Elements(1));

    let counter = registry.counter("bench_items_total", "items", &[("node", "n0")]);
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = registry.gauge("bench_depth", "depth", &[]);
    group.bench_function("gauge_set", |b| {
        let mut v = 0i64;
        b.iter(|| {
            v = (v + 1) & 1023;
            gauge.set(v);
        })
    });

    let histogram = registry.histogram("bench_latency_ns", "latency", &[]);
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(v >> 40);
        })
    });
    group.bench_function("histogram_record_since", |b| {
        b.iter(|| histogram.record_since(Instant::now()))
    });

    group.finish();
}

fn bench_snapshot_and_render(c: &mut Criterion) {
    // A registry shaped like a real instance: a few dozen histograms
    // plus counters, all with recorded data.
    let registry = Registry::new();
    for q in 0..4 {
        for n in 0..8 {
            let node = format!("node{n}");
            let query = format!("query{q}");
            let labels = [("query", query.as_str()), ("node", node.as_str())];
            let h = registry.histogram("spe_like_process_ns", "latency", &labels);
            let items = registry.counter("spe_like_items_total", "items", &labels);
            for i in 0..1000u64 {
                h.record(i * 17 % 100_000);
            }
            items.add(1000);
        }
    }

    let one: Histogram = registry.histogram(
        "spe_like_process_ns",
        "latency",
        &[("query", "query0"), ("node", "node0")],
    );
    c.bench_function("obs_snapshot", |b| b.iter(|| one.snapshot()));

    let mut group = c.benchmark_group("obs_render");
    group.throughput(Throughput::Elements(32));
    group.bench_function("32_histograms", |b| b.iter(|| registry.render()));
    group.finish();
}

criterion_group!(benches, bench_instruments, bench_snapshot_and_render);
criterion_main!(benches);
