//! Criterion micro-benchmarks of the pub/sub broker: produce/consume
//! round-trips with small records and with OT-image-sized payloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strata_pubsub::{Broker, TopicConfig};

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("pubsub_roundtrip");
    for (label, payload_bytes) in [("1KiB", 1024usize), ("4MiB_ot_image", 4 * 1024 * 1024)] {
        let batch = if payload_bytes > 1024 { 4u64 } else { 256 };
        group.throughput(Throughput::Bytes(payload_bytes as u64 * batch));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            let broker = Broker::new();
            broker.create_topic("t", TopicConfig::new(1)).unwrap();
            let producer = broker.producer();
            let mut consumer = broker.consumer("g", &["t"]).unwrap();
            consumer.set_max_poll_records(batch as usize);
            let payload = vec![0xABu8; payload_bytes];
            b.iter(|| {
                for _ in 0..batch {
                    producer.send("t", Some(b"k"), payload.clone()).unwrap();
                }
                let mut got = 0u64;
                while got < batch {
                    got += consumer.poll(Duration::from_secs(1)).unwrap().len() as u64;
                }
                got
            })
        });
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    // One producer, several independent groups — the overlapping
    // pipelines scenario.
    let mut group = c.benchmark_group("pubsub_fanout");
    group.sample_size(10);
    for groups in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("groups", groups), &groups, |b, &groups| {
            let broker = Broker::new();
            broker.create_topic("t", TopicConfig::new(1)).unwrap();
            let producer = broker.producer();
            let mut consumers: Vec<_> = (0..groups)
                .map(|g| broker.consumer(format!("g{g}"), &["t"]).unwrap())
                .collect();
            let n = 512u64;
            b.iter(|| {
                for i in 0..n {
                    producer.send("t", None, vec![i as u8; 128]).unwrap();
                }
                for consumer in &mut consumers {
                    let mut got = 0u64;
                    while got < n {
                        got += consumer.poll(Duration::from_secs(1)).unwrap().len() as u64;
                    }
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roundtrip, bench_fanout);
criterion_main!(benches);
