//! Criterion micro-benchmarks of the LSM key-value store, including
//! the bloom-filter ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strata_kv::{Db, DbOptions};

fn filled_db(dir: &std::path::Path, bloom_bits: u32, keys: u32) -> Db {
    let _ = std::fs::remove_dir_all(dir);
    let db = Db::open(
        dir,
        DbOptions::default()
            .memtable_bytes(64 * 1024)
            .bloom_bits_per_key(bloom_bits),
    )
    .unwrap();
    for i in 0..keys {
        db.put(format!("key-{i:08}"), format!("value-{i}")).unwrap();
    }
    db.flush().unwrap();
    db
}

fn bench_point_lookups(c: &mut Criterion) {
    let keys = 50_000u32;
    let mut group = c.benchmark_group("kv_get");
    group.throughput(Throughput::Elements(1));
    for (label, bloom_bits) in [("bloom", 10u32), ("no_bloom", 0)] {
        let dir = std::env::temp_dir().join(format!("strata-bench-kv-{label}"));
        let db = filled_db(&dir, bloom_bits, keys);
        let mut i = 0u32;
        group.bench_with_input(BenchmarkId::new("hit", label), &(), |b, ()| {
            b.iter(|| {
                i = (i + 7919) % keys;
                db.get(format!("key-{i:08}")).unwrap().expect("present")
            })
        });
        let mut j = 0u32;
        group.bench_with_input(BenchmarkId::new("miss", label), &(), |b, ()| {
            b.iter(|| {
                // Misses *inside* the stored key range, so the sparse
                // index cannot reject them without a block read — the
                // case bloom filters exist for.
                j = (j + 7919) % keys;
                db.get(format!("key-{j:08}.absent")).unwrap()
            })
        });
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_put");
    group.throughput(Throughput::Elements(1));
    for (label, wal) in [("wal", true), ("no_wal", false)] {
        let dir = std::env::temp_dir().join(format!("strata-bench-kv-put-{label}"));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Db::open(
            &dir,
            DbOptions::default()
                .memtable_bytes(8 * 1024 * 1024)
                .wal(wal),
        )
        .unwrap();
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                db.put(format!("key-{i:012}"), b"value-payload-32-bytes-xxxxxxxx")
                    .unwrap()
            })
        });
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("strata-bench-kv-scan");
    let db = filled_db(&dir, 10, 20_000);
    let mut group = c.benchmark_group("kv_scan");
    group.bench_function("prefix_1000", |b| {
        b.iter(|| {
            // key-000xx... prefix matches 1000 keys (00000000..00000999).
            db.scan_prefix("key-0000").unwrap().len()
        })
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_point_lookups, bench_writes, bench_scans);
criterion_main!(benches);
