//! `strata-bench` — the experiment harness regenerating every figure
//! of the STRATA paper's evaluation (§5).
//!
//! The paper evaluates one use-case pipeline (Algorithm 1) on a build
//! of 12 specimens imaged at 2000×2000 px per layer, on a 4-core
//! server, with a 3 s QoS threshold (the recoat gap):
//!
//! * **Figure 4** — an OT image of a specimen and its thermal-energy
//!   clustering ([`fig4`]);
//! * **Figure 5** — latency boxplots for cell sizes 40×40 → 2×2 px
//!   ([`fig5`]);
//! * **Figure 6** — latency boxplots for `L` ∈ 5 → 80 layers
//!   ([`fig6`]);
//! * **Figure 7** — throughput (k cells/s) and average latency versus
//!   the offered OT-image rate, for 20×20 and 10×10 cells
//!   ([`fig7`]).
//!
//! Run everything with
//! `cargo run --release -p strata-bench --bin repro -- all`.

pub mod experiments;
pub mod workload;

pub use experiments::{fig4, fig5, fig6, fig7};
pub use workload::{bench_machine, BenchScale};
