//! Workload construction shared by the figure experiments and the
//! criterion micro-benchmarks.

use std::sync::Arc;

use strata_amsim::{MachineConfig, PbfLbMachine};

/// How big the synthetic build is rendered.
///
/// `Paper` is the full 2000×2000 px geometry of the evaluation;
/// `Reduced` renders at 1000×1000 px (4× fewer pixels) for quick
/// runs; the *shape* of every result is preserved because all
/// pipeline parameters are expressed relative to the image scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// 2000×2000 px OT images (the paper's sensor resolution).
    Paper,
    /// 1000×1000 px OT images for quick runs.
    Reduced,
}

impl BenchScale {
    /// OT image edge length in pixels.
    pub fn image_px(&self) -> u32 {
        match self {
            BenchScale::Paper => 2000,
            BenchScale::Reduced => 1000,
        }
    }

    /// Scales a cell size given in paper pixels (2000-px frame) to
    /// this scale, keeping the physical cell size in mm identical.
    pub fn cell_px(&self, paper_cell_px: u32) -> u32 {
        (paper_cell_px * self.image_px() / 2000).max(1)
    }
}

/// The evaluation machine: the paper's 12-specimen build with the
/// defect-prone scan orientation first (so short experiments see
/// events immediately) and a defect rate that yields clearly visible
/// clusters.
pub fn bench_machine(job: u32, scale: BenchScale) -> Arc<PbfLbMachine> {
    bench_machine_rated(job, scale, 1.2)
}

/// [`bench_machine`] with an explicit defect rate — the Figure 6
/// experiment needs a denser event stream so the cross-layer
/// clustering cost (the quantity that grows with `L`) is visible over
/// the fixed per-layer image-scan cost.
pub fn bench_machine_rated(job: u32, scale: BenchScale, defect_rate: f64) -> Arc<PbfLbMachine> {
    bench_machine_scheduled(
        job,
        scale,
        defect_rate,
        strata_amsim::scan::ScanSchedule::new(90.0, 67.0),
    )
}

/// [`bench_machine_rated`] with an explicit scan schedule. Figure 6
/// uses a constant gas-parallel angle so every layer carries the same
/// event density: with the rotating schedule, deep windows would mix
/// defect-rich and defect-poor stacks and mask the L effect.
pub fn bench_machine_scheduled(
    job: u32,
    scale: BenchScale,
    defect_rate: f64,
    schedule: strata_amsim::scan::ScanSchedule,
) -> Arc<PbfLbMachine> {
    Arc::new(
        PbfLbMachine::new(
            MachineConfig::paper_build(job)
                .image_px(scale.image_px())
                // Real machine timing: ~1 min melt (the paper: live OT
                // images "come within a period of minutes"), 3 s recoat.
                .timing(60_000, 3_000)
                .schedule(schedule)
                .defect_rate(defect_rate),
        )
        .expect("valid paper-build configuration"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_preserve_physical_cell_size() {
        assert_eq!(BenchScale::Paper.cell_px(40), 40);
        assert_eq!(BenchScale::Reduced.cell_px(40), 20);
        assert_eq!(BenchScale::Reduced.cell_px(2), 1, "clamped to 1 px");
    }

    #[test]
    fn bench_machine_matches_the_paper_geometry() {
        let m = bench_machine(0, BenchScale::Reduced);
        assert_eq!(m.plan().specimens().len(), 12);
        assert_eq!(m.recoat_ms(), 3_000);
        assert_eq!(m.layer_count(), 575);
    }
}
