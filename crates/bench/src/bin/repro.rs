//! `repro` — regenerates the figures of the STRATA paper.
//!
//! ```sh
//! cargo run --release -p strata-bench --bin repro -- all
//! cargo run --release -p strata-bench --bin repro -- fig5 --quick
//! cargo run --release -p strata-bench --bin repro -- fig7 --scale reduced
//! ```
//!
//! Results are printed as tables and written as JSON (and PGM images
//! for Figure 4) under `target/repro/`.

use std::path::PathBuf;

use strata_bench::experiments::{fig4, fig5, fig6, fig7, Effort};
use strata_bench::BenchScale;

fn usage() -> ! {
    eprintln!("usage: repro <fig4|fig5|fig6|fig7|all> [--quick|--full] [--scale paper|reduced]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = None;
    let mut effort = Effort::Default;
    // Reduced is the default: it preserves every result shape while
    // fitting small hosts; pass `--scale paper` for the full
    // 2000×2000 px sensor resolution.
    let mut scale = BenchScale::Reduced;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "fig4" | "fig5" | "fig6" | "fig7" | "all" => which = Some(arg.clone()),
            "--quick" => effort = Effort::Quick,
            "--full" => effort = Effort::Full,
            "--scale" => {
                scale = match iter.next().map(String::as_str) {
                    Some("paper") => BenchScale::Paper,
                    Some("reduced") => BenchScale::Reduced,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());
    let out_dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    println!(
        "STRATA reproduction — scale: {scale:?}, effort: {effort:?}, host: {} cpus",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    if which == "fig4" || which == "all" {
        println!("\n── Figure 4: OT image + thermal-energy clustering ──");
        let artifacts = fig4(scale, &out_dir).expect("fig4 artifacts");
        println!(
            "specimen {} @ layer {}: {} cluster(s) from {} events",
            artifacts.specimen, artifacts.layer, artifacts.clusters, artifacts.events
        );
        println!("  OT image:      {}", artifacts.ot_image);
        println!("  cluster image: {}", artifacts.clusters_image);
        write_json(&out_dir, "fig4.json", &artifacts);
    }

    if which == "fig5" || which == "all" {
        println!("\n── Figure 5: latency vs cell size (QoS 3 s) ──");
        let rows = fig5(scale, effort);
        println!(
            "{:>8} {:>10} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5}",
            "cell", "area mm²", "cells/img", "min ms", "q1 ms", "median", "q3 ms", "max ms", "QoS"
        );
        for r in &rows {
            println!(
                "{:>5}x{:<2} {:>10.2} {:>12} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>5}",
                r.cell_px,
                r.cell_px,
                r.cell_area_mm2,
                r.cells_per_image,
                r.latency.min,
                r.latency.q1,
                r.latency.median,
                r.latency.q3,
                r.latency.max,
                if r.qos_met { "ok" } else { "MISS" },
            );
        }
        write_json(&out_dir, "fig5.json", &rows);
    }

    if which == "fig6" || which == "all" {
        println!("\n── Figure 6: latency vs layers clustered together (QoS 3 s) ──");
        let rows = fig6(scale, effort);
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5}",
            "L", "depth mm", "min ms", "q1 ms", "median", "q3 ms", "max ms", "QoS"
        );
        for r in &rows {
            println!(
                "{:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>5}",
                r.depth_l,
                r.depth_mm,
                r.latency.min,
                r.latency.q1,
                r.latency.median,
                r.latency.q3,
                r.latency.max,
                if r.qos_met { "ok" } else { "MISS" },
            );
        }
        write_json(&out_dir, "fig6.json", &rows);
    }

    if which == "fig7" || which == "all" {
        println!("\n── Figure 7: throughput / latency vs offered OT images/s ──");
        let points = fig7(scale, effort);
        println!(
            "{:>8} {:>12} {:>8} {:>12} {:>12} {:>14}",
            "cell", "offered/s", "images", "images/s", "kcells/s", "mean lat ms"
        );
        for p in &points {
            println!(
                "{:>5}x{:<2} {:>12.1} {:>8} {:>12.2} {:>12.1} {:>14.1}",
                p.cell_px,
                p.cell_px,
                p.offered_rate,
                p.images,
                p.images_per_s,
                p.kcells_per_s,
                p.mean_latency_ms,
            );
        }
        write_json(&out_dir, "fig7.json", &points);
    }

    println!("\nJSON written under {}", out_dir.display());
}

fn write_json<T: serde::Serialize>(dir: &std::path::Path, name: &str, value: &T) {
    let path = dir.join(name);
    let json = serde_json::to_string_pretty(value).expect("serializable results");
    std::fs::write(&path, json).expect("write results file");
}
