//! The figure experiments (paper §5, "Evaluation results").

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;
use strata::usecase::thermal::{self, ThermalPipelineOptions};
use strata::{ExpertReport, LatencySummary, Strata, StrataConfig};
use strata_amsim::PbfLbMachine;

use crate::workload::{bench_machine, BenchScale};

/// How much wall clock to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Fast sanity pass (small layer counts).
    Quick,
    /// The default: enough samples for stable boxplots.
    Default,
    /// Paper-like sample counts (5 repetitions worth of layers).
    Full,
}

impl Effort {
    fn layers_for_latency(&self) -> u32 {
        match self {
            Effort::Quick => 8,
            Effort::Default => 14,
            Effort::Full => 30,
        }
    }

    fn layers_for_depth(&self, depth_l: u32) -> u32 {
        match self {
            Effort::Quick => depth_l / 4 + 6,
            Effort::Default => depth_l / 2 + 10,
            Effort::Full => depth_l + 12,
        }
    }
}

/// Serializable five-number latency summary (milliseconds).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BoxplotMs {
    /// Sample count.
    pub count: usize,
    /// Minimum, ms.
    pub min: f64,
    /// First quartile, ms.
    pub q1: f64,
    /// Median, ms.
    pub median: f64,
    /// Third quartile, ms.
    pub q3: f64,
    /// Maximum, ms.
    pub max: f64,
    /// Mean, ms.
    pub mean: f64,
}

impl From<LatencySummary> for BoxplotMs {
    fn from(s: LatencySummary) -> Self {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        BoxplotMs {
            count: s.count,
            min: ms(s.min),
            q1: ms(s.q1),
            median: ms(s.median),
            q3: ms(s.q3),
            max: ms(s.max),
            mean: ms(s.mean),
        }
    }
}

/// Drains the expert channel until it closes, returning all reports.
fn drain_reports(reports: &crossbeam::channel::Receiver<ExpertReport>) -> Vec<ExpertReport> {
    let mut out = Vec::new();
    while let Ok(report) = reports.recv_timeout(Duration::from_secs(300)) {
        out.push(report);
    }
    out
}

/// Per-layer completion latency: the slowest report of each layer
/// (the moment the expert has the complete up-to-date picture for the
/// image), skipping `warmup` layers.
pub(crate) fn per_layer_latencies(reports: &[ExpertReport], warmup: u32) -> Vec<Duration> {
    let mut by_layer: std::collections::BTreeMap<u32, Duration> = std::collections::BTreeMap::new();
    for report in reports {
        let layer = report.tuple.metadata().layer;
        let entry = by_layer.entry(layer).or_insert(Duration::ZERO);
        *entry = (*entry).max(report.latency);
    }
    by_layer
        .into_iter()
        .filter(|(layer, _)| *layer >= warmup)
        .map(|(_, latency)| latency)
        .collect()
}

/// One complete pipeline run in "one image at a time" mode: the
/// offered gap is calibrated so a layer finishes before the next one
/// arrives, mimicking the paper's live setting without waiting whole
/// minutes per layer.
fn run_latency_probe(
    machine: Arc<PbfLbMachine>,
    cell_px: u32,
    depth_l: u32,
    layers: u32,
    gap_factor: f64,
) -> (Vec<Duration>, Duration) {
    // Calibration pass: 3 layers as fast as possible.
    let calibration = {
        let strata = Strata::new(StrataConfig::default()).expect("in-memory strata");
        let (running, reports) = thermal::deploy_pipeline(
            &strata,
            Arc::clone(&machine),
            ThermalPipelineOptions {
                cell_px,
                depth_l,
                layers: 0..3,
                offered_rate: Some(0.0),
                parallelism: 2,
                ..ThermalPipelineOptions::default()
            },
        )
        .expect("calibration pipeline deploys");
        let collected = drain_reports(&reports);
        running.join().expect("calibration pipeline finishes");
        collected
            .iter()
            .map(|r| r.latency)
            .max()
            .unwrap_or(Duration::from_millis(50))
    };
    let gap = Duration::from_secs_f64(calibration.as_secs_f64() * 2.0 * gap_factor.max(1.0))
        .max(Duration::from_millis(50));

    // Measurement pass.
    let strata = Strata::new(StrataConfig::default()).expect("in-memory strata");
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        machine,
        ThermalPipelineOptions {
            cell_px,
            depth_l,
            layers: 0..layers,
            offered_rate: Some(1.0 / gap.as_secs_f64()),
            parallelism: 2,
            ..ThermalPipelineOptions::default()
        },
    )
    .expect("measurement pipeline deploys");
    let collected = drain_reports(&reports);
    running.join().expect("measurement pipeline finishes");
    (per_layer_latencies(&collected, 2), gap)
}

// ───────────────────────── Figure 5 ─────────────────────────

/// One row of Figure 5: the latency distribution at one cell size.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Cell edge in paper pixels (2000-px frame).
    pub cell_px: u32,
    /// Cell area in mm² (the paper's secondary axis: 5 → 0.25 mm²).
    pub cell_area_mm2: f64,
    /// Cells analyzed per OT image.
    pub cells_per_image: u64,
    /// The latency boxplot.
    pub latency: BoxplotMs,
    /// Whether every sample met the 3 s QoS threshold.
    pub qos_met: bool,
}

/// Figure 5: latency vs cell size (40×40 → 2×2 paper pixels).
pub fn fig5(scale: BenchScale, effort: Effort) -> Vec<Fig5Row> {
    let layers = effort.layers_for_latency();
    let mut rows = Vec::new();
    for &cell_px in &[40u32, 20, 10, 4, 2] {
        let machine = bench_machine(50 + cell_px, scale);
        let scaled = scale.cell_px(cell_px);
        let (latencies, _gap) = run_latency_probe(Arc::clone(&machine), scaled, 20, layers, 1.0);
        let summary = LatencySummary::from_samples(&latencies).expect("probe produced samples");
        let mm_per_px = machine.plan().plate_mm() / 2000.0;
        let cell_mm = cell_px as f64 * mm_per_px;
        let specimen = &machine.plan().specimens()[0].rect;
        let per_spec = (specimen.w / cell_mm).ceil() * (specimen.h / cell_mm).ceil();
        rows.push(Fig5Row {
            cell_px,
            cell_area_mm2: cell_mm * cell_mm,
            cells_per_image: (per_spec as u64) * machine.plan().specimens().len() as u64,
            latency: BoxplotMs::from(summary),
            qos_met: summary.max <= Duration::from_secs(3),
        });
    }
    rows
}

// ───────────────────────── Figure 6 ─────────────────────────

/// One row of Figure 6: the latency distribution at one window depth.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// The `correlateEvents` depth `L`, in layers.
    pub depth_l: u32,
    /// The physical depth in mm (paper: 0.2 mm → 3.2 mm).
    pub depth_mm: f64,
    /// The latency boxplot.
    pub latency: BoxplotMs,
    /// Whether every sample met the 3 s QoS threshold.
    pub qos_met: bool,
}

/// Figure 6: latency vs the number of previous layers clustered
/// together (`L` ∈ 5 → 80).
pub fn fig6(scale: BenchScale, effort: Effort) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &depth_l in &[5u32, 10, 20, 40, 80] {
        // A dense event stream (high defect rate, small cells) makes
        // the cross-layer clustering cost dominate, which is the cost
        // that grows with L.
        let machine = crate::workload::bench_machine_scheduled(
            100 + depth_l,
            scale,
            30.0,
            strata_amsim::scan::ScanSchedule::new(90.0, 0.0),
        );
        let layers = effort.layers_for_depth(depth_l);
        // The calibration pass only fills a 3-layer window; deeper
        // windows cost more, so pad the offered gap to stay
        // queue-free.
        let (latencies, _gap) = run_latency_probe(
            Arc::clone(&machine),
            scale.cell_px(4),
            depth_l,
            layers,
            1.0 + depth_l as f64 / 16.0,
        );
        // Sample the second half of the run, where windows are as
        // deep as this run gets.
        let tail: Vec<Duration> = latencies[latencies.len() / 2..].to_vec();
        let summary = LatencySummary::from_samples(&tail).expect("probe produced samples");
        rows.push(Fig6Row {
            depth_l,
            depth_mm: depth_l as f64 * machine.plan().layer_thickness_mm(),
            latency: BoxplotMs::from(summary),
            qos_met: summary.max <= Duration::from_secs(3),
        });
    }
    rows
}

// ───────────────────────── Figure 7 ─────────────────────────

/// One point of Figure 7: one offered rate at one cell size.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Point {
    /// Cell edge in paper pixels.
    pub cell_px: u32,
    /// Offered OT images per second.
    pub offered_rate: f64,
    /// Achieved throughput in thousands of cells per second.
    pub kcells_per_s: f64,
    /// Achieved image completion rate per second.
    pub images_per_s: f64,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Number of images replayed.
    pub images: u32,
}

/// Figure 7: throughput and latency for increasing offered OT-image
/// rates, at 20×20 and 10×10 (paper-pixel) cells.
pub fn fig7(scale: BenchScale, effort: Effort) -> Vec<Fig7Point> {
    let rates: &[f64] = match effort {
        Effort::Quick => &[2.0, 8.0, 32.0, 96.0],
        _ => &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
    };
    let mut points = Vec::new();
    for &cell_px in &[20u32, 10] {
        for &rate in rates {
            let images = match effort {
                Effort::Quick => ((rate * 2.0) as u32).clamp(12, 80),
                Effort::Default => ((rate * 4.0) as u32).clamp(16, 150),
                Effort::Full => ((rate * 8.0) as u32).clamp(24, 250),
            };
            let machine = bench_machine(200 + cell_px, scale);
            let strata = Strata::new(StrataConfig::default()).expect("in-memory strata");
            let started = std::time::Instant::now();
            let (running, reports) = thermal::deploy_pipeline(
                &strata,
                Arc::clone(&machine),
                ThermalPipelineOptions {
                    cell_px: scale.cell_px(cell_px),
                    depth_l: 20,
                    layers: 0..images,
                    offered_rate: Some(rate),
                    parallelism: 2,
                    ..ThermalPipelineOptions::default()
                },
            )
            .expect("fig7 pipeline deploys");
            let collected = drain_reports(&reports);
            let metrics = running.join().expect("fig7 pipeline finishes");
            let elapsed = started.elapsed();

            // Cells processed: the output count of the cell-splitting
            // stage (or its merge node when parallel).
            let cells: u64 = metrics
                .iter()
                .flat_map(|qm| qm.nodes())
                .filter(|n| n.name() == "cell" || n.name() == "cell.merge")
                .map(|n| n.items_out())
                .max()
                .unwrap_or(0);
            let latencies: Vec<Duration> = collected.iter().map(|r| r.latency).collect();
            let mean_ms = if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / latencies.len() as f64
                    * 1e3
            };
            points.push(Fig7Point {
                cell_px,
                offered_rate: rate,
                kcells_per_s: cells as f64 / elapsed.as_secs_f64() / 1e3,
                images_per_s: images as f64 / elapsed.as_secs_f64(),
                mean_latency_ms: mean_ms,
                images,
            });
        }
    }
    points
}

// ───────────────────────── Figure 4 ─────────────────────────

/// Outcome of the Figure 4 artifact generation.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Artifacts {
    /// The specimen whose images were rendered.
    pub specimen: u32,
    /// The layer at which the window was rendered.
    pub layer: u32,
    /// Number of clusters in the rendered window.
    pub clusters: i64,
    /// Number of events in the rendered window.
    pub events: i64,
    /// Path of the raw OT specimen image (PGM).
    pub ot_image: String,
    /// Path of the cluster image (PGM).
    pub clusters_image: String,
}

/// Figure 4: renders the OT image of one specimen together with its
/// resulting thermal-energy clustering, into `out_dir`.
pub fn fig4(scale: BenchScale, out_dir: &std::path::Path) -> std::io::Result<Fig4Artifacts> {
    std::fs::create_dir_all(out_dir)?;
    let machine = bench_machine(4, scale);
    let strata = Strata::new(StrataConfig::default()).expect("in-memory strata");
    let layers = 14u32;
    let (running, reports) = thermal::deploy_pipeline(
        &strata,
        Arc::clone(&machine),
        ThermalPipelineOptions {
            cell_px: scale.cell_px(6),
            depth_l: 12,
            layers: 0..layers,
            offered_rate: Some(0.0),
            parallelism: 2,
            render_images: true,
            ..ThermalPipelineOptions::default()
        },
    )
    .expect("fig4 pipeline deploys");
    let collected = drain_reports(&reports);
    running.join().expect("fig4 pipeline finishes");

    // The most eventful summary of the last layers.
    let best = collected
        .iter()
        .filter(|r| r.tuple.payload().str("report") == Some("summary"))
        .filter(|r| r.tuple.payload().image("clusters_image").is_some())
        .max_by_key(|r| {
            (
                r.tuple.payload().int("event_count").unwrap_or(0),
                r.tuple.metadata().layer,
            )
        })
        .expect("at least one rendered summary");
    let specimen = best.tuple.metadata().specimen.unwrap_or(0);
    let layer = best.tuple.metadata().layer;

    // Left panel: the raw OT crop of that specimen at that layer.
    let params = machine.printing_parameters(layer);
    let (_, sx, sy, sw, sh) = params.specimen_px[specimen as usize];
    let ot = machine.ot_image(layer).crop(sx, sy, sw, sh);
    let ot_path = out_dir.join("fig4_ot_specimen.pgm");
    ot.write_pgm(&ot_path)?;

    // Right panel: the cluster image from the pipeline.
    let clusters_image = best
        .tuple
        .payload()
        .image("clusters_image")
        .expect("rendered image present");
    let clusters_path = out_dir.join("fig4_clusters.pgm");
    clusters_image.write_pgm(&clusters_path)?;

    Ok(Fig4Artifacts {
        specimen,
        layer,
        clusters: best.tuple.payload().int("cluster_count").unwrap_or(0),
        events: best.tuple.payload().int("event_count").unwrap_or(0),
        ot_image: ot_path.display().to_string(),
        clusters_image: clusters_path.display().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata::AmTuple;
    use strata_spe::Timestamp;

    fn report(layer: u32, latency_ms: u64) -> ExpertReport {
        ExpertReport {
            tuple: AmTuple::new(Timestamp::from_millis(layer as u64), 1, layer),
            latency: Duration::from_millis(latency_ms),
            qos_met: true,
        }
    }

    #[test]
    fn per_layer_latency_takes_the_layer_maximum() {
        let reports = vec![
            report(0, 5),
            report(1, 10),
            report(1, 30), // slowest of layer 1
            report(2, 20),
        ];
        let got = per_layer_latencies(&reports, 0);
        assert_eq!(
            got,
            vec![
                Duration::from_millis(5),
                Duration::from_millis(30),
                Duration::from_millis(20)
            ]
        );
    }

    #[test]
    fn warmup_layers_are_skipped() {
        let reports = vec![report(0, 5), report(1, 10), report(2, 20)];
        let got = per_layer_latencies(&reports, 2);
        assert_eq!(got, vec![Duration::from_millis(20)]);
    }

    #[test]
    fn boxplot_conversion_is_in_milliseconds() {
        let summary = strata::LatencySummary::from_samples(&[
            Duration::from_millis(10),
            Duration::from_millis(20),
        ])
        .unwrap();
        let b = BoxplotMs::from(summary);
        assert_eq!(b.count, 2);
        assert_eq!(b.min, 10.0);
        assert_eq!(b.max, 20.0);
        assert_eq!(b.median, 15.0);
    }

    #[test]
    fn effort_layer_budgets_scale_with_depth() {
        assert!(Effort::Full.layers_for_depth(80) > Effort::Default.layers_for_depth(80));
        assert!(Effort::Default.layers_for_depth(80) > Effort::Quick.layers_for_depth(80));
        assert!(Effort::Full.layers_for_latency() > Effort::Quick.layers_for_latency());
    }
}
