//! The simulated PBF-LB machine: layer timing, printing parameters
//! and OT image rendering.

use std::sync::Arc;

use crate::defects::{generate_defects, DefectSeed};
use crate::error::{Error, Result};
use crate::geometry::BuildPlan;
use crate::image::OtImage;
use crate::scan::ScanSchedule;
use crate::thermal::{PixelThresholds, ThermalModel};

/// A recoater fault: a powder short-feed streak along the recoating
/// direction (a vertical band of the plate receives too little
/// powder), depressing the emission of every specimen it crosses for
/// a span of layers. A classic PBF-LB process fault and a distinct
/// *type of monitored defect* (the paper's future-work axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoaterStreak {
    /// Left edge of the streak on the plate, mm.
    pub x_mm: f64,
    /// Width of the streak, mm.
    pub width_mm: f64,
    /// First affected layer.
    pub start_layer: u32,
    /// Number of affected layers.
    pub layer_span: u32,
    /// Emission attenuation inside the streak, `(0, 1]`; 0.4 means
    /// pixels keep 40 % of their nominal value.
    pub attenuation: f64,
}

impl RecoaterStreak {
    /// `true` when the streak affects `layer`.
    pub fn active_on(&self, layer: u32) -> bool {
        layer >= self.start_layer && layer < self.start_layer + self.layer_span
    }

    /// `true` when the streak covers the plate coordinate `x_mm`.
    pub fn covers(&self, x_mm: f64) -> bool {
        x_mm >= self.x_mm && x_mm < self.x_mm + self.width_mm
    }
}

/// Configuration of a simulated printing job, builder style.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    job: u32,
    plan: BuildPlan,
    schedule: ScanSchedule,
    thermal: ThermalModel,
    seed: u64,
    image_px: u32,
    melt_ms: u64,
    recoat_ms: u64,
    defect_rate: f64,
    streaks: Vec<RecoaterStreak>,
}

impl MachineConfig {
    /// The paper's setup for printing job `job`: the
    /// [`BuildPlan::paper_build`] geometry, 2000×2000 px images, a
    /// 3 s recoat gap, and a nominal 60 s melt time per layer
    /// ("live OT images come within a period of minutes").
    pub fn paper_build(job: u32) -> Self {
        MachineConfig {
            job,
            plan: BuildPlan::paper_build(),
            schedule: ScanSchedule::default(),
            thermal: ThermalModel::default(),
            seed: 0x57A7A + job as u64,
            image_px: 2000,
            melt_ms: 60_000,
            recoat_ms: 3_000,
            defect_rate: 0.6,
            streaks: Vec::new(),
        }
    }

    /// Substitutes a custom build plan.
    pub fn plan(mut self, plan: BuildPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Substitutes a custom scan schedule.
    pub fn schedule(mut self, schedule: ScanSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Substitutes a custom thermal model.
    pub fn thermal(mut self, thermal: ThermalModel) -> Self {
        self.thermal = thermal;
        self
    }

    /// Sets the random seed (defaults to a job-derived one).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the OT image edge length in pixels (default 2000).
    pub fn image_px(mut self, px: u32) -> Self {
        self.image_px = px;
        self
    }

    /// Sets melt and recoat durations in milliseconds.
    pub fn timing(mut self, melt_ms: u64, recoat_ms: u64) -> Self {
        self.melt_ms = melt_ms;
        self.recoat_ms = recoat_ms;
        self
    }

    /// Scales the defect density (defects per specimen per stack).
    pub fn defect_rate(mut self, rate: f64) -> Self {
        self.defect_rate = rate.max(0.0);
        self
    }

    /// Injects a recoater short-feed streak fault.
    pub fn with_streak(mut self, streak: RecoaterStreak) -> Self {
        self.streaks.push(streak);
        self
    }
}

/// Per-specimen pixel rectangles `(id, x, y, w, h)` in OT image
/// coordinates.
pub type SpecimenPxRects = Vec<(u32, u32, u32, u32, u32)>;

/// Printing parameters of one layer — what the paper's
/// `PrintingParameterCollector` source reports, including the
/// specimen layout information `isolateSpecimen()` needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParameters {
    /// The printing job.
    pub job: u32,
    /// The layer these parameters apply to.
    pub layer: u32,
    /// The 1 mm stack the layer belongs to.
    pub stack: u32,
    /// Scan orientation for this stack, degrees in `[0, 180)`.
    pub scan_angle_deg: f64,
    /// Spatter/gas-flow interaction factor for this stack, `[0, 1]`.
    pub gas_interaction: f64,
    /// Nominal laser power, W.
    pub laser_power_w: f64,
    /// Nominal scan speed, mm/s.
    pub scan_speed_mm_s: f64,
    /// Per-specimen pixel rectangles `(id, x, y, w, h)` in OT image
    /// coordinates.
    pub specimen_px: Arc<SpecimenPxRects>,
}

/// The simulated machine for one printing job.
///
/// All rendering is deterministic: `ot_image(layer)` is a pure
/// function of the configuration, so layers can be generated lazily,
/// re-generated for replay, or rendered in parallel.
#[derive(Debug)]
pub struct PbfLbMachine {
    config: MachineConfig,
    defects: Vec<DefectSeed>,
    specimen_px: Arc<SpecimenPxRects>,
}

impl PbfLbMachine {
    /// Builds the machine, sampling the job's defect field.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a zero image size.
    pub fn new(config: MachineConfig) -> Result<Self> {
        if config.image_px == 0 {
            return Err(Error::InvalidConfig("image_px must be > 0".into()));
        }
        let defects = generate_defects(
            &config.plan,
            &config.schedule,
            config.seed,
            config.defect_rate,
        );
        let px_per_mm = config.image_px as f64 / config.plan.plate_mm();
        let specimen_px = Arc::new(
            config
                .plan
                .specimens()
                .iter()
                .map(|s| {
                    (
                        s.id,
                        (s.rect.x * px_per_mm) as u32,
                        (s.rect.y * px_per_mm) as u32,
                        (s.rect.w * px_per_mm).ceil() as u32,
                        (s.rect.h * px_per_mm).ceil() as u32,
                    )
                })
                .collect(),
        );
        Ok(PbfLbMachine {
            config,
            defects,
            specimen_px,
        })
    }

    /// The job id this machine is printing.
    pub fn job(&self) -> u32 {
        self.config.job
    }

    /// The build plan being printed.
    pub fn plan(&self) -> &BuildPlan {
        &self.config.plan
    }

    /// Total number of layers in the job.
    pub fn layer_count(&self) -> u32 {
        self.config.plan.layer_count()
    }

    /// Event time (ms since job start) at which the OT image of
    /// `layer` is emitted: after the layer's melt, before its recoat.
    pub fn layer_timestamp_ms(&self, layer: u32) -> u64 {
        layer as u64 * (self.config.melt_ms + self.config.recoat_ms) + self.config.melt_ms
    }

    /// The recoat gap between layers, ms — the paper's QoS deadline.
    pub fn recoat_ms(&self) -> u64 {
        self.config.recoat_ms
    }

    /// Ground-truth defect sites (for validation and tests; a real
    /// machine would not expose this).
    pub fn defects(&self) -> &[DefectSeed] {
        &self.defects
    }

    /// Ground-truth recoater streak faults.
    pub fn streaks(&self) -> &[RecoaterStreak] {
        &self.config.streaks
    }

    /// Pixel-level thresholds an expert would derive from historical
    /// jobs of this machine.
    pub fn reference_thresholds(&self) -> PixelThresholds {
        self.config.thermal.reference_thresholds()
    }

    /// Printing parameters of `layer`.
    pub fn printing_parameters(&self, layer: u32) -> LayerParameters {
        let stack = self.config.plan.stack_of_layer(layer);
        LayerParameters {
            job: self.config.job,
            layer,
            stack,
            scan_angle_deg: self.config.schedule.angle_deg(stack),
            gas_interaction: self.config.schedule.gas_interaction_factor(stack),
            laser_power_w: 280.0,
            scan_speed_mm_s: 1200.0,
            specimen_px: Arc::clone(&self.specimen_px),
        }
    }

    /// Renders the OT image of `layer`.
    pub fn ot_image(&self, layer: u32) -> OtImage {
        let px = self.config.image_px;
        let px_per_mm = px as f64 / self.config.plan.plate_mm();
        let mm_per_px = 1.0 / px_per_mm;
        let seed = self.config.seed;
        let thermal = &self.config.thermal;
        let stack = self.config.plan.stack_of_layer(layer);
        let scan_angle = self.config.schedule.angle_deg(stack);
        let active: Vec<&DefectSeed> = self.defects.iter().filter(|d| d.active_on(layer)).collect();

        let mut image = OtImage::new(px, px);
        // Background: constant powder level (noise only inside parts;
        // keeps full-plate rendering affordable).
        let bg = thermal.background as u8;
        for y in 0..px {
            for x in 0..px {
                image.set(x, y, bg);
            }
        }
        for (sid, sx, sy, sw, sh) in self.specimen_px.iter() {
            let specimen = &self.config.plan.specimens()[*sid as usize];
            let active_here: Vec<&DefectSeed> = active
                .iter()
                .filter(|d| d.specimen == *sid)
                .copied()
                .collect();
            for y in *sy..(*sy + *sh).min(px) {
                let y_mm = (y as f64 + 0.5) * mm_per_px;
                for x in *sx..(*sx + *sw).min(px) {
                    let x_mm = (x as f64 + 0.5) * mm_per_px;
                    if !specimen.rect.contains(x_mm, y_mm) {
                        continue;
                    }
                    let mut value = thermal.specimen_pixel(
                        specimen,
                        &active_here,
                        scan_angle,
                        seed,
                        layer,
                        x_mm,
                        y_mm,
                        x as u64,
                        y as u64,
                    );
                    for streak in &self.config.streaks {
                        if streak.active_on(layer) && streak.covers(x_mm) {
                            value = (value as f64 * streak.attenuation) as u8;
                        }
                    }
                    image.set(x, y, value);
                }
            }
        }
        image
    }

    /// Convenience: `(timestamp_ms, parameters, image)` for every
    /// layer, in order. Rendering happens lazily as the iterator
    /// advances.
    pub fn layers(&self) -> impl Iterator<Item = (u64, LayerParameters, OtImage)> + '_ {
        (0..self.layer_count()).map(move |layer| {
            (
                self.layer_timestamp_ms(layer),
                self.printing_parameters(layer),
                self.ot_image(layer),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine(job: u32) -> PbfLbMachine {
        PbfLbMachine::new(MachineConfig::paper_build(job).image_px(250)).unwrap()
    }

    #[test]
    fn validates_config() {
        assert!(PbfLbMachine::new(MachineConfig::paper_build(0).image_px(0)).is_err());
    }

    #[test]
    fn rendering_is_deterministic() {
        let m1 = small_machine(1);
        let m2 = small_machine(1);
        assert_eq!(m1.ot_image(10), m2.ot_image(10));
        assert_ne!(
            small_machine(2).ot_image(10),
            m1.ot_image(10),
            "different job → different seed → different image"
        );
    }

    #[test]
    fn timing_matches_the_paper() {
        let m = small_machine(0);
        assert_eq!(m.recoat_ms(), 3_000);
        let t0 = m.layer_timestamp_ms(0);
        let t1 = m.layer_timestamp_ms(1);
        assert_eq!(t1 - t0, 63_000, "melt + recoat");
        assert_eq!(m.layer_count(), 575);
    }

    #[test]
    fn specimen_areas_glow_and_background_does_not() {
        let m = small_machine(3);
        let img = m.ot_image(5);
        let (_, sx, sy, sw, sh) = m.printing_parameters(5).specimen_px[0];
        let inside = img.region_mean(sx + 2, sy + 2, sw - 4, sh - 4);
        let outside = img.region_mean(0, 0, 10, 10);
        assert!(inside > 100.0, "melted area mean {inside}");
        assert!(outside < 30.0, "powder mean {outside}");
    }

    #[test]
    fn defect_sites_show_up_in_the_image() {
        let m = PbfLbMachine::new(MachineConfig::paper_build(4).image_px(500).defect_rate(2.0))
            .unwrap();
        let thresholds = m.reference_thresholds();
        // Find a defect with a usable span and look at its center.
        let d = m
            .defects()
            .iter()
            .find(|d| d.severity > 0.8 && d.radius_mm > 0.8)
            .expect("a strong defect exists at rate 2.0");
        let img = m.ot_image(d.start_layer);
        let px_per_mm = 500.0 / 250.0;
        let cx = (d.x_mm * px_per_mm) as u32;
        let cy = (d.y_mm * px_per_mm) as u32;
        let center = img.region_mean(cx.saturating_sub(1), cy.saturating_sub(1), 3, 3);
        match d.kind {
            crate::defects::DefectKind::Hot => {
                assert!(center > thresholds.warm, "hot site mean {center}")
            }
            crate::defects::DefectKind::Cold => {
                assert!(center < thresholds.cold, "cold site mean {center}")
            }
        }
    }

    #[test]
    fn printing_parameters_follow_the_stack_schedule() {
        let m = small_machine(0);
        let p0 = m.printing_parameters(0);
        let p24 = m.printing_parameters(24);
        let p25 = m.printing_parameters(25);
        assert_eq!(p0.stack, 0);
        assert_eq!(p24.stack, 0);
        assert_eq!(p25.stack, 1);
        assert_eq!(p0.scan_angle_deg, p24.scan_angle_deg);
        assert_ne!(p0.scan_angle_deg, p25.scan_angle_deg);
        assert_eq!(p0.specimen_px.len(), 12);
    }

    #[test]
    fn recoater_streaks_darken_their_band() {
        let streak = RecoaterStreak {
            x_mm: 100.0,
            width_mm: 10.0,
            start_layer: 2,
            layer_span: 3,
            attenuation: 0.3,
        };
        let m = PbfLbMachine::new(
            MachineConfig::paper_build(8)
                .image_px(250)
                .defect_rate(0.0)
                .with_streak(streak),
        )
        .unwrap();
        assert_eq!(m.streaks(), &[streak]);
        // The streak crosses specimen column 1 (x = 75..100 mm? the
        // second column starts at 75 mm; band 100..110 mm overlaps
        // specimens at x = 75..100? No: columns are at 20, 75, 130,
        // 185 mm with width 25 → the band 100..110 falls in the gap.
        // Use the third column (130..155 mm): compare columns inside
        // vs outside the band on an affected vs unaffected layer.
        let streaked = PbfLbMachine::new(
            MachineConfig::paper_build(8)
                .image_px(250)
                .defect_rate(0.0)
                .with_streak(RecoaterStreak {
                    x_mm: 132.0,
                    width_mm: 8.0,
                    start_layer: 2,
                    layer_span: 3,
                    attenuation: 0.3,
                }),
        )
        .unwrap();
        let px_per_mm = 250.0 / 250.0; // 1 px per mm at 250 px
        let in_band_x = (134.0 * px_per_mm) as u32;
        let out_band_x = (150.0 * px_per_mm) as u32;
        let y = (30.0 * px_per_mm) as u32; // inside the third column's first row specimen
        let affected = streaked.ot_image(2);
        let unaffected = streaked.ot_image(0);
        let dark = affected.region_mean(in_band_x, y, 3, 10);
        let bright = affected.region_mean(out_band_x, y, 3, 10);
        assert!(dark < bright * 0.6, "dark={dark} bright={bright}");
        // Layers outside the span are untouched.
        let before = unaffected.region_mean(in_band_x, y, 3, 10);
        assert!(before > bright * 0.8, "before={before} bright={bright}");
    }

    #[test]
    fn streak_helpers() {
        let s = RecoaterStreak {
            x_mm: 10.0,
            width_mm: 5.0,
            start_layer: 4,
            layer_span: 2,
            attenuation: 0.5,
        };
        assert!(s.covers(10.0) && s.covers(14.9) && !s.covers(15.0) && !s.covers(9.9));
        assert!(!s.active_on(3) && s.active_on(4) && s.active_on(5) && !s.active_on(6));
    }

    #[test]
    fn layers_iterator_is_ordered_and_lazy() {
        let m = small_machine(0);
        let mut last_ts = 0;
        for (ts, params, img) in m.layers().take(3) {
            assert!(ts > last_ts);
            last_ts = ts;
            assert_eq!(img.width(), 250);
            assert!(params.layer < 3);
        }
    }
}
