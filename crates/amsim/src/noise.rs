//! Counter-based deterministic noise.
//!
//! Every pixel of every layer must be a pure function of
//! `(seed, layer, x, y)` so that images are reproducible and
//! renderable in any order. This module provides a splitmix64-based
//! hash usable as stateless white noise.

/// Mixes an arbitrary number of 64-bit words into one well-distributed
/// 64-bit value (splitmix64 finalizer over a running combination).
pub fn hash_mix(words: &[u64]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        acc ^= w.wrapping_add(0x9E37_79B9_7F4A_7C15);
        acc = splitmix64(acc);
    }
    acc
}

/// The splitmix64 finalizer: a cheap, high-quality bijective mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, 1)` derived from the mixed `words`.
pub fn uniform(words: &[u64]) -> f64 {
    (hash_mix(words) >> 11) as f64 / (1u64 << 53) as f64
}

/// Approximately standard-normal sample derived from the mixed
/// `words` (sum of four uniforms, Irwin–Hall; plenty for sensor
/// noise).
pub fn gaussian(words: &[u64]) -> f64 {
    let base = hash_mix(words);
    let mut sum = 0.0;
    for i in 0..4u64 {
        sum += (splitmix64(base.wrapping_add(i)) >> 11) as f64 / (1u64 << 53) as f64;
    }
    // Irwin-Hall(4): mean 2, variance 4/12; normalize.
    (sum - 2.0) / (4.0f64 / 12.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_deterministic() {
        assert_eq!(hash_mix(&[1, 2, 3]), hash_mix(&[1, 2, 3]));
        assert_eq!(uniform(&[9, 9]), uniform(&[9, 9]));
        assert_eq!(gaussian(&[4, 2]), gaussian(&[4, 2]));
    }

    #[test]
    fn different_inputs_decorrelate() {
        assert_ne!(hash_mix(&[1, 2, 3]), hash_mix(&[1, 2, 4]));
        assert_ne!(hash_mix(&[1, 2]), hash_mix(&[2, 1]), "order matters");
    }

    #[test]
    fn uniform_is_in_range_and_spread() {
        let samples: Vec<f64> = (0..10_000).map(|i| uniform(&[42, i])).collect();
        assert!(samples.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let samples: Vec<f64> = (0..10_000).map(|i| gaussian(&[7, i])).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
