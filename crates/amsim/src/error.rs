//! Error type for simulator configuration.

use std::fmt;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while configuring the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is out of range (e.g. zero image size,
    /// specimen outside the plate).
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid simulator configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        assert!(Error::InvalidConfig("plate too small".into())
            .to_string()
            .contains("plate too small"));
    }
}
