//! `strata-amsim` — a deterministic PBF-LB machine and OT sensor
//! simulator.
//!
//! The STRATA paper evaluates on data from a real print: an EOS M290
//! machine with an sCMOS optical-tomography (OT) sensor producing one
//! 2000×2000, 8-bit, long-exposure image of the 250×250 mm build area
//! per layer, with a ~3 s recoat gap between layers (§5). The build
//! holds 12 specimens of 25×50×23 mm, each with three small witness
//! cylinders for later X-ray CT, sliced into 1 mm stacks whose laser
//! scan orientation rotates per stack; the interaction between the
//! scan direction and the back-to-front shielding-gas flow creates
//! potential defect sites (Ladewig et al. 2016, the paper's reference 17).
//!
//! Neither the machine nor the recorded OT data are available, so
//! this crate synthesizes the closest equivalent (see DESIGN.md §2):
//!
//! * [`geometry`] — the build plate, specimen layout and witness
//!   cylinders, with the paper's dimensions as the default plan;
//! * [`scan`] — per-stack scan orientation and the gas-flow
//!   interaction factor;
//! * [`defects`] — a seeded field of hot/cold defect sites that
//!   persist across layers, biased by the interaction factor;
//! * [`thermal`] — the per-pixel emission model (base melt-pool
//!   intensity, scan-stripe modulation, sensor noise, defect
//!   deltas);
//! * [`image`] — the gray-scale OT image container (with PGM export
//!   for visual inspection — Figure 4);
//! * [`machine`] — ties everything together: layer timestamps with
//!   melt + recoat timing, per-layer printing parameters, and
//!   deterministic `ot_image(layer)` rendering.
//!
//! Determinism: every pixel is a pure function of
//! `(seed, job, layer, x, y)` via counter-based hashing, so images
//! can be regenerated at any time, in any order, on any thread.
//!
//! # Example
//!
//! ```
//! use strata_amsim::{BuildPlan, MachineConfig, PbfLbMachine};
//!
//! let config = MachineConfig::paper_build(7).image_px(200); // small for the doctest
//! let machine = PbfLbMachine::new(config)?;
//! let image = machine.ot_image(0);
//! assert_eq!(image.width(), 200);
//! assert!(machine.layer_count() > 500, "23 mm at 40 µm per layer");
//! # Ok::<(), strata_amsim::Error>(())
//! ```

pub mod defects;
pub mod error;
pub mod geometry;
pub mod image;
pub mod machine;
pub mod noise;
pub mod scan;
pub mod thermal;

pub use defects::{DefectKind, DefectSeed};
pub use error::{Error, Result};
pub use geometry::{BuildPlan, RectMm, SpecimenLayout};
pub use image::OtImage;
pub use machine::{LayerParameters, MachineConfig, PbfLbMachine, RecoaterStreak};
pub use thermal::ThermalModel;
