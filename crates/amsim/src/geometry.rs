//! Build-plate geometry: specimens, witness cylinders, stacks.

use crate::error::{Error, Result};

/// An axis-aligned rectangle on the build plate, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectMm {
    /// Left edge.
    pub x: f64,
    /// Top edge (gas flows from high `y` — the back — toward `y = 0`).
    pub y: f64,
    /// Width along `x`.
    pub w: f64,
    /// Height along `y`.
    pub h: f64,
}

impl RectMm {
    /// Creates a rectangle.
    pub const fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        RectMm { x, y, w, h }
    }

    /// `true` when `(px, py)` lies inside (half-open bounds).
    pub fn contains(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }

    /// The rectangle's center.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }
}

/// One specimen on the plate: its footprint and the three witness
/// cylinders used for X-ray CT in the paper's build.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecimenLayout {
    /// Dense specimen id, 0-based.
    pub id: u32,
    /// Footprint on the plate.
    pub rect: RectMm,
    /// Witness cylinders: `(center_x, center_y, radius)`, in mm.
    pub cylinders: Vec<(f64, f64, f64)>,
}

impl SpecimenLayout {
    /// A specimen with the paper's three witness cylinders spaced
    /// along the long axis.
    pub fn with_default_cylinders(id: u32, rect: RectMm) -> Self {
        let (cx, _) = rect.center();
        let r = (rect.w.min(rect.h) * 0.08).max(0.5);
        let cylinders = (1..=3)
            .map(|k| (cx, rect.y + rect.h * k as f64 / 4.0, r))
            .collect();
        SpecimenLayout {
            id,
            rect,
            cylinders,
        }
    }

    /// `true` when `(px, py)` is inside any witness cylinder.
    pub fn in_cylinder(&self, px: f64, py: f64) -> bool {
        self.cylinders.iter().any(|&(cx, cy, r)| {
            let dx = px - cx;
            let dy = py - cy;
            dx * dx + dy * dy <= r * r
        })
    }
}

/// The whole build: plate size, specimen layout and the vertical
/// slicing into layers and stacks.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildPlan {
    plate_mm: f64,
    specimens: Vec<SpecimenLayout>,
    layer_thickness_mm: f64,
    stack_height_mm: f64,
    part_height_mm: f64,
}

impl BuildPlan {
    /// The paper's build: a 250×250 mm plate with 12 specimens of
    /// 25 (width) × 50 (length) × 23 (height) mm in a 4×3 grid, 40 µm
    /// layers, 1 mm stacks.
    pub fn paper_build() -> Self {
        let mut specimens = Vec::with_capacity(12);
        for row in 0..3u32 {
            for col in 0..4u32 {
                let rect = RectMm::new(
                    20.0 + col as f64 * 55.0,
                    20.0 + row as f64 * 72.0,
                    25.0,
                    50.0,
                );
                specimens.push(SpecimenLayout::with_default_cylinders(row * 4 + col, rect));
            }
        }
        BuildPlan {
            plate_mm: 250.0,
            specimens,
            layer_thickness_mm: 0.04,
            stack_height_mm: 1.0,
            part_height_mm: 23.0,
        }
    }

    /// Creates a custom plan.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when dimensions are non-positive,
    /// specimens fall outside the plate, or there is no specimen.
    pub fn new(
        plate_mm: f64,
        specimens: Vec<SpecimenLayout>,
        layer_thickness_mm: f64,
        stack_height_mm: f64,
        part_height_mm: f64,
    ) -> Result<Self> {
        if plate_mm <= 0.0
            || layer_thickness_mm <= 0.0
            || stack_height_mm <= 0.0
            || part_height_mm <= 0.0
        {
            return Err(Error::InvalidConfig(
                "plate, layer, stack and part dimensions must be positive".into(),
            ));
        }
        if specimens.is_empty() {
            return Err(Error::InvalidConfig("a build needs ≥ 1 specimen".into()));
        }
        for s in &specimens {
            let r = &s.rect;
            if r.x < 0.0 || r.y < 0.0 || r.x + r.w > plate_mm || r.y + r.h > plate_mm {
                return Err(Error::InvalidConfig(format!(
                    "specimen {} exceeds the {plate_mm} mm plate",
                    s.id
                )));
            }
        }
        Ok(BuildPlan {
            plate_mm,
            specimens,
            layer_thickness_mm,
            stack_height_mm,
            part_height_mm,
        })
    }

    /// Plate edge length in mm (plates are square).
    pub fn plate_mm(&self) -> f64 {
        self.plate_mm
    }

    /// The specimens on the plate.
    pub fn specimens(&self) -> &[SpecimenLayout] {
        &self.specimens
    }

    /// Layer thickness in mm.
    pub fn layer_thickness_mm(&self) -> f64 {
        self.layer_thickness_mm
    }

    /// Number of layers in the whole build.
    pub fn layer_count(&self) -> u32 {
        (self.part_height_mm / self.layer_thickness_mm).ceil() as u32
    }

    /// Layers per 1 stack (the paper: 1 mm stacks of 40 µm layers →
    /// 25).
    pub fn layers_per_stack(&self) -> u32 {
        (self.stack_height_mm / self.layer_thickness_mm)
            .round()
            .max(1.0) as u32
    }

    /// The stack index a layer belongs to.
    pub fn stack_of_layer(&self, layer: u32) -> u32 {
        layer / self.layers_per_stack()
    }

    /// The specimen containing `(x_mm, y_mm)`, if any.
    pub fn specimen_at(&self, x_mm: f64, y_mm: f64) -> Option<&SpecimenLayout> {
        self.specimens.iter().find(|s| s.rect.contains(x_mm, y_mm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_build_matches_the_papers_numbers() {
        let plan = BuildPlan::paper_build();
        assert_eq!(plan.plate_mm(), 250.0);
        assert_eq!(plan.specimens().len(), 12);
        assert_eq!(plan.layer_count(), 575, "23 mm / 40 µm");
        assert_eq!(plan.layers_per_stack(), 25, "1 mm / 40 µm");
        assert_eq!(plan.stack_of_layer(0), 0);
        assert_eq!(plan.stack_of_layer(24), 0);
        assert_eq!(plan.stack_of_layer(25), 1);
        for s in plan.specimens() {
            assert_eq!(s.rect.w, 25.0);
            assert_eq!(s.rect.h, 50.0);
            assert_eq!(s.cylinders.len(), 3);
        }
    }

    #[test]
    fn specimens_do_not_overlap_and_fit_the_plate() {
        let plan = BuildPlan::paper_build();
        let specimens = plan.specimens();
        for s in specimens {
            assert!(s.rect.x >= 0.0 && s.rect.x + s.rect.w <= 250.0);
            assert!(s.rect.y >= 0.0 && s.rect.y + s.rect.h <= 250.0);
        }
        for (i, a) in specimens.iter().enumerate() {
            for b in &specimens[i + 1..] {
                let disjoint = a.rect.x + a.rect.w <= b.rect.x
                    || b.rect.x + b.rect.w <= a.rect.x
                    || a.rect.y + a.rect.h <= b.rect.y
                    || b.rect.y + b.rect.h <= a.rect.y;
                assert!(disjoint, "specimens {} and {} overlap", a.id, b.id);
            }
        }
    }

    #[test]
    fn specimen_lookup() {
        let plan = BuildPlan::paper_build();
        let s0 = &plan.specimens()[0];
        let (cx, cy) = s0.rect.center();
        assert_eq!(plan.specimen_at(cx, cy).unwrap().id, 0);
        assert!(plan.specimen_at(0.0, 0.0).is_none(), "plate margin");
    }

    #[test]
    fn cylinders_are_inside_their_specimen() {
        let plan = BuildPlan::paper_build();
        for s in plan.specimens() {
            for &(cx, cy, r) in &s.cylinders {
                assert!(s.rect.contains(cx - r, cy) && s.rect.contains(cx + r, cy));
                assert!(s.in_cylinder(cx, cy));
                assert!(!s.in_cylinder(cx + 2.0 * r, cy + 2.0 * r));
            }
        }
    }

    #[test]
    fn custom_plan_validation() {
        let bad = SpecimenLayout::with_default_cylinders(0, RectMm::new(240.0, 0.0, 25.0, 50.0));
        assert!(BuildPlan::new(250.0, vec![bad], 0.04, 1.0, 23.0).is_err());
        assert!(BuildPlan::new(250.0, vec![], 0.04, 1.0, 23.0).is_err());
        let good = SpecimenLayout::with_default_cylinders(0, RectMm::new(10.0, 10.0, 25.0, 50.0));
        assert!(BuildPlan::new(250.0, vec![good.clone()], 0.04, 1.0, 23.0).is_ok());
        assert!(BuildPlan::new(250.0, vec![good], 0.0, 1.0, 23.0).is_err());
    }

    #[test]
    fn rect_contains_is_half_open() {
        let r = RectMm::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(0.0, 0.0));
        assert!(!r.contains(10.0, 5.0));
        assert!(!r.contains(5.0, 10.0));
        assert_eq!(r.center(), (5.0, 5.0));
    }
}
