//! Scan orientation per stack and its interaction with the
//! shielding-gas flow.
//!
//! In the paper's build, "within each stack, the laser is set to scan
//! at a certain orientation angle to the gas flow, which flows from
//! the back to the front of the machine … The different scanning
//! orientations incur different interactions between the generated
//! spatter and the local gas flow, creating potential sites for
//! defects to appear" (§5, after Ladewig et al. 2016).

/// Scan orientation schedule: stack `s` scans at
/// `(base + s · increment) mod 180` degrees. The default increment of
/// 67° is the standard PBF-LB rotation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanSchedule {
    base_deg: f64,
    increment_deg: f64,
}

impl Default for ScanSchedule {
    fn default() -> Self {
        ScanSchedule {
            base_deg: 0.0,
            increment_deg: 67.0,
        }
    }
}

impl ScanSchedule {
    /// Creates a schedule starting at `base_deg` and rotating by
    /// `increment_deg` per stack.
    pub fn new(base_deg: f64, increment_deg: f64) -> Self {
        ScanSchedule {
            base_deg,
            increment_deg,
        }
    }

    /// Scan orientation of `stack`, in `[0, 180)` degrees (scan lines
    /// are undirected, so orientations repeat at 180°).
    pub fn angle_deg(&self, stack: u32) -> f64 {
        (self.base_deg + stack as f64 * self.increment_deg).rem_euclid(180.0)
    }

    /// How strongly the spatter/gas-flow interaction promotes defects
    /// for `stack`, in `[0, 1]`.
    ///
    /// The gas flows back→front, i.e. along the −y axis (90° in plate
    /// coordinates). Spatter removal is *least* effective — defect
    /// risk highest — when scan lines are parallel to the gas flow
    /// (spatter lands back onto the melt track); it is most effective
    /// for perpendicular scans. The factor is
    /// `cos²(θ − 90°)`: 1 for flow-parallel scans, 0 for
    /// perpendicular ones.
    pub fn gas_interaction_factor(&self, stack: u32) -> f64 {
        let theta = self.angle_deg(stack).to_radians();
        let delta = theta - std::f64::consts::FRAC_PI_2;
        delta.cos().powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_rotates_67_degrees() {
        let s = ScanSchedule::default();
        assert_eq!(s.angle_deg(0), 0.0);
        assert_eq!(s.angle_deg(1), 67.0);
        assert_eq!(s.angle_deg(2), 134.0);
        assert!((s.angle_deg(3) - 21.0).abs() < 1e-9, "wraps at 180");
    }

    #[test]
    fn angles_stay_in_range() {
        let s = ScanSchedule::new(170.0, 67.0);
        for stack in 0..100 {
            let a = s.angle_deg(stack);
            assert!((0.0..180.0).contains(&a), "stack {stack}: {a}");
        }
    }

    #[test]
    fn interaction_extremes() {
        let s = ScanSchedule::new(90.0, 0.0); // always parallel to gas flow
        assert!((s.gas_interaction_factor(0) - 1.0).abs() < 1e-9);
        let s = ScanSchedule::new(0.0, 0.0); // always perpendicular
        assert!(s.gas_interaction_factor(0) < 1e-9);
    }

    #[test]
    fn interaction_is_bounded() {
        let s = ScanSchedule::default();
        for stack in 0..50 {
            let f = s.gas_interaction_factor(stack);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn rotation_visits_diverse_interactions() {
        // With the 67° strategy, some stacks must be high-risk and
        // some low-risk — that's what creates the banded defect
        // distribution the use-case detects.
        let s = ScanSchedule::default();
        let factors: Vec<f64> = (0..23).map(|k| s.gas_interaction_factor(k)).collect();
        assert!(factors.iter().cloned().fold(0.0, f64::max) > 0.8);
        assert!(factors.iter().cloned().fold(1.0, f64::min) < 0.2);
    }
}
