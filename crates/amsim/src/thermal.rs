//! The per-pixel emission model behind the synthetic OT images.
//!
//! A pixel's gray value approximates the light emanation of the melt
//! pool and solidifying material at that location:
//!
//! * **background** — unmolten powder emits almost nothing;
//! * **base emission** — molten specimen area emits around a nominal
//!   level;
//! * **scan stripes** — a sinusoidal modulation perpendicular to the
//!   stack's scan direction (hatch lines in long-exposure OT images);
//! * **witness cylinders** — slightly elevated emission (different
//!   thermal mass);
//! * **defects** — active sites add (hot) or subtract (cold) a
//!   Gaussian-shaped delta;
//! * **sensor noise** — white Gaussian noise.
//!
//! Everything is a pure function of `(seed, layer, pixel)`.

use crate::defects::{DefectKind, DefectSeed};
use crate::geometry::SpecimenLayout;
use crate::noise;

/// Pixel-level classification thresholds matched to the emission
/// model, playing the role of the paper's "threshold value …
/// computed based on historical information from previous jobs".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelThresholds {
    /// Below this a pixel is *very cold*.
    pub very_cold: f64,
    /// Below this a pixel is *cold*.
    pub cold: f64,
    /// Above this a pixel is *warm*.
    pub warm: f64,
    /// Above this a pixel is *very warm*.
    pub very_warm: f64,
}

/// The emission model's tunable constants (defaults follow the
/// description above; units are 8-bit gray levels and millimetres).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Gray level of unmolten powder.
    pub background: f64,
    /// Nominal gray level of well-melted material.
    pub base: f64,
    /// Amplitude of the scan-stripe modulation.
    pub stripe_amplitude: f64,
    /// Spatial period of the stripes, mm.
    pub stripe_period_mm: f64,
    /// Extra emission inside witness cylinders.
    pub cylinder_delta: f64,
    /// Peak emission delta of a full-severity defect.
    pub defect_delta: f64,
    /// Standard deviation of the sensor noise.
    pub noise_sigma: f64,
    /// Powder-aging factor: reused powder degrades melt stability, so
    /// the effective noise grows by this fraction per layer
    /// (`σ_eff = σ · (1 + aging · layer)`). 0 disables aging — the
    /// paper's related work flags powder reusability as a key quality
    /// concern (§6).
    pub powder_aging_per_layer: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            background: 6.0,
            base: 140.0,
            stripe_amplitude: 9.0,
            stripe_period_mm: 2.0,
            cylinder_delta: 8.0,
            defect_delta: 90.0,
            noise_sigma: 5.0,
            powder_aging_per_layer: 0.0,
        }
    }
}

impl ThermalModel {
    /// Thresholds consistent with the default model: the normal
    /// melted range is `base ± (stripes + cylinders + 3σ)`; the
    /// *very* thresholds sit well into defect territory.
    pub fn reference_thresholds(&self) -> PixelThresholds {
        let normal_spread = self.stripe_amplitude + self.cylinder_delta + 3.0 * self.noise_sigma;
        PixelThresholds {
            cold: self.base - normal_spread,
            very_cold: self.base - normal_spread - 0.35 * self.defect_delta,
            warm: self.base + normal_spread,
            very_warm: self.base + normal_spread + 0.35 * self.defect_delta,
        }
    }

    /// Emission of the pixel at `(x_mm, y_mm)` inside `specimen`,
    /// given the stack's scan angle and the defect sites active on
    /// this layer. `active_defects` must already be filtered to the
    /// current layer (but may span all specimens).
    #[allow(clippy::too_many_arguments)]
    pub fn specimen_pixel(
        &self,
        specimen: &SpecimenLayout,
        active_defects: &[&DefectSeed],
        scan_angle_deg: f64,
        seed: u64,
        layer: u32,
        x_mm: f64,
        y_mm: f64,
        px: u64,
        py: u64,
    ) -> u8 {
        let mut value = self.base;

        // Scan stripes: modulation along the direction perpendicular
        // to the hatch lines, with a per-layer phase.
        let theta = scan_angle_deg.to_radians();
        let projection = x_mm * theta.cos() + y_mm * theta.sin();
        let phase = noise::uniform(&[seed, layer as u64, 0x5712]) * std::f64::consts::TAU;
        value += self.stripe_amplitude
            * (std::f64::consts::TAU * projection / self.stripe_period_mm + phase).sin();

        if specimen.in_cylinder(x_mm, y_mm) {
            value += self.cylinder_delta;
        }

        for defect in active_defects {
            if defect.specimen != specimen.id {
                continue;
            }
            let dx = x_mm - defect.x_mm;
            let dy = y_mm - defect.y_mm;
            let r_sq = defect.radius_mm * defect.radius_mm;
            let falloff = (-(dx * dx + dy * dy) / (2.0 * r_sq)).exp();
            let delta = self.defect_delta * defect.severity * falloff;
            match defect.kind {
                DefectKind::Hot => value += delta,
                DefectKind::Cold => value -= delta,
            }
        }

        value += self.effective_sigma(layer) * noise::gaussian(&[seed, layer as u64, px, py]);
        value.clamp(0.0, 255.0) as u8
    }

    /// The sensor-noise standard deviation at `layer`, including
    /// powder aging.
    pub fn effective_sigma(&self, layer: u32) -> f64 {
        self.noise_sigma * (1.0 + self.powder_aging_per_layer * layer as f64)
    }

    /// Emission of a background (powder) pixel.
    pub fn background_pixel(&self, seed: u64, layer: u32, px: u64, py: u64) -> u8 {
        let value = self.background
            + self.noise_sigma * 0.5 * noise::gaussian(&[seed, layer as u64, px, py]);
        value.clamp(0.0, 255.0) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{RectMm, SpecimenLayout};

    fn specimen() -> SpecimenLayout {
        SpecimenLayout::with_default_cylinders(0, RectMm::new(0.0, 0.0, 25.0, 50.0))
    }

    fn defect(kind: DefectKind) -> DefectSeed {
        DefectSeed {
            specimen: 0,
            x_mm: 12.0,
            y_mm: 10.0,
            radius_mm: 1.0,
            start_layer: 0,
            layer_span: 10,
            kind,
            severity: 1.0,
        }
    }

    #[test]
    fn healthy_pixels_stay_within_normal_range() {
        let model = ThermalModel::default();
        let spec = specimen();
        let thresholds = model.reference_thresholds();
        for i in 0..500u64 {
            let x = 2.0 + (i % 20) as f64;
            let y = 2.0 + (i / 20) as f64 * 2.0;
            let v = model.specimen_pixel(&spec, &[], 30.0, 1, 5, x, y, i, i) as f64;
            assert!(
                v > thresholds.very_cold && v < thresholds.very_warm,
                "healthy pixel {v} escapes [{}, {}]",
                thresholds.very_cold,
                thresholds.very_warm
            );
        }
    }

    #[test]
    fn hot_defect_center_crosses_very_warm() {
        let model = ThermalModel::default();
        let spec = specimen();
        let d = defect(DefectKind::Hot);
        let thresholds = model.reference_thresholds();
        let v = model.specimen_pixel(&spec, &[&d], 0.0, 1, 3, 12.0, 10.0, 96, 80) as f64;
        assert!(v > thresholds.very_warm, "{v}");
    }

    #[test]
    fn cold_defect_center_crosses_very_cold() {
        let model = ThermalModel::default();
        let spec = specimen();
        let d = defect(DefectKind::Cold);
        let thresholds = model.reference_thresholds();
        let v = model.specimen_pixel(&spec, &[&d], 0.0, 1, 3, 12.0, 10.0, 96, 80) as f64;
        assert!(v < thresholds.very_cold, "{v}");
    }

    #[test]
    fn defect_influence_decays_with_distance() {
        let model = ThermalModel {
            noise_sigma: 0.0,
            stripe_amplitude: 0.0,
            ..ThermalModel::default()
        };
        let spec = specimen();
        let d = defect(DefectKind::Hot);
        let at = |x: f64| model.specimen_pixel(&spec, &[&d], 0.0, 1, 3, x, 10.0, 0, 0) as f64;
        assert!(at(12.0) > at(13.0));
        assert!(at(13.0) > at(15.0));
        assert!((at(20.0) - model.base).abs() < 2.0, "far away ≈ base");
    }

    #[test]
    fn defects_of_other_specimens_are_ignored() {
        let model = ThermalModel {
            noise_sigma: 0.0,
            stripe_amplitude: 0.0,
            ..ThermalModel::default()
        };
        let spec = specimen();
        let mut d = defect(DefectKind::Hot);
        d.specimen = 5;
        let v = model.specimen_pixel(&spec, &[&d], 0.0, 1, 3, 12.0, 10.0, 0, 0) as f64;
        assert!((v - model.base).abs() < 1e-9);
    }

    #[test]
    fn background_is_dark() {
        let model = ThermalModel::default();
        for i in 0..100 {
            let v = model.background_pixel(1, 0, i, i);
            assert!(v < 30, "{v}");
        }
    }

    #[test]
    fn powder_aging_grows_the_noise() {
        let fresh = ThermalModel::default();
        assert_eq!(fresh.effective_sigma(0), fresh.noise_sigma);
        assert_eq!(fresh.effective_sigma(500), fresh.noise_sigma);

        let aging = ThermalModel {
            powder_aging_per_layer: 0.002,
            ..ThermalModel::default()
        };
        assert_eq!(aging.effective_sigma(0), aging.noise_sigma);
        assert!((aging.effective_sigma(500) - aging.noise_sigma * 2.0).abs() < 1e-9);

        // The pixel spread visibly widens on late layers.
        let spec = specimen();
        let spread = |layer: u32| -> f64 {
            let values: Vec<f64> = (0..400u64)
                .map(|i| {
                    aging.specimen_pixel(
                        &spec,
                        &[],
                        45.0,
                        7,
                        layer,
                        2.0 + (i % 20) as f64,
                        2.0 + (i / 20) as f64 * 2.0,
                        i,
                        i,
                    ) as f64
                })
                .collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64)
                .sqrt()
        };
        assert!(
            spread(500) > spread(0) * 1.3,
            "{} vs {}",
            spread(500),
            spread(0)
        );
    }

    #[test]
    fn thresholds_are_ordered() {
        let t = ThermalModel::default().reference_thresholds();
        assert!(t.very_cold < t.cold);
        assert!(t.cold < t.warm);
        assert!(t.warm < t.very_warm);
    }
}
