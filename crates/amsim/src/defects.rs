//! The seeded defect field: where the synthetic build goes wrong.
//!
//! Defect sites are sampled per specimen and per stack, with a rate
//! biased by the stack's spatter/gas-flow interaction factor
//! ([`ScanSchedule::gas_interaction_factor`]) — reproducing the
//! paper's observation that scan orientation relative to the gas flow
//! creates potential defect sites. A site persists across a span of
//! consecutive layers, which is what gives `correlateEvents` its
//! cross-layer clusters to find.
//!
//! [`ScanSchedule::gas_interaction_factor`]:
//! crate::scan::ScanSchedule::gas_interaction_factor

use crate::geometry::BuildPlan;
use crate::noise;
use crate::scan::ScanSchedule;

/// Whether a defect site melts too hot or too cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Excess thermal energy (over-melting, e.g. spatter-induced
    /// remelting).
    Hot,
    /// Insufficient thermal energy (lack of fusion).
    Cold,
}

/// One defect site: a disc in the layer plane persisting over a span
/// of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectSeed {
    /// The specimen the site belongs to.
    pub specimen: u32,
    /// Site center, plate coordinates in mm.
    pub x_mm: f64,
    /// Site center, plate coordinates in mm.
    pub y_mm: f64,
    /// In-plane radius in mm.
    pub radius_mm: f64,
    /// First affected layer.
    pub start_layer: u32,
    /// Number of consecutive affected layers.
    pub layer_span: u32,
    /// Hot or cold.
    pub kind: DefectKind,
    /// Relative severity in `(0, 1]`, scaling the emission delta.
    pub severity: f64,
}

impl DefectSeed {
    /// `true` when the site affects `layer`.
    pub fn active_on(&self, layer: u32) -> bool {
        layer >= self.start_layer && layer < self.start_layer + self.layer_span
    }
}

/// Deterministically samples the defect field for a build.
///
/// `rate` scales the expected number of defect sites per
/// (specimen, stack); the per-stack expectation is
/// `rate · (0.15 + 0.85 · gas_interaction_factor(stack))`.
pub fn generate_defects(
    plan: &BuildPlan,
    schedule: &ScanSchedule,
    seed: u64,
    rate: f64,
) -> Vec<DefectSeed> {
    let mut defects = Vec::new();
    let layers_per_stack = plan.layers_per_stack();
    let stacks = plan.layer_count().div_ceil(layers_per_stack);
    for specimen in plan.specimens() {
        for stack in 0..stacks {
            let expectation = rate * (0.15 + 0.85 * schedule.gas_interaction_factor(stack));
            // Deterministic Poisson-like sampling: integer part plus a
            // Bernoulli draw on the fractional part.
            let base = expectation.floor() as u32;
            let extra = noise::uniform(&[seed, specimen.id as u64, stack as u64, 0xD1CE])
                < expectation.fract();
            let count = base + u32::from(extra);
            for k in 0..count {
                let words = |salt: u64| [seed, specimen.id as u64, stack as u64, k as u64, salt];
                // Keep a margin so the disc stays inside the specimen.
                let margin = 2.0;
                let rect = &specimen.rect;
                let x_mm = rect.x + margin + noise::uniform(&words(1)) * (rect.w - 2.0 * margin);
                let y_mm = rect.y + margin + noise::uniform(&words(2)) * (rect.h - 2.0 * margin);
                let radius_mm = 0.3 + noise::uniform(&words(3)) * 1.2;
                let start_in_stack = (noise::uniform(&words(4)) * layers_per_stack as f64) as u32;
                let start_layer =
                    (stack * layers_per_stack + start_in_stack).min(plan.layer_count() - 1);
                let layer_span = 2 + (noise::uniform(&words(5)) * 30.0) as u32;
                let kind = if noise::uniform(&words(6)) < 0.5 {
                    DefectKind::Cold
                } else {
                    DefectKind::Hot
                };
                let severity = 0.5 + noise::uniform(&words(7)) * 0.5;
                defects.push(DefectSeed {
                    specimen: specimen.id,
                    x_mm,
                    y_mm,
                    radius_mm,
                    start_layer,
                    layer_span,
                    kind,
                    severity,
                });
            }
        }
    }
    defects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BuildPlan;

    fn field(seed: u64, rate: f64) -> Vec<DefectSeed> {
        generate_defects(
            &BuildPlan::paper_build(),
            &ScanSchedule::default(),
            seed,
            rate,
        )
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(field(42, 1.0), field(42, 1.0));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(field(1, 1.0), field(2, 1.0));
    }

    #[test]
    fn sites_lie_inside_their_specimen() {
        let plan = BuildPlan::paper_build();
        for d in field(7, 2.0) {
            let s = &plan.specimens()[d.specimen as usize];
            assert!(s.rect.contains(d.x_mm, d.y_mm), "center inside");
            assert!(
                s.rect.contains(d.x_mm - d.radius_mm, d.y_mm)
                    && s.rect.contains(d.x_mm + d.radius_mm, d.y_mm),
                "disc inside (x)"
            );
            assert!(d.severity > 0.0 && d.severity <= 1.0);
            assert!(d.start_layer < plan.layer_count());
            assert!(d.layer_span >= 2);
        }
    }

    #[test]
    fn rate_scales_the_field() {
        let low = field(3, 0.2).len();
        let high = field(3, 3.0).len();
        assert!(high > low * 5, "low={low} high={high}");
    }

    #[test]
    fn high_interaction_stacks_carry_more_defects() {
        let plan = BuildPlan::paper_build();
        let schedule = ScanSchedule::default();
        let defects = field(11, 2.0);
        let mut hi = 0usize;
        let mut lo = 0usize;
        for d in &defects {
            let stack = plan.stack_of_layer(d.start_layer);
            if schedule.gas_interaction_factor(stack) > 0.7 {
                hi += 1;
            } else if schedule.gas_interaction_factor(stack) < 0.3 {
                lo += 1;
            }
        }
        assert!(hi > lo, "hi={hi} lo={lo}");
    }

    #[test]
    fn active_on_covers_the_span() {
        let d = DefectSeed {
            specimen: 0,
            x_mm: 0.0,
            y_mm: 0.0,
            radius_mm: 1.0,
            start_layer: 10,
            layer_span: 3,
            kind: DefectKind::Hot,
            severity: 1.0,
        };
        assert!(!d.active_on(9));
        assert!(d.active_on(10));
        assert!(d.active_on(12));
        assert!(!d.active_on(13));
    }
}
