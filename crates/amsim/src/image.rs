//! Gray-scale OT images.

use std::io::Write;
use std::path::Path;

/// A gray-scale optical-tomography image: one `u8` light-emanation
/// intensity per pixel, row-major. The paper's sensor produces
/// 2000×2000 images of the 250×250 mm process area (0.125 mm/px).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtImage {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl OtImage {
    /// Creates a black image.
    pub fn new(width: u32, height: u32) -> Self {
        OtImage {
            width,
            height,
            pixels: vec![0; width as usize * height as usize],
        }
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u8) -> Self {
        let mut pixels = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        OtImage {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y as usize * self.width as usize + x as usize]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y as usize * self.width as usize + x as usize] = value;
    }

    /// The raw row-major pixel buffer.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Total size in bytes.
    pub fn byte_len(&self) -> usize {
        self.pixels.len()
    }

    /// Mean intensity over the rectangle `[x, x+w) × [y, y+h)`,
    /// clipped to the image.
    pub fn region_mean(&self, x: u32, y: u32, w: u32, h: u32) -> f64 {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        let mut sum = 0u64;
        let mut n = 0u64;
        for yy in y..y1 {
            let row = yy as usize * self.width as usize;
            for xx in x..x1 {
                sum += self.pixels[row + xx as usize] as u64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Copies the rectangle `[x, x+w) × [y, y+h)` (clipped) into a
    /// new image.
    pub fn crop(&self, x: u32, y: u32, w: u32, h: u32) -> OtImage {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        let cw = x1.saturating_sub(x);
        let ch = y1.saturating_sub(y);
        OtImage::from_fn(cw, ch, |cx, cy| self.get(x + cx, y + cy))
    }

    /// Writes the image as a binary PGM (P5) file — the format used
    /// to inspect Figure 4 artifacts.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_pgm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        write!(file, "P5\n{} {}\n255\n", self.width, self.height)?;
        file.write_all(&self.pixels)?;
        Ok(())
    }

    /// Renders the image as coarse ASCII art (for terminal
    /// inspection), `cols` characters wide.
    pub fn to_ascii(&self, cols: u32) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let cols = cols.clamp(1, self.width.max(1));
        let step = (self.width / cols).max(1);
        let mut out = String::new();
        let mut y = 0;
        while y < self.height {
            let mut x = 0;
            while x < self.width {
                let mean = self.region_mean(x, y, step, step * 2);
                let idx = (mean / 255.0 * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
                x += step;
            }
            out.push('\n');
            y += step * 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixel_access() {
        let mut img = OtImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.byte_len(), 12);
        assert_eq!(img.get(2, 1), 0);
        img.set(2, 1, 200);
        assert_eq!(img.get(2, 1), 200);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        OtImage::new(2, 2).get(2, 0);
    }

    #[test]
    fn from_fn_is_row_major() {
        let img = OtImage::from_fn(3, 2, |x, y| (y * 10 + x) as u8);
        assert_eq!(img.pixels(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn region_mean_and_clipping() {
        let img = OtImage::from_fn(4, 4, |x, _| if x < 2 { 0 } else { 100 });
        assert_eq!(img.region_mean(0, 0, 2, 4), 0.0);
        assert_eq!(img.region_mean(2, 0, 2, 4), 100.0);
        assert_eq!(img.region_mean(0, 0, 4, 4), 50.0);
        assert_eq!(img.region_mean(3, 3, 10, 10), 100.0, "clipped");
        assert_eq!(img.region_mean(4, 4, 1, 1), 0.0, "empty region");
    }

    #[test]
    fn crop_copies_the_rectangle() {
        let img = OtImage::from_fn(6, 6, |x, y| (x + y) as u8);
        let cropped = img.crop(2, 3, 2, 2);
        assert_eq!(cropped.width(), 2);
        assert_eq!(cropped.height(), 2);
        assert_eq!(cropped.get(0, 0), 5);
        assert_eq!(cropped.get(1, 1), 7);
        let clipped = img.crop(5, 5, 10, 10);
        assert_eq!((clipped.width(), clipped.height()), (1, 1));
    }

    #[test]
    fn pgm_export_has_valid_header() {
        let img = OtImage::from_fn(8, 4, |x, y| (x * y) as u8);
        let path = std::env::temp_dir().join(format!("strata-ot-{}.pgm", std::process::id()));
        img.write_pgm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n8 4\n255\n"));
        assert_eq!(data.len(), 11 + 32);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ascii_rendering_scales() {
        let img = OtImage::from_fn(100, 100, |x, _| if x < 50 { 0 } else { 255 });
        let art = img.to_ascii(10);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines.is_empty());
        assert!(lines[0].starts_with(' '));
        assert!(lines[0].ends_with('@'));
    }
}
