//! Property-based tests of the simulator's invariants.

use proptest::prelude::*;
use strata_amsim::scan::ScanSchedule;
use strata_amsim::{BuildPlan, MachineConfig, PbfLbMachine, ThermalModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rendering is a pure function: any pixel of any layer matches
    /// when the machine is rebuilt from the same configuration.
    #[test]
    fn rendering_is_reproducible(seed in any::<u64>(), layer in 0u32..60) {
        let build = |seed| {
            PbfLbMachine::new(
                MachineConfig::paper_build(1).seed(seed).image_px(120),
            )
            .unwrap()
        };
        let a = build(seed).ot_image(layer);
        let b = build(seed).ot_image(layer);
        prop_assert_eq!(a, b);
    }

    /// Scan angles stay in [0, 180) and interaction factors in [0, 1]
    /// for arbitrary schedules.
    #[test]
    fn scan_schedule_ranges(base in -1e4f64..1e4, increment in -1e4f64..1e4, stack in 0u32..500) {
        let s = ScanSchedule::new(base, increment);
        let angle = s.angle_deg(stack);
        prop_assert!((0.0..180.0).contains(&angle), "angle {}", angle);
        let f = s.gas_interaction_factor(stack);
        prop_assert!((0.0..=1.0).contains(&f), "factor {}", f);
    }

    /// Layer timestamps are strictly increasing and separated by
    /// exactly melt + recoat.
    #[test]
    fn layer_timing_is_regular(melt in 1u64..100_000, recoat in 1u64..10_000) {
        let m = PbfLbMachine::new(
            MachineConfig::paper_build(0).image_px(50).timing(melt, recoat),
        )
        .unwrap();
        for layer in 0..10 {
            let t0 = m.layer_timestamp_ms(layer);
            let t1 = m.layer_timestamp_ms(layer + 1);
            prop_assert_eq!(t1 - t0, melt + recoat);
        }
        prop_assert_eq!(m.recoat_ms(), recoat);
    }

    /// Every defect site lies inside its specimen and within the
    /// build height, at any rate and seed.
    #[test]
    fn defects_respect_geometry(seed in any::<u64>(), rate in 0.0f64..5.0) {
        let m = PbfLbMachine::new(
            MachineConfig::paper_build(2)
                .seed(seed)
                .image_px(50)
                .defect_rate(rate),
        )
        .unwrap();
        let plan = BuildPlan::paper_build();
        for d in m.defects() {
            let s = &plan.specimens()[d.specimen as usize];
            prop_assert!(s.rect.contains(d.x_mm, d.y_mm));
            prop_assert!(d.start_layer < plan.layer_count());
            prop_assert!((0.0..=1.0).contains(&d.severity));
            prop_assert!(d.radius_mm > 0.0);
        }
    }

    /// Reference thresholds stay strictly ordered for any sane
    /// thermal model.
    #[test]
    fn thresholds_are_ordered(
        base in 60.0f64..200.0,
        stripes in 0.0f64..20.0,
        noise in 0.0f64..10.0,
        delta in 30.0f64..120.0,
    ) {
        let model = ThermalModel {
            base,
            stripe_amplitude: stripes,
            noise_sigma: noise,
            defect_delta: delta,
            ..ThermalModel::default()
        };
        let t = model.reference_thresholds();
        prop_assert!(t.very_cold < t.cold);
        prop_assert!(t.cold < base);
        prop_assert!(base < t.warm);
        prop_assert!(t.warm < t.very_warm);
    }

    /// Pixel values always land in the 8-bit range, even with extreme
    /// model parameters (the sensor saturates, never wraps).
    #[test]
    fn pixels_stay_in_range(seed in any::<u64>(), layer in 0u32..40) {
        let m = PbfLbMachine::new(
            MachineConfig::paper_build(3)
                .seed(seed)
                .image_px(80)
                .defect_rate(3.0)
                .thermal(ThermalModel {
                    base: 230.0,
                    defect_delta: 200.0,
                    ..ThermalModel::default()
                }),
        )
        .unwrap();
        let img = m.ot_image(layer);
        // No panic on generation is most of the test; also check the
        // image is not degenerate.
        prop_assert!(img.pixels().iter().any(|&p| p > 0));
    }
}
