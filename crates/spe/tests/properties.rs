//! Property-based tests of the engine's core invariants.

use proptest::prelude::*;
use strata_spe::operator::UnaryOperator;
use strata_spe::operators::aggregate::Aggregate;
use strata_spe::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Item {
    ts: u64,
    key: u8,
}

impl Timestamped for Item {
    fn timestamp(&self) -> Timestamp {
        Timestamp::from_millis(self.ts)
    }
}

proptest! {
    /// Every tuple is covered by exactly the windows whose bounds
    /// contain it, and the window count equals ⌈WS / WA⌉ in steady
    /// state.
    #[test]
    fn window_assignment_matches_bounds(
        size in 1u64..500,
        advance_frac in 1u64..=100,
        ts in 0u64..100_000,
    ) {
        let advance = (size * advance_frac / 100).max(1);
        let spec = WindowSpec::sliding(size, advance).unwrap();
        let t = Timestamp::from_millis(ts);
        let assigned: Vec<u64> = spec.window_indexes(t).collect();
        prop_assert!(!assigned.is_empty());
        // Assigned ⇔ bounds contain the timestamp.
        for idx in assigned.first().unwrap().saturating_sub(3)..assigned.last().unwrap() + 3 {
            let (start, end) = spec.window_bounds(idx);
            let covers = start <= t && t < end;
            prop_assert_eq!(covers, assigned.contains(&idx), "idx {}", idx);
        }
        // Steady state: once past the first window, the count is
        // ⌊WS/WA⌋ or ⌈WS/WA⌉ depending on alignment.
        if ts >= size {
            let count = assigned.len() as u64;
            prop_assert!(
                count == size / advance || count == size.div_ceil(advance),
                "count {} outside [{}, {}]",
                count,
                size / advance,
                size.div_ceil(advance)
            );
        }
    }

    /// The Aggregate operator neither loses nor duplicates tuples:
    /// with a tumbling window and monotone watermarks, the sum of all
    /// window counts equals the number of non-late inputs.
    #[test]
    fn aggregate_conserves_tuples(
        timestamps in proptest::collection::vec(0u64..10_000, 1..200),
        window in 1u64..1_000,
    ) {
        let spec = WindowSpec::tumbling(window).unwrap();
        let mut agg = Aggregate::new(
            spec,
            |i: &Item| i.key,
            |_k: &u8, _b, items: &[Item]| vec![items.len()],
        );
        let mut out: Vec<usize> = Vec::new();
        // Feed in timestamp order so nothing is late.
        let mut sorted = timestamps.clone();
        sorted.sort_unstable();
        for &ts in &sorted {
            agg.on_item(Item { ts, key: (ts % 5) as u8 }, &mut out);
        }
        agg.on_end(&mut out);
        let total: usize = out.iter().sum();
        prop_assert_eq!(total, sorted.len());
        prop_assert_eq!(agg.late_items(), 0);
    }

    /// Late tuples (behind the watermark) are dropped, never
    /// delivered into closed windows.
    #[test]
    fn aggregate_never_revives_closed_windows(
        early in proptest::collection::vec(0u64..500, 1..50),
        late in proptest::collection::vec(0u64..500, 1..50),
    ) {
        let spec = WindowSpec::tumbling(100).unwrap();
        let mut agg = Aggregate::new(
            spec,
            |_: &Item| (),
            |_k: &(), b, items: &[Item]| vec![(b.index, items.len())],
        );
        let mut out: Vec<(u64, usize)> = Vec::new();
        for &ts in &early {
            agg.on_item(Item { ts, key: 0 }, &mut out);
        }
        // Close everything below 1000.
        agg.on_watermark(Timestamp::from_millis(1_000), &mut out);
        let closed: Vec<u64> = out.iter().map(|(idx, _)| *idx).collect();
        for &ts in &late {
            agg.on_item(Item { ts, key: 0 }, &mut out); // all < 500 < 1000 → late
        }
        agg.on_end(&mut out);
        // No window index may appear twice.
        let mut seen = std::collections::HashSet::new();
        for (idx, _) in &out {
            prop_assert!(seen.insert(*idx), "window {} emitted twice", idx);
        }
        prop_assert_eq!(agg.late_items(), late.len() as u64);
        let _ = closed;
    }

    /// An end-to-end graph delivers every source item exactly once to
    /// the sink regardless of channel capacity and operator count.
    #[test]
    fn linear_graphs_deliver_exactly_once(
        n in 1usize..2_000,
        capacity in 1usize..64,
        stages in 0usize..4,
    ) {
        let mut qb = QueryBuilder::new("prop");
        qb.channel_capacity(capacity);
        let src = qb.source("src", IteratorSource::new(0..n as u64));
        let mut stream = src;
        for k in 0..stages {
            stream = qb.map(format!("s{k}"), &stream, |x: u64| x + 1);
        }
        let out = qb.collect_sink("out", &stream);
        qb.build().unwrap().run().join().unwrap();
        let mut got = out.take();
        got.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).map(|x| x + stages as u64).collect();
        prop_assert_eq!(got, expected);
    }

    /// Exactly-once delivery is independent of the micro-batch size:
    /// any combination of batch size, channel capacity and stage
    /// count delivers the same multiset as item-at-a-time processing.
    #[test]
    fn batched_linear_graphs_deliver_exactly_once(
        n in 1usize..2_000,
        capacity in 1usize..64,
        batch in 1usize..256,
        stages in 0usize..4,
    ) {
        let mut qb = QueryBuilder::new("prop-batch");
        qb.channel_capacity(capacity);
        qb.batch_size(batch);
        let src = qb.source("src", IteratorSource::new(0..n as u64));
        let mut stream = src;
        for k in 0..stages {
            stream = qb.map(format!("s{k}"), &stream, |x: u64| x + 1);
        }
        let out = qb.collect_sink("out", &stream);
        qb.build().unwrap().run().join().unwrap();
        let mut got = out.take();
        got.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).map(|x| x + stages as u64).collect();
        prop_assert_eq!(got, expected);
    }
}
