//! End-to-end tests of the engine: full query graphs with real
//! threads, watermark-driven windows, joins, routing and unions.

use strata_spe::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Event {
    ts: u64,
    key: u32,
    value: i64,
}

impl Timestamped for Event {
    fn timestamp(&self) -> Timestamp {
        Timestamp::from_millis(self.ts)
    }
}

fn events(spec: &[(u64, u32, i64)]) -> Vec<Event> {
    spec.iter()
        .map(|&(ts, key, value)| Event { ts, key, value })
        .collect()
}

#[test]
fn windowed_aggregate_over_a_live_graph() {
    let input = events(&[
        (10, 1, 1),
        (20, 2, 10),
        (90, 1, 2),
        (110, 1, 100),
        (250, 2, 1000),
    ]);
    let mut qb = QueryBuilder::new("agg");
    let src = qb.source("src", IteratorSource::with_watermarks(input));
    let sums = qb.aggregate(
        "sum-per-key",
        &src,
        WindowSpec::tumbling(100).unwrap(),
        |e: &Event| e.key,
        |key, bounds, items: &[Event]| {
            vec![(
                *key,
                bounds.index,
                items.iter().map(|e| e.value).sum::<i64>(),
            )]
        },
    );
    let out = qb.collect_sink("out", &sums);
    qb.build().unwrap().run().join().unwrap();
    let got = out.take();
    assert_eq!(got, vec![(1, 0, 3), (2, 0, 10), (1, 1, 100), (2, 2, 1000)]);
}

#[test]
fn join_fuses_two_sources_on_key_and_time() {
    let left = events(&[(100, 1, 1), (200, 1, 2), (300, 2, 3)]);
    let right = events(&[(100, 1, -1), (205, 1, -2), (300, 3, -3)]);
    let mut qb = QueryBuilder::new("join");
    let l = qb.source("left", IteratorSource::with_watermarks(left));
    let r = qb.source("right", IteratorSource::with_watermarks(right));
    let joined = qb.join(
        "join",
        &l,
        &r,
        10,
        |e: &Event| e.key,
        |e: &Event| e.key,
        |l: &Event, r: &Event| Some((l.value, r.value)),
    );
    let out = qb.collect_sink("out", &joined);
    qb.build().unwrap().run().join().unwrap();
    let mut got = out.take();
    got.sort();
    assert_eq!(got, vec![(1, -1), (2, -2)]);
}

#[test]
fn union_merges_streams_and_watermarks() {
    let a = events(&[(10, 1, 1), (30, 1, 3)]);
    let b = events(&[(20, 2, 2), (40, 2, 4)]);
    let mut qb = QueryBuilder::new("union");
    let sa = qb.source("a", IteratorSource::with_watermarks(a));
    let sb = qb.source("b", IteratorSource::with_watermarks(b));
    let merged = qb.union("merge", &[sa, sb]);
    // An aggregate downstream of the union only fires correctly if the
    // union merged watermarks as the minimum across inputs.
    let counts = qb.aggregate(
        "count",
        &merged,
        WindowSpec::tumbling(100).unwrap(),
        |_| 0u8,
        |_, _, items: &[Event]| vec![items.len()],
    );
    let out = qb.collect_sink("out", &counts);
    qb.build().unwrap().run().join().unwrap();
    assert_eq!(out.take(), vec![4]);
}

#[test]
fn parallel_operator_preserves_all_items() {
    let n = 10_000u64;
    let mut qb = QueryBuilder::new("parallel");
    let src = qb.source("src", IteratorSource::new(0..n));
    let doubled = qb.parallel_operator("double", &src, 4, RoutePolicy::RoundRobin, |_instance| {
        strata_spe::operators::Map::new(|x: u64| x * 2)
    });
    let out = qb.collect_sink("out", &doubled);
    qb.build().unwrap().run().join().unwrap();
    let mut got = out.take();
    got.sort_unstable();
    let expected: Vec<u64> = (0..n).map(|x| x * 2).collect();
    assert_eq!(got, expected);
}

#[test]
fn keyed_routing_keeps_groups_together() {
    // Aggregate behind a by-key router: every instance must see whole
    // key groups or counts would split.
    let input: Vec<Event> = (0..1_000u64)
        .map(|i| Event {
            ts: i,
            key: (i % 7) as u32,
            value: 1,
        })
        .collect();
    let mut qb = QueryBuilder::new("keyed");
    let src = qb.source("src", IteratorSource::with_watermarks(input));
    let counted = qb.parallel_operator(
        "count",
        &src,
        3,
        RoutePolicy::by_key(|e: &Event| e.key),
        |_| {
            strata_spe::operators::Aggregate::new(
                WindowSpec::tumbling(1_000).unwrap(),
                |e: &Event| e.key,
                |key: &u32, _b, items: &[Event]| vec![(*key, items.len())],
            )
        },
    );
    let out = qb.collect_sink("out", &counted);
    qb.build().unwrap().run().join().unwrap();
    let mut got = out.take();
    got.sort();
    // 1000 items over 7 keys: keys 0..6 get 143, key 0 gets 143 (1000 = 7*142 + 6).
    let expected: Vec<(u32, usize)> = (0..7u32)
        .map(|k| (k, (0..1_000u64).filter(|i| i % 7 == k as u64).count()))
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn fan_out_delivers_clones_to_every_branch() {
    let mut qb = QueryBuilder::new("fanout");
    let src = qb.source("src", IteratorSource::new(0u32..100));
    let inc = qb.map("inc", &src, |x| x + 1);
    let dec = qb.map("dec", &src, |x: u32| x.wrapping_sub(1));
    let out_inc = qb.collect_sink("out-inc", &inc);
    let out_dec = qb.collect_sink("out-dec", &dec);
    qb.build().unwrap().run().join().unwrap();
    assert_eq!(out_inc.len(), 100);
    assert_eq!(out_dec.len(), 100);
    assert_eq!(out_inc.take()[0], 1);
}

#[test]
fn deep_pipelines_terminate_under_backpressure() {
    // A tiny channel capacity forces constant blocking; the query must
    // still complete and deliver everything.
    let mut qb = QueryBuilder::new("backpressure");
    qb.channel_capacity(2);
    let src = qb.source("src", IteratorSource::new(0u64..5_000));
    let mut s = src;
    for depth in 0..8 {
        s = qb.map(format!("stage-{depth}"), &s, |x: u64| x + 1);
    }
    let out = qb.collect_sink("out", &s);
    qb.build().unwrap().run().join().unwrap();
    let got = out.take();
    assert_eq!(got.len(), 5_000);
    assert_eq!(got[0], 8);
    assert_eq!(*got.last().unwrap(), 5_007);
}

#[test]
fn metrics_count_items_through_the_graph() {
    let mut qb = QueryBuilder::new("metrics");
    let src = qb.source("src", IteratorSource::new(0u32..50));
    let kept = qb.filter("keep-half", &src, |x| x % 2 == 0);
    let _out = qb.collect_sink("out", &kept);
    let metrics = qb.build().unwrap().run().join().unwrap();
    assert_eq!(metrics.node("src").unwrap().items_out(), 50);
    assert_eq!(metrics.node("keep-half").unwrap().items_in(), 50);
    assert_eq!(metrics.node("keep-half").unwrap().items_out(), 25);
    assert_eq!(metrics.node("out").unwrap().items_in(), 25);
}

#[test]
fn aggregate_emits_incrementally_as_watermarks_advance() {
    // Results for early windows must not wait for end-of-stream: check
    // the sink sees window 0's result while the source is still alive.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    struct Gated {
        release: Arc<AtomicBool>,
    }
    impl strata_spe::Source for Gated {
        type Out = Event;
        fn run(&mut self, ctx: &mut SourceContext<Event>) -> std::result::Result<(), String> {
            ctx.emit(Event {
                ts: 10,
                key: 0,
                value: 1,
            });
            ctx.emit_watermark(Timestamp::from_millis(150));
            // Hold the stream open until the test observed the early result.
            while !self.release.load(Ordering::Relaxed) && !ctx.should_stop() {
                std::thread::yield_now();
            }
            Ok(())
        }
    }

    let release = Arc::new(AtomicBool::new(false));
    let mut qb = QueryBuilder::new("incremental");
    let src = qb.source(
        "src",
        Gated {
            release: Arc::clone(&release),
        },
    );
    let agg = qb.aggregate(
        "agg",
        &src,
        WindowSpec::tumbling(100).unwrap(),
        |_| 0u8,
        |_, _, items: &[Event]| vec![items.len()],
    );
    let out = qb.collect_sink("out", &agg);
    let running = qb.build().unwrap().run();
    // The early window result must arrive while the source is gated.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while out.is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "window result did not arrive before end-of-stream"
        );
        std::thread::yield_now();
    }
    assert_eq!(out.snapshot(), vec![1]);
    release.store(true, Ordering::Relaxed);
    running.join().unwrap();
}
