//! Engine tests for element-level sinks and router nodes — the
//! primitives STRATA's connectors are built from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use strata_spe::prelude::*;

#[test]
fn element_sink_sees_items_watermarks_and_end() {
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let mut qb = QueryBuilder::new("elements");
    let src = qb.source(
        "src",
        IteratorSource::with_watermarks(vec![Timestamp::from_millis(5), Timestamp::from_millis(9)]),
    );
    qb.element_sink("sink", &src, move |el: Element<Timestamp>| {
        sink_seen.lock().push(match el {
            Element::Item(t) => format!("item:{}", t.as_millis()),
            Element::Watermark(w) => format!("wm:{}", w.as_millis()),
            Element::End => "end".to_string(),
            // The engine explodes batches before element sinks.
            Element::Batch(_) => unreachable!("element sinks see items, not batches"),
        });
    });
    qb.build().unwrap().run().join().unwrap();
    assert_eq!(
        *seen.lock(),
        vec!["item:5", "wm:5", "item:9", "wm:9", "end"]
    );
}

#[test]
fn element_sink_merges_watermarks_across_inputs() {
    // Two sources into a union, then an element sink: the sink must
    // see the *minimum* watermark across inputs, monotone.
    let watermarks: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_wms = Arc::clone(&watermarks);
    let mut qb = QueryBuilder::new("merge");
    let a = qb.source(
        "a",
        IteratorSource::with_watermarks(vec![
            Timestamp::from_millis(10),
            Timestamp::from_millis(30),
        ]),
    );
    let b = qb.source(
        "b",
        IteratorSource::with_watermarks(vec![
            Timestamp::from_millis(20),
            Timestamp::from_millis(40),
        ]),
    );
    let merged = qb.union("u", &[a, b]);
    qb.element_sink("sink", &merged, move |el: Element<Timestamp>| {
        if let Element::Watermark(w) = el {
            sink_wms.lock().push(w.as_millis());
        }
    });
    qb.build().unwrap().run().join().unwrap();
    let wms = watermarks.lock().clone();
    // The exact sequence depends on thread interleaving, but the
    // merged watermark is always strictly increasing, only takes
    // values some input advertised, and ends at ≥ 30 (both inputs'
    // final watermarks are processed before their End markers).
    assert!(!wms.is_empty());
    assert!(wms.windows(2).all(|w| w[0] < w[1]), "monotone: {wms:?}");
    assert!(wms.iter().all(|w| [10, 20, 30, 40].contains(w)), "{wms:?}");
    assert!(*wms.last().unwrap() >= 30, "{wms:?}");
}

#[test]
fn router_broadcasts_watermarks_to_every_port() {
    // Each port's consumer is an aggregate; all must close their
    // windows even though items are split between them.
    let mut qb = QueryBuilder::new("router-wm");
    let items: Vec<Timestamp> = (0..100).map(|i| Timestamp::from_millis(i * 10)).collect();
    let src = qb.source("src", IteratorSource::with_watermarks(items));
    let ports = qb.route(
        "route",
        &src,
        2,
        strata_spe::operators::RoutePolicy::RoundRobin,
    );
    let counters: Vec<_> = ports
        .iter()
        .enumerate()
        .map(|(i, port)| {
            let agg = qb.aggregate(
                format!("agg{i}"),
                port,
                WindowSpec::tumbling(250).unwrap(),
                |_| 0u8,
                |_, bounds, items: &[Timestamp]| vec![(bounds.index, items.len())],
            );
            qb.collect_sink(format!("out{i}"), &agg)
        })
        .collect();
    qb.build().unwrap().run().join().unwrap();
    let (a, b) = (counters[0].take(), counters[1].take());
    // Items 0..1000ms in windows of 250ms → 4 windows, 25 items each,
    // split 13/12 between the ports (round robin by arrival).
    let total: usize = a.iter().chain(&b).map(|(_, n)| n).sum();
    assert_eq!(total, 100);
    assert!(
        a.len() >= 4 && b.len() >= 4,
        "every port saw every window close"
    );
}

#[test]
fn fan_out_to_element_sink_and_sink_coexist() {
    let count = Arc::new(AtomicU64::new(0));
    let element_count = Arc::clone(&count);
    let mut qb = QueryBuilder::new("mixed");
    let src = qb.source("src", IteratorSource::new(0u32..50));
    qb.element_sink("elements", &src, move |el| {
        if el.is_item() {
            element_count.fetch_add(1, Ordering::Relaxed);
        }
    });
    let collected = qb.collect_sink("items", &src);
    qb.build().unwrap().run().join().unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 50);
    assert_eq!(collected.len(), 50);
}
