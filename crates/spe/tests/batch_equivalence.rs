//! Batch-size equivalence: the micro-batched data plane must be
//! observationally identical to item-at-a-time execution.
//!
//! Seeded random pipelines (map / filter / flat_map / aggregate /
//! self-join / parallel router) are run at `batch_size = 1` and at a
//! spread of larger batch sizes; for each run the test captures the
//! output item multiset (sorted) and the watermark sequence seen by an
//! element-level sink. All runs of one seed must agree exactly, and
//! the `batch_size = 1` run must be bit-identical to the golden file
//! recorded from the pre-batching engine. Regenerate goldens with
//! `UPDATE_GOLDEN=1 cargo test -p strata-spe --test batch_equivalence`.
//!
//! Comparing a *sorted* multiset plus the watermark sequence is what
//! makes unrestricted pipeline shapes sound: join and parallel stages
//! may interleave differently run to run, but their output multisets
//! and merged watermark sequences are deterministic (windows close in
//! `(index, key)` order, watermark merges take stepwise minima).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strata_spe::operators::Map;
use strata_spe::prelude::*;

const SEEDS: std::ops::RangeInclusive<u64> = 1..=6;
const BATCH_SIZES: [usize; 4] = [2, 7, 64, 1024];

/// The item flowing through every generated pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct E {
    ts: u64,
    val: u64,
}

impl Timestamped for E {
    fn timestamp(&self) -> Timestamp {
        Timestamp::from_millis(self.ts)
    }
}

/// A source with *sparse* watermarks: one every `wm_every` items, not
/// one per item, so batches larger than one actually form once the
/// data plane batches (watermarks are batch boundaries).
struct SparseSource {
    items: Vec<E>,
    wm_every: usize,
}

impl Source for SparseSource {
    type Out = E;

    fn run(&mut self, ctx: &mut SourceContext<E>) -> std::result::Result<(), String> {
        let items = std::mem::take(&mut self.items);
        let mut max_ts = 0u64;
        let total = items.len();
        for (i, item) in items.into_iter().enumerate() {
            max_ts = max_ts.max(item.ts);
            if !ctx.emit(item) {
                return Ok(());
            }
            if (i + 1) % self.wm_every == 0
                && i + 1 < total
                && !ctx.emit_watermark(Timestamp::from_millis(max_ts))
            {
                return Ok(());
            }
        }
        ctx.emit_watermark(Timestamp::from_millis(max_ts));
        Ok(())
    }
}

/// Builds a random pipeline from `seed`, runs it at `batch_size`, and
/// returns the canonical observation text: the sorted output multiset
/// followed by the watermark sequence at the sink. The generator's
/// random draws depend only on `seed`, never on `batch_size`.
fn run_pipeline(seed: u64, batch_size: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_items: usize = 400 + rng.gen_range(0..200usize);
    let items: Vec<E> = (0..n_items as u64)
        .map(|i| E {
            ts: i / 2,
            val: rng.gen_range(0..1000u64),
        })
        .collect();
    let wm_every = [1usize, 5, 64][rng.gen_range(0..3usize)];
    if std::env::var_os("SHAPE_DEBUG").is_some() {
        eprintln!("seed={seed} n_items={n_items} wm_every={wm_every}");
    }

    let mut qb = QueryBuilder::new(format!("equiv.seed{seed}.bs{batch_size}"));
    qb.batch_size(batch_size);
    qb.batch_timeout(Duration::from_secs(1));
    let mut stream = qb.source("src", SparseSource { items, wm_every });

    let n_stages = 3 + rng.gen_range(0..3usize);
    let (mut used_join, mut used_parallel) = (false, false);
    for stage in 0..n_stages {
        let mut kinds = vec!["map", "filter", "flat_map", "aggregate"];
        if !used_join {
            kinds.push("join");
        }
        if !used_parallel {
            kinds.push("parallel");
        }
        let kind = kinds[rng.gen_range(0..kinds.len())];
        if std::env::var_os("SHAPE_DEBUG").is_some() {
            eprintln!("seed={seed} stage {stage}: {kind}");
        }
        let name = format!("s{stage}.{kind}");
        stream = match kind {
            "map" => {
                let m = rng.gen_range(1..5u64) * 2 + 1;
                let a = rng.gen_range(0..100u64);
                qb.map(name, &stream, move |e: E| E {
                    ts: e.ts,
                    val: e.val.wrapping_mul(m).wrapping_add(a) % 10_000,
                })
            }
            "filter" => {
                let m = rng.gen_range(2..5u64);
                let r = rng.gen_range(0..2u64);
                qb.filter(name, &stream, move |e: &E| e.val % m != r)
            }
            "flat_map" => qb.flat_map(name, &stream, move |e: E| {
                (0..e.val % 3).map(move |j| E {
                    ts: e.ts,
                    val: e.val + j,
                })
            }),
            "aggregate" => {
                let size = [8u64, 16][rng.gen_range(0..2usize)];
                let groups = rng.gen_range(2..6u64);
                qb.aggregate(
                    name,
                    &stream,
                    WindowSpec::tumbling(size).unwrap(),
                    move |e: &E| e.val % groups,
                    // Count and sum are order-insensitive, so the
                    // window result is interleaving-independent. The
                    // result is stamped with the window *end*: a window
                    // only closes once the watermark reaches its end,
                    // so end-stamped outputs keep the stream's
                    // watermarks truthful, which downstream joins rely
                    // on for deterministic eviction.
                    move |key: &u64, bounds: WindowBounds, items: &[E]| {
                        let sum: u64 = items.iter().map(|e| e.val).sum();
                        vec![E {
                            ts: bounds.end.as_millis(),
                            val: (items.len() as u64) * 1_000_000 + sum % 1_000_000 + key,
                        }]
                    },
                )
            }
            "join" => {
                used_join = true;
                let ws = [0u64, 4][rng.gen_range(0..2usize)];
                let groups = rng.gen_range(2..6u64);
                qb.join(
                    name,
                    &stream,
                    &stream,
                    ws,
                    move |e: &E| e.val % groups,
                    move |e: &E| e.val % groups,
                    |l: &E, r: &E| {
                        Some(E {
                            ts: l.ts.max(r.ts),
                            val: l.val.wrapping_add(r.val) % 10_000,
                        })
                    },
                )
            }
            "parallel" => {
                used_parallel = true;
                let instances = rng.gen_range(2..4usize);
                let m = rng.gen_range(1..5u64) * 2 + 1;
                qb.parallel_operator(
                    name,
                    &stream,
                    instances,
                    RoutePolicy::RoundRobin,
                    move |_i| {
                        Map::new(move |e: E| E {
                            ts: e.ts,
                            val: e.val.wrapping_mul(m) % 10_000,
                        })
                    },
                )
            }
            _ => unreachable!(),
        };
    }

    let captured_items = Arc::new(Mutex::new(Vec::<String>::new()));
    let captured_wms = Arc::new(Mutex::new(Vec::<u64>::new()));
    let (sink_items, sink_wms) = (Arc::clone(&captured_items), Arc::clone(&captured_wms));
    qb.element_sink("capture", &stream, move |element| match element {
        Element::Item(e) => sink_items
            .lock()
            .unwrap()
            .push(format!("{} {}", e.ts, e.val)),
        Element::Watermark(wm) => sink_wms.lock().unwrap().push(wm.as_millis()),
        _ => {}
    });
    qb.build().unwrap().run().join().unwrap();

    let mut items = Arc::try_unwrap(captured_items)
        .unwrap()
        .into_inner()
        .unwrap();
    items.sort();
    let wms = Arc::try_unwrap(captured_wms).unwrap().into_inner().unwrap();
    let mut text = String::new();
    writeln!(text, "items: {}", items.len()).unwrap();
    for item in items {
        writeln!(text, "{item}").unwrap();
    }
    writeln!(text, "watermarks: {}", wms.len()).unwrap();
    for wm in wms {
        writeln!(text, "{wm}").unwrap();
    }
    text
}

fn golden_path(seed: u64) -> String {
    format!(
        "{}/tests/golden/batch_equivalence_seed{seed}.txt",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// `batch_size = 1` must reproduce the pre-batching engine bit for
/// bit: the goldens were recorded from the item-at-a-time data plane
/// before the micro-batch rewrite landed.
#[test]
fn batch_size_one_matches_pre_batching_goldens() {
    for seed in SEEDS {
        let observed = run_pipeline(seed, 1);
        let path = golden_path(seed);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &observed).unwrap();
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden {path} (regenerate with UPDATE_GOLDEN=1): {e}")
        });
        assert_eq!(
            observed, golden,
            "seed {seed}: batch_size=1 output diverged from the pre-batching golden"
        );
    }
}

/// Every batch size must produce the same output multiset and the
/// same watermark sequence as `batch_size = 1`.
#[test]
fn batched_runs_match_batch_size_one() {
    for seed in SEEDS {
        let baseline = run_pipeline(seed, 1);
        for batch_size in BATCH_SIZES {
            let observed = run_pipeline(seed, batch_size);
            assert_eq!(
                observed, baseline,
                "seed {seed}: batch_size={batch_size} diverged from batch_size=1"
            );
        }
    }
}
