//! Runnable queries and their lifecycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::metrics::{NodeMetrics, QueryMetrics};

type WorkerFn = Box<dyn FnOnce() + Send>;

/// A fully built continuous query, ready to [`run`](Query::run).
pub struct Query {
    name: String,
    workers: Vec<(String, WorkerFn)>,
    stop: Arc<AtomicBool>,
    metrics: Vec<Arc<NodeMetrics>>,
    errors: Arc<Mutex<Vec<Error>>>,
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query")
            .field("name", &self.name)
            .field("nodes", &self.workers.len())
            .finish()
    }
}

impl Query {
    pub(crate) fn new(
        name: String,
        workers: Vec<(String, WorkerFn)>,
        stop: Arc<AtomicBool>,
        metrics: Vec<Arc<NodeMetrics>>,
        errors: Arc<Mutex<Vec<Error>>>,
    ) -> Self {
        Query {
            name,
            workers,
            stop,
            metrics,
            errors,
        }
    }

    /// The query's name, as given to
    /// [`QueryBuilder::new`](crate::builder::QueryBuilder::new).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (threads) this query deploys.
    pub fn node_count(&self) -> usize {
        self.workers.len()
    }

    /// Spawns one thread per node and starts processing.
    ///
    /// Every worker runs under panic supervision: a panic in user
    /// code (an operator closure, a source, a sink) is caught, its
    /// node's channels close so the rest of the graph drains
    /// normally, and [`join`](RunningQuery::join) reports a
    /// structured [`Error::OperatorPanicked`] instead of the query
    /// hanging or aborting the process.
    pub fn run(self) -> RunningQuery {
        let Query {
            name,
            workers,
            stop,
            metrics,
            errors,
        } = self;
        let handles = workers
            .into_iter()
            .zip(metrics.iter())
            .map(|((node_name, worker), node_metrics)| {
                let errors = Arc::clone(&errors);
                let node_metrics = Arc::clone(node_metrics);
                let node = node_name.clone();
                let supervised = move || {
                    // AssertUnwindSafe: on panic the worker's state
                    // (operators, channels) is dropped wholesale, so
                    // no broken invariants can be observed afterwards.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(worker));
                    if let Err(payload) = result {
                        node_metrics.record_panic();
                        errors.lock().push(Error::OperatorPanicked {
                            node,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                };
                let handle = std::thread::Builder::new()
                    .name(format!("{name}/{node_name}"))
                    .spawn(supervised)
                    .expect("spawning a worker thread cannot fail under normal limits");
                (node_name, handle)
            })
            .collect();
        let metrics = QueryMetrics::new(name.clone(), metrics);
        RunningQuery {
            name,
            handles,
            stop,
            metrics,
            errors,
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A deployed query whose node threads are processing data.
///
/// Dropping a `RunningQuery` without calling
/// [`join`](RunningQuery::join) detaches the threads; they finish on
/// their own when the sources end. Call [`stop`](RunningQuery::stop)
/// followed by `join` for a prompt, clean shutdown.
pub struct RunningQuery {
    name: String,
    handles: Vec<(String, JoinHandle<()>)>,
    stop: Arc<AtomicBool>,
    metrics: QueryMetrics,
    errors: Arc<Mutex<Vec<Error>>>,
}

impl std::fmt::Debug for RunningQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningQuery")
            .field("name", &self.name)
            .field("nodes", &self.handles.len())
            .finish()
    }
}

impl RunningQuery {
    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Asks the sources to stop; downstream nodes drain and flush
    /// their state, then every thread exits. Follow with
    /// [`join`](RunningQuery::join) to wait for that to happen.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Live per-node metrics.
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }

    /// Waits for every node thread to finish.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperatorPanicked`] if supervision caught a
    /// panic in any node's user code, [`Error::WorkerPanicked`] if a
    /// thread died outside supervision (should not happen), or the
    /// first error reported by a source ([`Error::SourceFailed`]).
    pub fn join(self) -> Result<QueryMetrics> {
        let mut panicked = None;
        for (name, handle) in self.handles {
            if handle.join().is_err() && panicked.is_none() {
                panicked = Some(name);
            }
        }
        if let Some(node) = panicked {
            return Err(Error::WorkerPanicked { node });
        }
        let errors = self.errors.lock();
        // A caught panic explains any secondary errors; report it
        // first so callers see the root cause deterministically.
        if let Some(panic) = errors
            .iter()
            .find(|e| matches!(e, Error::OperatorPanicked { .. }))
        {
            return Err(panic.clone());
        }
        if let Some(err) = errors.first().cloned() {
            return Err(err);
        }
        drop(errors);
        Ok(self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::QueryBuilder;
    use crate::source::{IteratorSource, Source, SourceContext};

    #[test]
    fn runs_a_linear_query_end_to_end() {
        let mut qb = QueryBuilder::new("linear");
        let src = qb.source("src", IteratorSource::new(0u32..100));
        let evens = qb.filter("evens", &src, |x| x % 2 == 0);
        let strings = qb.map("fmt", &evens, |x| format!("#{x}"));
        let out = qb.collect_sink("out", &strings);
        let query = qb.build().unwrap();
        assert_eq!(query.node_count(), 4);
        assert_eq!(query.name(), "linear");
        let metrics = query.run().join().unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(out.take()[0], "#0");
        assert_eq!(metrics.node("evens").unwrap().items_in(), 100);
        assert_eq!(metrics.node("evens").unwrap().items_out(), 50);
    }

    #[test]
    fn stop_interrupts_an_infinite_source() {
        struct Endless;
        impl Source for Endless {
            type Out = u64;
            fn run(&mut self, ctx: &mut SourceContext<u64>) -> Result<(), String> {
                let mut i = 0;
                while !ctx.should_stop() {
                    if !ctx.emit(i) {
                        break;
                    }
                    i += 1;
                }
                Ok(())
            }
        }
        let mut qb = QueryBuilder::new("endless");
        let src = qb.source("src", Endless);
        let out = qb.collect_sink("out", &src);
        let running = qb.build().unwrap().run();
        while out.len() < 100 {
            std::thread::yield_now();
        }
        running.stop();
        running.join().unwrap();
        assert!(out.len() >= 100);
    }

    #[test]
    fn source_errors_surface_at_join() {
        struct Broken;
        impl Source for Broken {
            type Out = u8;
            fn run(&mut self, _ctx: &mut SourceContext<u8>) -> Result<(), String> {
                Err("sensor unplugged".into())
            }
        }
        let mut qb = QueryBuilder::new("broken");
        let src = qb.source("src", Broken);
        let _out = qb.collect_sink("out", &src);
        let err = qb.build().unwrap().run().join().unwrap_err();
        assert!(err.to_string().contains("sensor unplugged"));
    }

    #[test]
    fn operator_panics_surface_at_join() {
        let mut qb = QueryBuilder::new("panics");
        let src = qb.source("src", IteratorSource::new(0..10));
        let bad = qb.map("bad", &src, |x: i32| {
            assert!(x < 5, "boom");
            x
        });
        let _out = qb.collect_sink("out", &bad);
        let running = qb.build().unwrap().run();
        let metrics = running.metrics().clone();
        let err = running.join().unwrap_err();
        match err {
            crate::error::Error::OperatorPanicked { node, message } => {
                assert_eq!(node, "bad");
                assert!(message.contains("boom"), "payload preserved: {message}");
            }
            other => panic!("expected OperatorPanicked, got {other:?}"),
        }
        assert_eq!(metrics.node("bad").unwrap().panics(), 1);
        assert_eq!(metrics.total_panics(), 1);
        // The user-visible summary surfaces the caught panic.
        let summary = metrics.snapshot().to_string();
        assert!(summary.contains("query `panics`"), "{summary}");
        assert!(summary.contains("panics 1"), "{summary}");
        assert!(
            summary
                .lines()
                .any(|l| l.contains("bad:") && l.contains("panics=1")),
            "the panicking node is flagged in its row: {summary}"
        );
    }
}
