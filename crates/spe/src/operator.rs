//! Operator traits implemented by the engine's native operators and
//! available for custom user operators.

use crate::time::Timestamp;

/// A single-input operator transforming items of type `I` into items
/// of type `O`.
///
/// The engine calls the three hooks from the operator's dedicated
/// worker thread, in channel order, so implementations never need
/// internal synchronization:
///
/// * [`on_item`](UnaryOperator::on_item) for every data tuple;
/// * [`on_watermark`](UnaryOperator::on_watermark) whenever the
///   *combined* (minimum across inputs) watermark advances — stateful
///   operators close windows here;
/// * [`on_end`](UnaryOperator::on_end) exactly once, after all inputs
///   reached end-of-stream — stateful operators flush here.
///
/// Outputs are appended to `out`; the worker broadcasts them to all
/// downstream channels after the hook returns.
pub trait UnaryOperator<I, O>: Send {
    /// Processes one input tuple, appending any number of outputs.
    fn on_item(&mut self, item: I, out: &mut Vec<O>);

    /// Processes a micro-batch of input tuples in channel order. The
    /// default simply loops over [`on_item`](UnaryOperator::on_item);
    /// stateless operators override it to amortize per-item dispatch.
    /// Implementations must be observationally equivalent to the
    /// item-at-a-time loop.
    fn on_batch(&mut self, items: Vec<I>, out: &mut Vec<O>) {
        for item in items {
            self.on_item(item, out);
        }
    }

    /// Reacts to event-time progress. The default forwards nothing
    /// (the worker itself propagates the watermark downstream).
    fn on_watermark(&mut self, watermark: Timestamp, out: &mut Vec<O>) {
        let _ = (watermark, out);
    }

    /// Flushes remaining state at end-of-stream. The default does
    /// nothing.
    fn on_end(&mut self, out: &mut Vec<O>) {
        let _ = out;
    }
}

/// A two-input operator combining a left stream of `L` and a right
/// stream of `R` into outputs of type `O` (the engine's `Join`).
///
/// The same threading guarantees as [`UnaryOperator`] apply.
pub trait BinaryOperator<L, R, O>: Send {
    /// Processes one tuple from the left input.
    fn on_left(&mut self, item: L, out: &mut Vec<O>);

    /// Processes one tuple from the right input.
    fn on_right(&mut self, item: R, out: &mut Vec<O>);

    /// Processes a micro-batch of left tuples in channel order. The
    /// default loops over [`on_left`](BinaryOperator::on_left).
    fn on_left_batch(&mut self, items: Vec<L>, out: &mut Vec<O>) {
        for item in items {
            self.on_left(item, out);
        }
    }

    /// Processes a micro-batch of right tuples in channel order. The
    /// default loops over [`on_right`](BinaryOperator::on_right).
    fn on_right_batch(&mut self, items: Vec<R>, out: &mut Vec<O>) {
        for item in items {
            self.on_right(item, out);
        }
    }

    /// Reacts to combined event-time progress across both inputs.
    fn on_watermark(&mut self, watermark: Timestamp, out: &mut Vec<O>) {
        let _ = (watermark, out);
    }

    /// Flushes remaining state once both inputs ended.
    fn on_end(&mut self, out: &mut Vec<O>) {
        let _ = out;
    }
}

/// Blanket adapter: any `FnMut(I, &mut Vec<O>)` closure is a stateless
/// unary operator.
impl<I, O, F> UnaryOperator<I, O> for F
where
    F: FnMut(I, &mut Vec<O>) + Send,
{
    fn on_item(&mut self, item: I, out: &mut Vec<O>) {
        self(item, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_unary_operators() {
        let mut op = |x: u32, out: &mut Vec<u32>| out.push(x + 1);
        let mut out = Vec::new();
        UnaryOperator::on_item(&mut op, 1, &mut out);
        UnaryOperator::on_watermark(&mut op, Timestamp::from_millis(5), &mut out);
        UnaryOperator::on_end(&mut op, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn default_hooks_emit_nothing() {
        struct Nop;
        impl UnaryOperator<u8, u8> for Nop {
            fn on_item(&mut self, _item: u8, _out: &mut Vec<u8>) {}
        }
        let mut out = Vec::new();
        Nop.on_watermark(Timestamp::MIN, &mut out);
        Nop.on_end(&mut out);
        assert!(out.is_empty());
    }
}
