//! Sources: the entry points of a continuous query.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;

use crate::element::{Batch, Element};
use crate::metrics::NodeMetrics;
use crate::time::{Timestamp, Timestamped};

/// A data source feeding a continuous query.
///
/// The engine runs [`Source::run`] once on a dedicated thread. The
/// source emits items and watermarks through the [`SourceContext`]
/// at its own pace (e.g. replaying a trace in real time, or as fast
/// as possible) and returns when exhausted or when
/// [`SourceContext::should_stop`] turns `true`. After `run` returns,
/// the engine emits the end-of-stream marker on the source's behalf.
pub trait Source: Send {
    /// The item type this source produces.
    type Out: Clone + Send + Sync + 'static;

    /// Produces the stream. See the trait documentation for the
    /// contract.
    ///
    /// # Errors
    ///
    /// Implementations return a human-readable reason when acquisition
    /// fails; the engine surfaces it as
    /// [`Error::SourceFailed`](crate::Error::SourceFailed).
    fn run(&mut self, ctx: &mut SourceContext<Self::Out>) -> Result<(), String>;
}

/// Handle given to a [`Source`] for emitting data and watermarks and
/// for observing cooperative-stop requests.
///
/// With a query batch size above one, consecutive [`emit`] calls are
/// coalesced into a shared [`Batch`] that is forwarded when it
/// reaches `max_batch` items, when the batch timeout elapses (checked
/// on the next `emit`), or when a watermark or end-of-stream follows
/// — so control markers are always batch boundaries. The timeout is
/// emit-driven: a source that stops emitting mid-batch holds the
/// partial batch until its next call, its watermark, or the end of
/// its run, each of which flushes.
///
/// [`emit`]: SourceContext::emit
#[derive(Debug)]
pub struct SourceContext<T> {
    outputs: Vec<Sender<Element<T>>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<NodeMetrics>,
    disconnected: bool,
    buf: Vec<T>,
    max_batch: usize,
    batch_timeout: Duration,
    deadline: Option<Instant>,
}

impl<T: Clone> SourceContext<T> {
    pub(crate) fn new(
        outputs: Vec<Sender<Element<T>>>,
        stop: Arc<AtomicBool>,
        metrics: Arc<NodeMetrics>,
        max_batch: usize,
        batch_timeout: Duration,
    ) -> Self {
        SourceContext {
            outputs,
            stop,
            metrics,
            disconnected: false,
            buf: Vec::new(),
            max_batch,
            batch_timeout,
            deadline: None,
        }
    }

    /// Emits one item downstream, blocking while downstream channels
    /// are full (backpressure). Returns `false` if every downstream
    /// consumer is gone, in which case the source should return from
    /// [`Source::run`].
    pub fn emit(&mut self, item: T) -> bool {
        if self.max_batch <= 1 {
            self.metrics.record_out(1);
            return self.broadcast(Element::Item(item));
        }
        if self.buf.is_empty() {
            self.deadline = Some(Instant::now() + self.batch_timeout);
        }
        self.buf.push(item);
        if self.buf.len() >= self.max_batch
            || self.deadline.is_some_and(|due| Instant::now() >= due)
        {
            self.flush_batch();
        }
        !self.disconnected
    }

    /// Emits a watermark: a promise that no later item will carry an
    /// event time lower than `watermark`. Flushes any partial batch
    /// first, so the watermark stays truthful for the items before it.
    pub fn emit_watermark(&mut self, watermark: Timestamp) -> bool {
        self.flush_batch();
        self.broadcast(Element::Watermark(watermark))
    }

    /// `true` once the query has been asked to stop; sources should
    /// poll this between emissions and return promptly.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.disconnected
    }

    fn flush_batch(&mut self) {
        self.deadline = None;
        if self.buf.is_empty() {
            return;
        }
        self.metrics.record_out(self.buf.len() as u64);
        self.metrics.record_batch(self.buf.len() as u64);
        let element = if self.buf.len() == 1 {
            Element::Item(self.buf.pop().expect("one buffered item"))
        } else {
            Element::Batch(Batch::new(std::mem::take(&mut self.buf)))
        };
        self.broadcast(element);
    }

    /// Flushes any partial batch and closes the stream with one
    /// end-of-stream marker per output. Called by the engine after
    /// [`Source::run`] returns.
    pub(crate) fn finish(mut self) {
        self.flush_batch();
        for tx in &self.outputs {
            let _ = tx.send(Element::End);
        }
    }

    fn broadcast(&mut self, element: Element<T>) -> bool {
        // The original moves into the last send; only extra fan-out
        // channels pay for a clone (an `Arc` bump for batches).
        if self.outputs.is_empty() {
            self.disconnected = true;
            return false;
        }
        let mut alive = false;
        let last = self.outputs.len() - 1;
        let mut element = Some(element);
        for (i, tx) in self.outputs.iter().enumerate() {
            let payload = if i == last {
                element.take().expect("moved into the last send")
            } else {
                element.as_ref().expect("kept until the last send").clone()
            };
            if tx.send(payload).is_ok() {
                alive = true;
            }
        }
        if !alive {
            self.disconnected = true;
        }
        alive
    }
}

/// A [`Source`] draining a Rust [`Iterator`] as fast as downstream
/// backpressure allows.
///
/// If the item type implements [`Timestamped`], construct it with
/// [`IteratorSource::with_watermarks`] to also emit a watermark after
/// every item, which is what event-time operators downstream need.
///
/// ```
/// use strata_spe::IteratorSource;
/// let src = IteratorSource::new(vec![1, 2, 3]);
/// ```
pub struct IteratorSource<I: IntoIterator> {
    iter: Option<I>,
    #[allow(clippy::type_complexity)]
    watermark_of: Option<Box<dyn Fn(&I::Item) -> Timestamp + Send>>,
}

impl<I: IntoIterator> std::fmt::Debug for IteratorSource<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IteratorSource")
            .field("exhausted", &self.iter.is_none())
            .field("watermarks", &self.watermark_of.is_some())
            .finish()
    }
}

impl<I: IntoIterator> IteratorSource<I> {
    /// Creates a source over `iter`, emitting no watermarks.
    pub fn new(iter: I) -> Self {
        IteratorSource {
            iter: Some(iter),
            watermark_of: None,
        }
    }

    /// Creates a source over `iter` that emits, after every item, a
    /// watermark computed by `f` (typically the item's timestamp).
    /// Requires the produced watermarks to be non-decreasing to be
    /// truthful.
    pub fn with_watermark_fn(iter: I, f: impl Fn(&I::Item) -> Timestamp + Send + 'static) -> Self {
        IteratorSource {
            iter: Some(iter),
            watermark_of: Some(Box::new(f)),
        }
    }
}

impl<I> IteratorSource<I>
where
    I: IntoIterator,
    I::Item: Timestamped,
{
    /// Creates a source over `iter` that emits a watermark equal to
    /// each item's timestamp right after the item. Requires the items
    /// to be in non-decreasing timestamp order for the watermarks to
    /// be truthful.
    pub fn with_watermarks(iter: I) -> Self {
        IteratorSource::with_watermark_fn(iter, |item| item.timestamp())
    }
}

impl<I> Source for IteratorSource<I>
where
    I: IntoIterator + Send,
    I::Item: Clone + Send + Sync + 'static,
{
    type Out = I::Item;

    fn run(&mut self, ctx: &mut SourceContext<Self::Out>) -> Result<(), String> {
        let iter = self
            .iter
            .take()
            .ok_or_else(|| "iterator source run twice".to_string())?;
        for item in iter {
            if ctx.should_stop() {
                break;
            }
            let wm = self.watermark_of.as_ref().map(|f| f(&item));
            if !ctx.emit(item) {
                break;
            }
            if let Some(wm) = wm {
                if !ctx.emit_watermark(wm) {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// A [`Source`] that replays pre-timestamped batches, optionally
/// pacing them against the wall clock to mimic a live PBF-LB machine
/// (one OT image per layer, with a recoat gap in between).
///
/// Each batch is a `(Timestamp, Vec<T>)` pair; after a batch is
/// emitted, a watermark equal to the batch timestamp follows. With a
/// [`pace`](TimedBatchSource::paced) factor of 1.0, batch `k` is
/// released `t_k − t_0` wall-clock milliseconds after the first; a
/// factor of 0.0 replays as fast as possible.
pub struct TimedBatchSource<T> {
    batches: std::vec::IntoIter<(Timestamp, Vec<T>)>,
    pace: f64,
}

impl<T> std::fmt::Debug for TimedBatchSource<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedBatchSource")
            .field("pace", &self.pace)
            .finish_non_exhaustive()
    }
}

impl<T> TimedBatchSource<T> {
    /// Creates a source replaying `batches` as fast as possible.
    /// Batches must be in non-decreasing timestamp order.
    pub fn new(batches: Vec<(Timestamp, Vec<T>)>) -> Self {
        TimedBatchSource {
            batches: batches.into_iter(),
            pace: 0.0,
        }
    }

    /// Sets the pacing factor: 1.0 replays in real time, 2.0 at half
    /// speed, 0.5 at double speed, 0.0 (the default) as fast as
    /// possible.
    pub fn paced(mut self, pace: f64) -> Self {
        self.pace = pace.max(0.0);
        self
    }
}

impl<T: Clone + Send + Sync + 'static> Source for TimedBatchSource<T> {
    type Out = T;

    fn run(&mut self, ctx: &mut SourceContext<T>) -> Result<(), String> {
        let started = std::time::Instant::now();
        let mut first: Option<Timestamp> = None;
        for (ts, batch) in self.batches.by_ref() {
            if ctx.should_stop() {
                break;
            }
            let epoch = *first.get_or_insert(ts);
            if self.pace > 0.0 {
                let due_millis = (ts.abs_diff(epoch) as f64 * self.pace) as u64;
                let due = std::time::Duration::from_millis(due_millis);
                let elapsed = started.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            for item in batch {
                if !ctx.emit(item) {
                    return Ok(());
                }
            }
            if !ctx.emit_watermark(ts) {
                return Ok(());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn test_ctx<T: Clone>(
        cap: usize,
    ) -> (SourceContext<T>, crossbeam::channel::Receiver<Element<T>>) {
        batched_ctx(cap, 1)
    }

    fn batched_ctx<T: Clone>(
        cap: usize,
        max_batch: usize,
    ) -> (SourceContext<T>, crossbeam::channel::Receiver<Element<T>>) {
        let (tx, rx) = bounded(cap);
        let ctx = SourceContext::new(
            vec![tx],
            Arc::new(AtomicBool::new(false)),
            Arc::new(NodeMetrics::new("test")),
            max_batch,
            Duration::from_secs(1),
        );
        (ctx, rx)
    }

    #[test]
    fn iterator_source_emits_all_items() {
        let (mut ctx, rx) = test_ctx(16);
        let mut src = IteratorSource::new(vec![1, 2, 3]);
        src.run(&mut ctx).unwrap();
        drop(ctx);
        let got: Vec<_> = rx.iter().filter_map(Element::into_item).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn iterator_source_cannot_run_twice() {
        let (mut ctx, _rx) = test_ctx::<i32>(16);
        let mut src = IteratorSource::new(vec![1]);
        src.run(&mut ctx).unwrap();
        assert!(src.run(&mut ctx).is_err());
    }

    #[test]
    fn iterator_source_with_watermarks_interleaves() {
        let (mut ctx, rx) = test_ctx(16);
        let items = vec![Timestamp::from_millis(5), Timestamp::from_millis(9)];
        let mut src = IteratorSource::with_watermarks(items);
        src.run(&mut ctx).unwrap();
        drop(ctx);
        let got: Vec<_> = rx.iter().collect();
        assert_eq!(
            got,
            vec![
                Element::Item(Timestamp::from_millis(5)),
                Element::Watermark(Timestamp::from_millis(5)),
                Element::Item(Timestamp::from_millis(9)),
                Element::Watermark(Timestamp::from_millis(9)),
            ]
        );
    }

    #[test]
    fn emit_reports_disconnection() {
        let (mut ctx, rx) = test_ctx(16);
        drop(rx);
        assert!(!ctx.emit(9));
        assert!(ctx.should_stop());
    }

    #[test]
    fn timed_batch_source_interleaves_watermarks() {
        let (mut ctx, rx) = test_ctx(64);
        let mut src = TimedBatchSource::new(vec![
            (Timestamp::from_millis(10), vec!["a", "b"]),
            (Timestamp::from_millis(20), vec!["c"]),
        ]);
        src.run(&mut ctx).unwrap();
        drop(ctx);
        let got: Vec<_> = rx.iter().collect();
        assert_eq!(
            got,
            vec![
                Element::Item("a"),
                Element::Item("b"),
                Element::Watermark(Timestamp::from_millis(10)),
                Element::Item("c"),
                Element::Watermark(Timestamp::from_millis(20)),
            ]
        );
    }

    #[test]
    fn timed_batch_source_paces_against_wall_clock() {
        let (mut ctx, rx) = test_ctx(64);
        let mut src = TimedBatchSource::new(vec![
            (Timestamp::from_millis(0), vec![1]),
            (Timestamp::from_millis(40), vec![2]),
        ])
        .paced(1.0);
        let started = std::time::Instant::now();
        src.run(&mut ctx).unwrap();
        assert!(started.elapsed() >= std::time::Duration::from_millis(35));
        drop(ctx);
        assert_eq!(rx.iter().filter(|e| e.is_item()).count(), 2);
    }

    #[test]
    fn stop_flag_halts_source() {
        let (tx, rx) = bounded(1024);
        let stop = Arc::new(AtomicBool::new(true));
        let mut ctx = SourceContext::new(
            vec![tx],
            stop,
            Arc::new(NodeMetrics::new("s")),
            1,
            Duration::ZERO,
        );
        let mut src = IteratorSource::new(0..1_000_000);
        src.run(&mut ctx).unwrap();
        drop(ctx);
        assert_eq!(rx.iter().count(), 0);
    }

    #[test]
    fn batched_context_coalesces_and_flushes_on_watermark() {
        let (mut ctx, rx) = batched_ctx(64, 4);
        for item in 0..10 {
            assert!(ctx.emit(item));
        }
        assert!(ctx.emit_watermark(Timestamp::from_millis(99)));
        ctx.finish();
        let got: Vec<_> = rx.iter().collect();
        // 10 items at max_batch 4: two full batches, then the partial
        // pair flushed by the watermark, then the end marker.
        assert_eq!(
            got,
            vec![
                Element::Batch(Batch::new(vec![0, 1, 2, 3])),
                Element::Batch(Batch::new(vec![4, 5, 6, 7])),
                Element::Batch(Batch::new(vec![8, 9])),
                Element::Watermark(Timestamp::from_millis(99)),
                Element::End,
            ]
        );
    }

    #[test]
    fn finish_flushes_single_item_as_item() {
        let (mut ctx, rx) = batched_ctx(64, 8);
        assert!(ctx.emit(7));
        ctx.finish();
        let got: Vec<_> = rx.iter().collect();
        assert_eq!(got, vec![Element::Item(7), Element::End]);
    }
}
