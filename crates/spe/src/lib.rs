//! `strata-spe` — a Liebre-style, scale-up stream processing engine.
//!
//! This crate implements the stream-processing substrate that the
//! [STRATA](https://doi.org/10.1145/3564695.3564778) framework builds
//! on. It follows the execution model of Liebre, the lightweight SPE
//! used in the paper's prototype: continuous queries are Directed
//! Acyclic Graphs of *operators* connected by bounded in-memory
//! channels, each operator runs on its own thread, and time is *event
//! time* driven by watermarks.
//!
//! # Native operators
//!
//! The engine provides the native operators the paper relies on
//! (§2 of the paper):
//!
//! * **Map / FlatMap / Filter** — stateless, one tuple at a time.
//! * **Aggregate** — stateful, sliding event-time windows of size `WS`
//!   and advance `WA`, with optional group-by. For each group-by value,
//!   windows cover `[ℓ·WA, ℓ·WA + WS)` for `ℓ ∈ ℕ`.
//! * **Join** — stateful, matches pairs `⟨tL, tR⟩` with
//!   `|tL.τ − tR.τ| ≤ WS` that satisfy a user predicate, with optional
//!   group-by.
//! * **Union** — merges homogeneous streams.
//!
//! # Quick example
//!
//! ```
//! use strata_spe::prelude::*;
//!
//! let mut qb = QueryBuilder::new("doubler");
//! let src = qb.source("numbers", IteratorSource::new(0u64..10));
//! let doubled = qb.map("double", &src, |x: u64| x * 2);
//! let out = qb.collect_sink("collect", &doubled);
//! let running = qb.build().expect("valid query").run();
//! running.join().expect("query ran to completion");
//! let collected = out.take();
//! assert_eq!(collected, (0..10).map(|x| x * 2).collect::<Vec<_>>());
//! ```
//!
//! # Threads, backpressure and termination
//!
//! Every node (source, operator, sink) runs on a dedicated thread.
//! Channels are bounded; a fast producer blocks on a full channel,
//! which propagates backpressure to the sources. Termination is
//! cooperative: when a [`source::Source`] finishes (or the
//! query is [stopped](query::RunningQuery::stop)), an *end-of-stream*
//! marker flows through the graph, flushing stateful operators on the
//! way, and every thread exits.

pub mod builder;
pub mod element;
pub mod error;
pub mod metrics;
pub mod operator;
pub mod operators;
pub mod query;
pub mod sink;
pub mod source;
pub mod time;
pub mod window;

mod runtime;

pub use builder::{QueryBuilder, Stream};
pub use element::{Batch, Element};
pub use error::{Error, Result};
pub use metrics::{NodeMetrics, NodeMetricsSnapshot, QueryMetrics, QueryMetricsSnapshot};
pub use query::{Query, RunningQuery};
pub use sink::CollectHandle;
pub use source::{IteratorSource, Source, SourceContext, TimedBatchSource};
pub use time::{Timestamp, Timestamped};
pub use window::WindowSpec;

/// Convenience re-exports for building queries.
pub mod prelude {
    pub use crate::builder::{QueryBuilder, Stream};
    pub use crate::element::{Batch, Element};
    pub use crate::error::{Error, Result};
    pub use crate::operators::aggregate::WindowBounds;
    pub use crate::operators::RoutePolicy;
    pub use crate::query::{Query, RunningQuery};
    pub use crate::sink::CollectHandle;
    pub use crate::source::{IteratorSource, Source, SourceContext, TimedBatchSource};
    pub use crate::time::{Timestamp, Timestamped};
    pub use crate::window::WindowSpec;
}
