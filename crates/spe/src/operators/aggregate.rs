//! The stateful `Aggregate` operator: event-time windows with
//! optional group-by.

use std::collections::BTreeMap;

use crate::operator::UnaryOperator;
use crate::time::{Timestamp, Timestamped};
use crate::window::WindowSpec;

/// Event-time bounds and index of one window instance handed to the
/// window function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowBounds {
    /// The window index `ℓ` (windows cover `[ℓ·WA, ℓ·WA + WS)`).
    pub index: u64,
    /// Inclusive event-time start of the window.
    pub start: Timestamp,
    /// Exclusive event-time end of the window.
    pub end: Timestamp,
}

/// `Aggregate` maintains, per group-by key, a window of size `WS` and
/// advance `WA` over the most recent tuples and applies a window
/// function when event time (the watermark) passes the window's end
/// (§2 of the STRATA paper).
///
/// The window function receives the key, the window bounds and the
/// buffered tuples **in arrival order**, and returns any number of
/// outputs. Windows close in increasing `(index, key)` order, which
/// makes output order deterministic for a given input order.
///
/// Tuples arriving *after* their window has already been closed by a
/// watermark are late; they are dropped and counted in
/// [`late_items`](Aggregate::late_items).
pub struct Aggregate<I, K, O, KF, WF> {
    spec: WindowSpec,
    key_fn: KF,
    window_fn: WF,
    /// window index → key → buffered tuples (arrival order).
    #[allow(clippy::type_complexity)]
    state: BTreeMap<u64, BTreeMap<K, Vec<I>>>,
    /// All windows with index < `closed_below` have been emitted.
    closed_below: u64,
    late_items: u64,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<I, K, O, KF, WF> std::fmt::Debug for Aggregate<I, K, O, KF, WF> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aggregate")
            .field("spec", &self.spec)
            .field("open_windows", &self.state.len())
            .field("closed_below", &self.closed_below)
            .field("late_items", &self.late_items)
            .finish()
    }
}

impl<I, K, O, KF, WF> Aggregate<I, K, O, KF, WF>
where
    I: Timestamped + Clone,
    K: Ord + Clone,
    KF: FnMut(&I) -> K + Send,
    WF: FnMut(&K, WindowBounds, &[I]) -> Vec<O> + Send,
{
    /// Creates an aggregate with the given window specification,
    /// group-by key extractor and window function.
    pub fn new(spec: WindowSpec, key_fn: KF, window_fn: WF) -> Self {
        Aggregate {
            spec,
            key_fn,
            window_fn,
            state: BTreeMap::new(),
            closed_below: 0,
            late_items: 0,
            _out: std::marker::PhantomData,
        }
    }

    /// Number of tuples dropped (fully or partially) because they
    /// arrived after one of their windows had closed.
    pub fn late_items(&self) -> u64 {
        self.late_items
    }

    /// Number of window instances currently buffering tuples.
    pub fn open_windows(&self) -> usize {
        self.state.len()
    }

    fn close_up_to(&mut self, limit: Timestamp, out: &mut Vec<O>) {
        // Even windows that buffered nothing count as closed once the
        // watermark passes their end: a later tuple for them is late.
        let limit_millis = limit.as_millis();
        if limit_millis == u64::MAX {
            self.closed_below = u64::MAX;
        } else if limit_millis >= self.spec.size_millis() {
            let last_closed = (limit_millis - self.spec.size_millis()) / self.spec.advance_millis();
            self.closed_below = self.closed_below.max(last_closed + 1);
        }
        // Close every window whose end is at or before `limit`,
        // in increasing window order, then in key order.
        while let Some((&index, _)) = self.state.iter().next() {
            let (start, end) = self.spec.window_bounds(index);
            if end > limit {
                break;
            }
            let keys = self.state.remove(&index).expect("peeked entry exists");
            let bounds = WindowBounds { index, start, end };
            for (key, items) in keys {
                out.extend((self.window_fn)(&key, bounds, &items));
            }
            self.closed_below = self.closed_below.max(index + 1);
        }
    }
}

impl<I, K, O, KF, WF> UnaryOperator<I, O> for Aggregate<I, K, O, KF, WF>
where
    I: Timestamped + Clone + Send,
    K: Ord + Clone + Send,
    O: Send,
    KF: FnMut(&I) -> K + Send,
    WF: FnMut(&K, WindowBounds, &[I]) -> Vec<O> + Send,
{
    fn on_item(&mut self, item: I, _out: &mut Vec<O>) {
        let ts = item.timestamp();
        let key = (self.key_fn)(&item);
        let first = self.spec.first_window_index(ts);
        let last = self.spec.last_window_index(ts);
        if last < self.closed_below {
            self.late_items += 1;
            return;
        }
        let live_first = first.max(self.closed_below);
        if live_first > first {
            self.late_items += 1; // Partially late: some windows already closed.
        }
        for index in live_first..=last {
            self.state
                .entry(index)
                .or_default()
                .entry(key.clone())
                .or_default()
                .push(item.clone());
        }
    }

    fn on_watermark(&mut self, watermark: Timestamp, out: &mut Vec<O>) {
        self.close_up_to(watermark, out);
    }

    fn on_end(&mut self, out: &mut Vec<O>) {
        self.close_up_to(Timestamp::MAX, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Reading {
        ts: u64,
        sensor: u8,
        value: f64,
    }

    impl Timestamped for Reading {
        fn timestamp(&self) -> Timestamp {
            Timestamp::from_millis(self.ts)
        }
    }

    fn reading(ts: u64, sensor: u8, value: f64) -> Reading {
        Reading { ts, sensor, value }
    }

    type SumOut = (u8, u64, f64);

    #[allow(clippy::type_complexity)]
    fn sum_agg(
        spec: WindowSpec,
    ) -> Aggregate<
        Reading,
        u8,
        SumOut,
        impl FnMut(&Reading) -> u8 + Send,
        impl FnMut(&u8, WindowBounds, &[Reading]) -> Vec<SumOut> + Send,
    > {
        Aggregate::new(
            spec,
            |r: &Reading| r.sensor,
            |k: &u8, b: WindowBounds, items: &[Reading]| {
                vec![(*k, b.index, items.iter().map(|r| r.value).sum())]
            },
        )
    }

    #[test]
    fn tumbling_windows_close_on_watermark() {
        let mut agg = sum_agg(WindowSpec::tumbling(100).unwrap());
        let mut out = Vec::new();
        agg.on_item(reading(10, 1, 1.0), &mut out);
        agg.on_item(reading(20, 1, 2.0), &mut out);
        agg.on_item(reading(110, 1, 5.0), &mut out);
        assert!(out.is_empty(), "nothing closes before a watermark");
        agg.on_watermark(Timestamp::from_millis(100), &mut out);
        assert_eq!(out, vec![(1, 0, 3.0)]);
        out.clear();
        agg.on_end(&mut out);
        assert_eq!(out, vec![(1, 1, 5.0)]);
    }

    #[test]
    fn group_by_separates_keys() {
        let mut agg = sum_agg(WindowSpec::tumbling(100).unwrap());
        let mut out = Vec::new();
        agg.on_item(reading(5, 2, 1.0), &mut out);
        agg.on_item(reading(6, 1, 10.0), &mut out);
        agg.on_item(reading(7, 2, 2.0), &mut out);
        agg.on_end(&mut out);
        // Keys close in key order within a window.
        assert_eq!(out, vec![(1, 0, 10.0), (2, 0, 3.0)]);
    }

    #[test]
    fn sliding_windows_share_tuples() {
        // WS=100, WA=50: t=60 belongs to windows 0 and 1.
        let mut agg = sum_agg(WindowSpec::sliding(100, 50).unwrap());
        let mut out = Vec::new();
        agg.on_item(reading(60, 1, 4.0), &mut out);
        agg.on_end(&mut out);
        assert_eq!(out, vec![(1, 0, 4.0), (1, 1, 4.0)]);
    }

    #[test]
    fn late_items_are_dropped_and_counted() {
        let mut agg = sum_agg(WindowSpec::tumbling(100).unwrap());
        let mut out = Vec::new();
        agg.on_watermark(Timestamp::from_millis(200), &mut out);
        agg.on_item(reading(50, 1, 1.0), &mut out); // window 0 closed long ago
        assert_eq!(agg.late_items(), 1);
        agg.on_end(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn watermark_is_exclusive_of_open_windows() {
        let mut agg = sum_agg(WindowSpec::tumbling(100).unwrap());
        let mut out = Vec::new();
        agg.on_item(reading(10, 1, 1.0), &mut out);
        // Watermark 99 < window end 100: window must stay open.
        agg.on_watermark(Timestamp::from_millis(99), &mut out);
        assert!(out.is_empty());
        assert_eq!(agg.open_windows(), 1);
        agg.on_watermark(Timestamp::from_millis(100), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(agg.open_windows(), 0);
    }

    #[test]
    fn outputs_preserve_arrival_order_within_window() {
        let spec = WindowSpec::tumbling(1_000).unwrap();
        let mut agg = Aggregate::new(
            spec,
            |_: &Reading| 0u8,
            |_k: &u8, _b: WindowBounds, items: &[Reading]| {
                vec![items.iter().map(|r| r.value as i64).collect::<Vec<_>>()]
            },
        );
        let mut out = Vec::new();
        // Out-of-timestamp-order arrival is preserved as arrival order.
        agg.on_item(reading(30, 0, 3.0), &mut out);
        agg.on_item(reading(10, 0, 1.0), &mut out);
        agg.on_end(&mut out);
        assert_eq!(out, vec![vec![3, 1]]);
    }
}
