//! The stateful `Join` operator: event-time band join with optional
//! group-by.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::operator::BinaryOperator;
use crate::time::{Timestamp, Timestamped};

/// Joins a left stream `L` and a right stream `R`, producing an
/// output for every pair `⟨tL, tR⟩` such that
/// `|tL.τ − tR.τ| ≤ WS` and the join function returns `Some` (§2 of
/// the STRATA paper). When a group-by key is used, only pairs sharing
/// the same key are considered.
///
/// `WS == 0` joins exactly the tuples carrying the same timestamp,
/// which is how STRATA's `fuse` behaves when no window is specified.
///
/// State is bounded by watermarks: a buffered tuple is evicted once
/// the combined watermark passes `τ + WS`, because no future tuple of
/// the other stream can still match it.
pub struct Join<L, R, K, O, KL, KR, JF> {
    ws: u64,
    key_left: KL,
    key_right: KR,
    join_fn: JF,
    left: HashMap<K, VecDeque<L>>,
    right: HashMap<K, VecDeque<R>>,
    buffered: usize,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<L, R, K, O, KL, KR, JF> std::fmt::Debug for Join<L, R, K, O, KL, KR, JF> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Join")
            .field("ws", &self.ws)
            .field("buffered", &self.buffered)
            .finish()
    }
}

impl<L, R, K, O, KL, KR, JF> Join<L, R, K, O, KL, KR, JF>
where
    L: Timestamped,
    R: Timestamped,
    K: Hash + Eq + Clone,
    KL: FnMut(&L) -> K + Send,
    KR: FnMut(&R) -> K + Send,
    JF: FnMut(&L, &R) -> Option<O> + Send,
{
    /// Creates a join with band width `ws_millis` (`WS`), group-by key
    /// extractors for both sides and the pair-combining function.
    pub fn new(ws_millis: u64, key_left: KL, key_right: KR, join_fn: JF) -> Self {
        Join {
            ws: ws_millis,
            key_left,
            key_right,
            join_fn,
            left: HashMap::new(),
            right: HashMap::new(),
            buffered: 0,
            _out: std::marker::PhantomData,
        }
    }

    /// Number of tuples currently buffered on both sides.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    fn evict(&mut self, watermark: Timestamp) {
        // A tuple with timestamp τ can still match future tuples with
        // timestamps ≥ watermark only if τ + WS ≥ watermark.
        let keep_from = watermark.saturating_sub(self.ws);
        let mut evicted = 0usize;
        self.left.retain(|_, buf| {
            let before = buf.len();
            buf.retain(|t| t.timestamp() >= keep_from);
            evicted += before - buf.len();
            !buf.is_empty()
        });
        self.right.retain(|_, buf| {
            let before = buf.len();
            buf.retain(|t| t.timestamp() >= keep_from);
            evicted += before - buf.len();
            !buf.is_empty()
        });
        self.buffered -= evicted;
    }
}

impl<L, R, K, O, KL, KR, JF> BinaryOperator<L, R, O> for Join<L, R, K, O, KL, KR, JF>
where
    L: Timestamped + Send,
    R: Timestamped + Send,
    K: Hash + Eq + Clone + Send,
    O: Send,
    KL: FnMut(&L) -> K + Send,
    KR: FnMut(&R) -> K + Send,
    JF: FnMut(&L, &R) -> Option<O> + Send,
{
    fn on_left(&mut self, item: L, out: &mut Vec<O>) {
        let key = (self.key_left)(&item);
        if let Some(candidates) = self.right.get(&key) {
            for r in candidates {
                if item.timestamp().abs_diff(r.timestamp()) <= self.ws {
                    if let Some(o) = (self.join_fn)(&item, r) {
                        out.push(o);
                    }
                }
            }
        }
        self.left.entry(key).or_default().push_back(item);
        self.buffered += 1;
    }

    fn on_right(&mut self, item: R, out: &mut Vec<O>) {
        let key = (self.key_right)(&item);
        if let Some(candidates) = self.left.get(&key) {
            for l in candidates {
                if l.timestamp().abs_diff(item.timestamp()) <= self.ws {
                    if let Some(o) = (self.join_fn)(l, &item) {
                        out.push(o);
                    }
                }
            }
        }
        self.right.entry(key).or_default().push_back(item);
        self.buffered += 1;
    }

    fn on_watermark(&mut self, watermark: Timestamp, _out: &mut Vec<O>) {
        self.evict(watermark);
    }

    fn on_end(&mut self, _out: &mut Vec<O>) {
        self.left.clear();
        self.right.clear();
        self.buffered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Tup {
        ts: u64,
        key: u32,
        val: &'static str,
    }

    impl Timestamped for Tup {
        fn timestamp(&self) -> Timestamp {
            Timestamp::from_millis(self.ts)
        }
    }

    fn tup(ts: u64, key: u32, val: &'static str) -> Tup {
        Tup { ts, key, val }
    }

    type PairJoin = Join<
        Tup,
        Tup,
        u32,
        (&'static str, &'static str),
        fn(&Tup) -> u32,
        fn(&Tup) -> u32,
        fn(&Tup, &Tup) -> Option<(&'static str, &'static str)>,
    >;

    fn pair_join(ws: u64) -> PairJoin {
        Join::new(
            ws,
            |t: &Tup| t.key,
            |t: &Tup| t.key,
            |l: &Tup, r: &Tup| Some((l.val, r.val)),
        )
    }

    #[test]
    fn joins_within_band_and_key() {
        let mut j = pair_join(10);
        let mut out = Vec::new();
        j.on_left(tup(100, 1, "l1"), &mut out);
        j.on_right(tup(105, 1, "r1"), &mut out); // in band, same key
        j.on_right(tup(150, 1, "r2"), &mut out); // out of band
        j.on_right(tup(105, 2, "r3"), &mut out); // different key
        assert_eq!(out, vec![("l1", "r1")]);
    }

    #[test]
    fn zero_band_matches_equal_timestamps_only() {
        let mut j = pair_join(0);
        let mut out = Vec::new();
        j.on_left(tup(100, 1, "l"), &mut out);
        j.on_right(tup(100, 1, "r="), &mut out);
        j.on_right(tup(101, 1, "r+"), &mut out);
        assert_eq!(out, vec![("l", "r=")]);
    }

    #[test]
    fn both_arrival_orders_match() {
        let mut j = pair_join(5);
        let mut out = Vec::new();
        j.on_right(tup(10, 7, "r"), &mut out);
        j.on_left(tup(12, 7, "l"), &mut out);
        assert_eq!(out, vec![("l", "r")]);
    }

    #[test]
    fn predicate_can_reject_pairs() {
        let mut j: Join<Tup, Tup, u32, (), _, _, _> = Join::new(
            100,
            |t: &Tup| t.key,
            |t: &Tup| t.key,
            |_l: &Tup, _r: &Tup| None,
        );
        let mut out = Vec::new();
        j.on_left(tup(1, 1, "l"), &mut out);
        j.on_right(tup(1, 1, "r"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn watermark_bounds_state() {
        let mut j = pair_join(10);
        let mut out = Vec::new();
        j.on_left(tup(100, 1, "old"), &mut out);
        j.on_left(tup(200, 1, "new"), &mut out);
        assert_eq!(j.buffered(), 2);
        // Watermark 150: tuples with τ + 10 < 150 can never match again.
        j.on_watermark(Timestamp::from_millis(150), &mut out);
        assert_eq!(j.buffered(), 1);
        // A right tuple at 111 would have matched "old" (|100-111|>10 →
        // no), at 105 it would — but 105 is below the watermark anyway,
        // so dropping "old" was safe.
        j.on_right(tup(205, 1, "r"), &mut out);
        assert_eq!(out, vec![("new", "r")]);
        j.on_end(&mut out);
        assert_eq!(j.buffered(), 0);
    }

    #[test]
    fn eviction_keeps_still_matchable_tuples() {
        let mut j = pair_join(50);
        let mut out = Vec::new();
        j.on_left(tup(100, 1, "l"), &mut out);
        j.on_watermark(Timestamp::from_millis(120), &mut out);
        // τ=100 with WS=50 can still match right tuples up to τ=150,
        // and watermark 120 < 150, so "l" must survive.
        j.on_right(tup(130, 1, "r"), &mut out);
        assert_eq!(out, vec![("l", "r")]);
    }
}
