//! The stateless `Map` operator: one output per input.

use crate::operator::UnaryOperator;

/// Applies a function to every input tuple, producing exactly one
/// output tuple per input.
///
/// This is the engine primitive behind
/// [`QueryBuilder::map`](crate::builder::QueryBuilder::map).
#[derive(Debug, Clone)]
pub struct Map<F> {
    f: F,
}

impl<F> Map<F> {
    /// Wraps the mapping function `f`.
    pub fn new(f: F) -> Self {
        Map { f }
    }
}

impl<I, O, F> UnaryOperator<I, O> for Map<F>
where
    F: FnMut(I) -> O + Send,
{
    fn on_item(&mut self, item: I, out: &mut Vec<O>) {
        out.push((self.f)(item));
    }

    /// Batch fast path: one reservation, one tight loop — no per-item
    /// dispatch through the trait object.
    fn on_batch(&mut self, items: Vec<I>, out: &mut Vec<O>) {
        out.reserve(items.len());
        for item in items {
            out.push((self.f)(item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_one_to_one() {
        let mut op = Map::new(|x: i32| x * 3);
        let mut out = Vec::new();
        op.on_item(2, &mut out);
        op.on_item(5, &mut out);
        assert_eq!(out, vec![6, 15]);
    }

    #[test]
    fn can_change_type() {
        let mut op = Map::new(|x: i32| x.to_string());
        let mut out = Vec::new();
        op.on_item(7, &mut out);
        assert_eq!(out, vec!["7".to_string()]);
    }
}
