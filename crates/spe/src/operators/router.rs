//! Routing policies for building parallel operator instances.
//!
//! STRATA exploits the disjointness of specimen/portion analysis to
//! run event detection in parallel (§4 of the paper). The engine
//! supports this with *router* nodes: a router forwards each item to
//! exactly one of its output ports (watermarks and end-of-stream go
//! to every port), and a downstream merge node re-unifies the
//! parallel outputs while tracking per-input watermarks.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Decides which output port an item is routed to.
pub enum RoutePolicy<T> {
    /// Cycle through the ports: item `k` goes to port `k mod n`.
    /// Only safe for stateless downstream operators.
    RoundRobin,
    /// Route by a key extracted from the item, so that all items with
    /// the same key share a port — required for keyed stateful
    /// downstream operators.
    ByKey(Box<dyn FnMut(&T) -> u64 + Send>),
}

impl<T> std::fmt::Debug for RoutePolicy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutePolicy::RoundRobin => f.write_str("RoutePolicy::RoundRobin"),
            RoutePolicy::ByKey(_) => f.write_str("RoutePolicy::ByKey(_)"),
        }
    }
}

impl<T> RoutePolicy<T> {
    /// Builds a [`RoutePolicy::ByKey`] from a hashable key extractor.
    ///
    /// ```
    /// use strata_spe::operators::RoutePolicy;
    /// let policy = RoutePolicy::by_key(|s: &String| s.len());
    /// ```
    pub fn by_key<K: Hash>(mut key_fn: impl FnMut(&T) -> K + Send + 'static) -> Self {
        RoutePolicy::ByKey(Box::new(move |item| {
            let mut hasher = DefaultHasher::new();
            key_fn(item).hash(&mut hasher);
            hasher.finish()
        }))
    }
}

/// Runtime state of a router node: applies the policy to pick ports.
#[derive(Debug)]
pub(crate) struct Router<T> {
    policy: RoutePolicy<T>,
    ports: usize,
    next: usize,
}

impl<T> Router<T> {
    pub(crate) fn new(policy: RoutePolicy<T>, ports: usize) -> Self {
        debug_assert!(ports > 0);
        Router {
            policy,
            ports,
            next: 0,
        }
    }

    /// The output port for `item`.
    pub(crate) fn route(&mut self, item: &T) -> usize {
        match &mut self.policy {
            RoutePolicy::RoundRobin => {
                let port = self.next;
                self.next = (self.next + 1) % self.ports;
                port
            }
            RoutePolicy::ByKey(f) => (f(item) % self.ports as u64) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut r: Router<u32> = Router::new(RoutePolicy::RoundRobin, 3);
        let ports: Vec<usize> = (0..6).map(|x| r.route(&x)).collect();
        assert_eq!(ports, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn by_key_is_stable_per_key() {
        let mut r: Router<u32> = Router::new(RoutePolicy::by_key(|x: &u32| *x), 4);
        let a1 = r.route(&42);
        let b = r.route(&7);
        let a2 = r.route(&42);
        assert_eq!(a1, a2);
        assert!(a1 < 4 && b < 4);
    }

    #[test]
    fn by_key_spreads_distinct_keys() {
        let mut r: Router<u64> = Router::new(RoutePolicy::by_key(|x: &u64| *x), 8);
        let mut used = std::collections::HashSet::new();
        for k in 0..1_000u64 {
            used.insert(r.route(&k));
        }
        assert!(used.len() >= 7, "hash routing should use most ports");
    }
}
