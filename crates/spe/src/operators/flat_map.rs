//! The stateless `FlatMap` operator: zero or more outputs per input.

use crate::operator::UnaryOperator;

/// Produces an arbitrary number of output tuples per input tuple —
/// the general form of the paper's `Map` (§2: "produces an arbitrary
/// number of output tuples for each input tuple").
///
/// STRATA's `partition` and `detectEvent` methods compile to this
/// operator. It is the engine primitive behind
/// [`QueryBuilder::flat_map`](crate::builder::QueryBuilder::flat_map).
#[derive(Debug, Clone)]
pub struct FlatMap<F> {
    f: F,
}

impl<F> FlatMap<F> {
    /// Wraps the expansion function `f`.
    pub fn new(f: F) -> Self {
        FlatMap { f }
    }
}

impl<I, O, II, F> UnaryOperator<I, O> for FlatMap<F>
where
    F: FnMut(I) -> II + Send,
    II: IntoIterator<Item = O>,
{
    fn on_item(&mut self, item: I, out: &mut Vec<O>) {
        out.extend((self.f)(item));
    }

    /// Batch fast path: a single loop of extends, no per-item
    /// dispatch.
    fn on_batch(&mut self, items: Vec<I>, out: &mut Vec<O>) {
        for item in items {
            out.extend((self.f)(item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_each_input() {
        let mut op = FlatMap::new(|x: i32| vec![x, x + 1]);
        let mut out = Vec::new();
        op.on_item(10, &mut out);
        assert_eq!(out, vec![10, 11]);
    }

    #[test]
    fn can_drop_inputs() {
        let mut op = FlatMap::new(|x: i32| if x > 0 { vec![x] } else { vec![] });
        let mut out = Vec::new();
        op.on_item(-1, &mut out);
        op.on_item(3, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn accepts_any_intoiterator() {
        let mut op = FlatMap::new(|x: i32| Some(x * 2));
        let mut out = Vec::new();
        op.on_item(4, &mut out);
        assert_eq!(out, vec![8]);
    }
}
