//! The stateless `Filter` operator: forward or discard.

use crate::operator::UnaryOperator;

/// Forwards a tuple when the predicate holds and discards it
/// otherwise (§2 of the STRATA paper).
///
/// This is the engine primitive behind
/// [`QueryBuilder::filter`](crate::builder::QueryBuilder::filter).
#[derive(Debug, Clone)]
pub struct Filter<P> {
    predicate: P,
}

impl<P> Filter<P> {
    /// Wraps the predicate `predicate`.
    pub fn new(predicate: P) -> Self {
        Filter { predicate }
    }
}

impl<T, P> UnaryOperator<T, T> for Filter<P>
where
    P: FnMut(&T) -> bool + Send,
{
    fn on_item(&mut self, item: T, out: &mut Vec<T>) {
        if (self.predicate)(&item) {
            out.push(item);
        }
    }

    /// Batch fast path: when the output is empty the input vector is
    /// filtered in place and handed over without copying survivors.
    fn on_batch(&mut self, mut items: Vec<T>, out: &mut Vec<T>) {
        items.retain(|item| (self.predicate)(item));
        if out.is_empty() {
            *out = items;
        } else {
            out.append(&mut items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_matching_items_only() {
        let mut op = Filter::new(|x: &i32| *x % 2 == 0);
        let mut out = Vec::new();
        for x in 0..6 {
            op.on_item(x, &mut out);
        }
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn stateful_predicates_are_allowed() {
        let mut seen = 0;
        let mut op = Filter::new(move |_: &i32| {
            seen += 1;
            seen <= 2
        });
        let mut out = Vec::new();
        for x in 10..15 {
            op.on_item(x, &mut out);
        }
        assert_eq!(out, vec![10, 11]);
    }
}
