//! The engine's native operators (§2 of the STRATA paper).
//!
//! STRATA's API methods are implemented as *compositions* of these
//! operators, which is what gives the framework its portability and
//! its access to parallel execution ([paper §4, Implementation]).
//!
//! * Stateless: [`map`], [`filter`], [`flat_map`], [`identity`].
//! * Stateful: [`aggregate`] (event-time windows), [`join`]
//!   (band join on event time with optional group-by).
//! * Routing: [`router`] (hash/round-robin partitioning used to build
//!   parallel operator instances).

pub mod aggregate;
pub mod filter;
pub mod flat_map;
pub mod identity;
pub mod join;
pub mod map;
pub mod router;

pub use aggregate::Aggregate;
pub use filter::Filter;
pub use flat_map::FlatMap;
pub use identity::Identity;
pub use join::Join;
pub use map::Map;
pub use router::RoutePolicy;
