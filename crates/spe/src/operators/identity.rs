//! The `Identity` operator, used for stream merging (`Union`).

use crate::operator::UnaryOperator;

/// Forwards every input unchanged.
///
/// A `Union` node is an `Identity` operator with several input
/// channels: the engine's multi-input worker already merges items and
/// tracks the minimum watermark across inputs, so merging requires no
/// operator logic at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Identity {
    /// Creates the identity operator.
    pub fn new() -> Self {
        Identity
    }
}

impl<T: Send> UnaryOperator<T, T> for Identity {
    fn on_item(&mut self, item: T, out: &mut Vec<T>) {
        out.push(item);
    }

    /// Batch fast path: the whole input vector is forwarded by move —
    /// a union under batching costs one pointer swap per wakeup.
    fn on_batch(&mut self, mut items: Vec<T>, out: &mut Vec<T>) {
        if out.is_empty() {
            *out = items;
        } else {
            out.append(&mut items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_unchanged() {
        let mut out = Vec::new();
        Identity::new().on_item("x", &mut out);
        assert_eq!(out, vec!["x"]);
    }
}
