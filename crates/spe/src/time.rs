//! Event time: timestamps and the [`Timestamped`] trait.
//!
//! The engine is driven by *event time*: every tuple carries a
//! timestamp `τ` assigned by the source that created it, and windowed
//! operators reason about `τ`, not about the wall clock. Progress of
//! event time is communicated by watermarks (see
//! [`Element::Watermark`](crate::element::Element::Watermark)).

use std::fmt;
use std::ops::{Add, Sub};

/// An event-time instant, in milliseconds since an arbitrary epoch
/// chosen by the data source.
///
/// `Timestamp` is a transparent newtype over `u64` ([C-NEWTYPE]) so
/// that event time cannot be accidentally mixed with other integer
/// quantities such as layer indexes or wall-clock nanoseconds.
///
/// ```
/// use strata_spe::Timestamp;
/// let t = Timestamp::from_millis(1_500);
/// assert_eq!(t.as_millis(), 1_500);
/// assert_eq!(t + 500, Timestamp::from_millis(2_000));
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(0);
    /// The largest representable timestamp; used internally to mean
    /// "event time has ended" on a closed input.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from milliseconds since the stream epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis)
    }

    /// Returns the timestamp as milliseconds since the stream epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Absolute difference between two timestamps, in milliseconds.
    ///
    /// ```
    /// use strata_spe::Timestamp;
    /// let a = Timestamp::from_millis(10);
    /// let b = Timestamp::from_millis(4);
    /// assert_eq!(a.abs_diff(b), 6);
    /// assert_eq!(b.abs_diff(a), 6);
    /// ```
    pub const fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Saturating subtraction of a duration in milliseconds.
    pub const fn saturating_sub(self, millis: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(millis))
    }

    /// Saturating addition of a duration in milliseconds.
    pub const fn saturating_add(self, millis: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(millis))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(millis: u64) -> Self {
        Timestamp(millis)
    }
}

impl From<Timestamp> for u64 {
    fn from(t: Timestamp) -> Self {
        t.0
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<u64> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 - rhs)
    }
}

/// Types that carry an event-time timestamp `τ`.
///
/// Windowed operators ([`aggregate`](crate::builder::QueryBuilder::aggregate),
/// [`join`](crate::builder::QueryBuilder::join)) require their inputs
/// to implement this trait.
pub trait Timestamped {
    /// The event time at which this value was created by its source.
    fn timestamp(&self) -> Timestamp;
}

impl Timestamped for Timestamp {
    fn timestamp(&self) -> Timestamp {
        *self
    }
}

impl<T: Timestamped> Timestamped for &T {
    fn timestamp(&self) -> Timestamp {
        (**self).timestamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        let t = Timestamp::from_millis(42);
        assert_eq!(t.as_millis(), 42);
        assert_eq!(u64::from(t), 42);
        assert_eq!(Timestamp::from(42u64), t);
    }

    #[test]
    fn ordering_follows_millis() {
        assert!(Timestamp::from_millis(1) < Timestamp::from_millis(2));
        assert_eq!(Timestamp::MIN, Timestamp::from_millis(0));
        assert!(Timestamp::MAX > Timestamp::from_millis(u64::MAX - 1));
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_millis(100);
        assert_eq!((t + 50).as_millis(), 150);
        assert_eq!((t - 50).as_millis(), 50);
        assert_eq!(t.saturating_sub(200), Timestamp::MIN);
        assert_eq!(Timestamp::MAX.saturating_add(1), Timestamp::MAX);
    }

    #[test]
    fn display_mentions_unit() {
        assert_eq!(Timestamp::from_millis(7).to_string(), "7ms");
    }

    #[test]
    fn references_are_timestamped() {
        let t = Timestamp::from_millis(3);
        let r = &t;
        assert_eq!(Timestamped::timestamp(&r), t);
    }
}
