//! Event-time window specifications.

use crate::error::{Error, Result};
use crate::time::Timestamp;

/// Specification of a sliding event-time window with size `WS` and
/// advance `WA`, both in milliseconds, as defined in §2 of the STRATA
/// paper: for each group-by value, windows cover the periods
/// `[ℓ·WA, ℓ·WA + WS)` with `ℓ ∈ ℕ`.
///
/// A *tumbling* window is the special case `WA == WS`.
///
/// ```
/// use strata_spe::WindowSpec;
/// let w = WindowSpec::sliding(1_000, 250)?;
/// assert_eq!(w.size_millis(), 1_000);
/// assert_eq!(w.advance_millis(), 250);
/// let t = WindowSpec::tumbling(500)?;
/// assert_eq!(t.advance_millis(), t.size_millis());
/// # Ok::<(), strata_spe::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    size: u64,
    advance: u64,
}

impl WindowSpec {
    /// Creates a sliding window with the given size and advance, in
    /// milliseconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either parameter is zero or
    /// if the advance exceeds the size (which would drop tuples
    /// falling between consecutive windows).
    pub fn sliding(size_millis: u64, advance_millis: u64) -> Result<Self> {
        if size_millis == 0 {
            return Err(Error::InvalidConfig("window size must be > 0".into()));
        }
        if advance_millis == 0 {
            return Err(Error::InvalidConfig("window advance must be > 0".into()));
        }
        if advance_millis > size_millis {
            return Err(Error::InvalidConfig(format!(
                "window advance ({advance_millis}ms) must not exceed size ({size_millis}ms)"
            )));
        }
        Ok(WindowSpec {
            size: size_millis,
            advance: advance_millis,
        })
    }

    /// Creates a tumbling window (`advance == size`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `size_millis` is zero.
    pub fn tumbling(size_millis: u64) -> Result<Self> {
        WindowSpec::sliding(size_millis, size_millis)
    }

    /// Window size `WS` in milliseconds.
    pub const fn size_millis(&self) -> u64 {
        self.size
    }

    /// Window advance `WA` in milliseconds.
    pub const fn advance_millis(&self) -> u64 {
        self.advance
    }

    /// Index `ℓ` of the first window containing `t`, i.e. the smallest
    /// `ℓ` such that `t < ℓ·WA + WS` — clamped to zero.
    pub fn first_window_index(&self, t: Timestamp) -> u64 {
        let t = t.as_millis();
        if t < self.size {
            0
        } else {
            // First ℓ with ℓ·WA + WS > t  ⇔  ℓ > (t − WS) / WA.
            (t - self.size) / self.advance + 1
        }
    }

    /// Index of the last window containing `t`: the largest `ℓ` with
    /// `ℓ·WA ≤ t`.
    pub fn last_window_index(&self, t: Timestamp) -> u64 {
        t.as_millis() / self.advance
    }

    /// The half-open event-time bounds `[start, end)` of window `ℓ`.
    pub fn window_bounds(&self, index: u64) -> (Timestamp, Timestamp) {
        let start = index.saturating_mul(self.advance);
        (
            Timestamp::from_millis(start),
            Timestamp::from_millis(start.saturating_add(self.size)),
        )
    }

    /// All window indexes containing `t`, in increasing order.
    pub fn window_indexes(&self, t: Timestamp) -> impl Iterator<Item = u64> {
        self.first_window_index(t)..=self.last_window_index(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_windows() {
        assert!(WindowSpec::sliding(0, 1).is_err());
        assert!(WindowSpec::sliding(1, 0).is_err());
        assert!(WindowSpec::sliding(10, 20).is_err());
        assert!(WindowSpec::tumbling(0).is_err());
    }

    #[test]
    fn tumbling_assigns_each_tuple_to_one_window() {
        let w = WindowSpec::tumbling(100).unwrap();
        for (t, expected) in [(0, 0), (99, 0), (100, 1), (250, 2)] {
            let idx: Vec<u64> = w.window_indexes(Timestamp::from_millis(t)).collect();
            assert_eq!(idx, vec![expected], "t={t}");
        }
    }

    #[test]
    fn sliding_assigns_to_overlapping_windows() {
        // WS=100, WA=25 → each tuple is in 4 windows (once past startup).
        let w = WindowSpec::sliding(100, 25).unwrap();
        let idx: Vec<u64> = w.window_indexes(Timestamp::from_millis(100)).collect();
        assert_eq!(idx, vec![1, 2, 3, 4]);
        // Startup: t=10 is only in window 0.
        let idx: Vec<u64> = w.window_indexes(Timestamp::from_millis(10)).collect();
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn bounds_cover_their_tuples() {
        let w = WindowSpec::sliding(100, 40).unwrap();
        for t in [0u64, 39, 40, 99, 100, 1234] {
            let ts = Timestamp::from_millis(t);
            for idx in w.window_indexes(ts) {
                let (start, end) = w.window_bounds(idx);
                assert!(start <= ts && ts < end, "t={t} idx={idx}");
            }
        }
    }

    #[test]
    fn window_membership_is_exact() {
        // A window index not in window_indexes(t) must not cover t.
        let w = WindowSpec::sliding(60, 20).unwrap();
        let ts = Timestamp::from_millis(200);
        let member: Vec<u64> = w.window_indexes(ts).collect();
        for idx in 0..20 {
            let (start, end) = w.window_bounds(idx);
            let covers = start <= ts && ts < end;
            assert_eq!(covers, member.contains(&idx), "idx={idx}");
        }
    }
}
