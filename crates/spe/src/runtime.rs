//! Worker loops: one thread per node, watermark merging across
//! inputs, broadcast fan-out, cooperative termination.
//!
//! # Micro-batched data plane
//!
//! Channels carry [`Element::Batch`] alongside single items: each
//! worker wakeup drains up to `max_batch` buffered data elements from
//! the channel that woke it, invokes the operator once over the whole
//! batch, and forwards the outputs as shared batches. Watermarks and
//! end-of-stream are always batch boundaries — a control marker found
//! mid-drain is set aside (`pending`) and processed on the next loop
//! iteration, after the data before it. With `max_batch == 1` the
//! loops take the exact item-at-a-time paths of the pre-batching
//! engine, which the `batch_equivalence` suite pins bit for bit.
//!
//! Broadcast fan-out never clones for the sole (or last) consumer:
//! the original element is moved into the final send, and batches are
//! reference-counted so the extra N−1 sends bump an `Arc` instead of
//! copying items.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Select, Sender};
use parking_lot::Mutex;

use crate::element::{Batch, Element};
use crate::error::Error;
use crate::metrics::NodeMetrics;
use crate::operator::{BinaryOperator, UnaryOperator};
use crate::operators::router::Router;
use crate::source::{Source, SourceContext};
use crate::time::Timestamp;

/// Output ports of a node: `ports[p]` is the list of downstream
/// channels attached to port `p`. Ordinary nodes have one port and
/// broadcast to every channel on it; router nodes send each item to
/// exactly one port.
pub(crate) type Ports<T> = Vec<Vec<Sender<Element<T>>>>;

/// Sends `element` to every channel of every port: a clone to the
/// first N−1 channels, the original — by move — into the last. The
/// sole consumer of a stream therefore never pays for a clone.
/// Returns `true` while at least one receiver is still connected.
fn broadcast_all<T: Clone>(ports: &Ports<T>, element: Element<T>) -> bool {
    let total: usize = ports.iter().map(|p| p.len()).sum();
    if total == 0 {
        return false;
    }
    let mut alive = false;
    let mut element = Some(element);
    let mut sent = 0usize;
    for tx in ports.iter().flatten() {
        sent += 1;
        let payload = if sent == total {
            element.take().expect("original moved into the last send")
        } else {
            element
                .as_ref()
                .expect("original kept until last send")
                .clone()
        };
        if tx.send(payload).is_ok() {
            alive = true;
        }
    }
    alive
}

/// Tracks the watermark of each input channel and exposes the
/// combined (minimum) watermark across the inputs that are still
/// open. A closed input no longer constrains progress.
#[derive(Debug)]
pub(crate) struct WatermarkMerge {
    per_input: Vec<Timestamp>,
    closed: Vec<bool>,
    combined: Timestamp,
}

impl WatermarkMerge {
    pub(crate) fn new(inputs: usize) -> Self {
        WatermarkMerge {
            per_input: vec![Timestamp::MIN; inputs],
            closed: vec![false; inputs],
            combined: Timestamp::MIN,
        }
    }

    /// Records a watermark on `input`; returns the new combined
    /// watermark if it advanced.
    pub(crate) fn advance(&mut self, input: usize, watermark: Timestamp) -> Option<Timestamp> {
        if watermark > self.per_input[input] {
            self.per_input[input] = watermark;
        }
        self.recompute()
    }

    /// Marks `input` as closed; returns the new combined watermark if
    /// closing it unblocked progress.
    pub(crate) fn close(&mut self, input: usize) -> Option<Timestamp> {
        self.closed[input] = true;
        self.recompute()
    }

    pub(crate) fn all_closed(&self) -> bool {
        self.closed.iter().all(|&c| c)
    }

    fn recompute(&mut self) -> Option<Timestamp> {
        let min = self
            .per_input
            .iter()
            .zip(&self.closed)
            .filter(|(_, &closed)| !closed)
            .map(|(&wm, _)| wm)
            .min()
            .unwrap_or(Timestamp::MAX);
        if min > self.combined {
            self.combined = min;
            Some(min)
        } else {
            None
        }
    }
}

/// Receives from whichever of `rxs` is ready; `None` marks
/// already-closed slots. Returns `(input_index, element_or_closed)`.
/// A disconnected channel (its sender's thread exited, panicked or
/// not) is reported as closed, never unwrapped.
fn recv_any<T>(rxs: &[Option<Receiver<Element<T>>>]) -> (usize, Option<Element<T>>) {
    let mut sel = Select::new();
    let mut open: Vec<(usize, &Receiver<Element<T>>)> = Vec::new();
    for (i, rx) in rxs.iter().enumerate() {
        if let Some(rx) = rx {
            sel.recv(rx);
            open.push((i, rx));
        }
    }
    debug_assert!(!open.is_empty());
    let oper = sel.select();
    let (slot, rx) = open[oper.index()];
    match oper.recv(rx) {
        Ok(el) => (slot, Some(el)),
        Err(_) => (slot, None),
    }
}

/// Total buffered items across a node's still-open inputs. Sampled
/// into the queue-depth histogram at each wakeup, so sustained
/// backpressure shows up as a rising distribution.
fn queue_depth<T>(rxs: &[Option<Receiver<Element<T>>>]) -> u64 {
    rxs.iter().flatten().map(|rx| rx.len() as u64).sum()
}

/// Appends the items of a data element to `buf`; a batch whose items
/// land in an empty buffer is taken over wholesale (no copy for the
/// sole consumer).
fn push_data<T: Clone>(element: Element<T>, buf: &mut Vec<T>) {
    match element {
        Element::Item(item) => buf.push(item),
        Element::Batch(batch) => {
            if buf.is_empty() {
                *buf = batch.into_vec();
            } else {
                buf.extend(batch.into_vec());
            }
        }
        _ => unreachable!("push_data only receives data elements"),
    }
}

/// Starting from the already-received data element `first`, drains
/// `rx` without blocking until `max_batch` items are buffered, the
/// channel runs dry, or a control marker appears. The control marker,
/// if any, is returned so the caller can process it *after* the data
/// that preceded it — keeping watermarks and end-of-stream exact
/// batch boundaries.
fn drain_data<T: Clone>(
    first: Element<T>,
    rx: &Receiver<Element<T>>,
    max_batch: usize,
) -> (Vec<T>, Option<Element<T>>) {
    let mut buf = Vec::new();
    push_data(first, &mut buf);
    let mut ctrl = None;
    while buf.len() < max_batch {
        match rx.try_recv() {
            Ok(el @ (Element::Item(_) | Element::Batch(_))) => push_data(el, &mut buf),
            Ok(marker) => {
                ctrl = Some(marker);
                break;
            }
            // Empty: nothing more to coalesce. Disconnected: the next
            // blocking receive reports it as a closed slot.
            Err(_) => break,
        }
    }
    (buf, ctrl)
}

/// Drains `out` into the node's ports, recording output metrics.
/// With `max_batch > 1` the outputs travel as shared batches chunked
/// to at most `max_batch` items; otherwise one `Element::Item` per
/// tuple, exactly as the pre-batching engine.
/// Returns `false` when every downstream consumer is gone.
fn flush_outputs<O: Clone>(
    out: &mut Vec<O>,
    ports: &Ports<O>,
    metrics: &NodeMetrics,
    max_batch: usize,
) -> bool {
    if out.is_empty() {
        return true;
    }
    let mut alive = true;
    if max_batch <= 1 {
        for item in out.drain(..) {
            metrics.record_out(1);
            alive = broadcast_all(ports, Element::Item(item));
        }
        return alive;
    }
    metrics.record_out(out.len() as u64);
    let mut items = std::mem::take(out);
    while !items.is_empty() {
        let rest = if items.len() > max_batch {
            items.split_off(max_batch)
        } else {
            Vec::new()
        };
        alive = if items.len() == 1 {
            broadcast_all(ports, Element::Item(items.pop().expect("one item")))
        } else {
            broadcast_all(ports, Element::Batch(Batch::new(items)))
        };
        items = rest;
    }
    alive
}

/// The worker loop shared by every single-input-type node (Map,
/// Filter, FlatMap, Aggregate, Union/Identity; sinks are separate).
pub(crate) fn run_unary<I, O, Op>(
    mut op: Op,
    rxs: Vec<Receiver<Element<I>>>,
    ports: Ports<O>,
    metrics: Arc<NodeMetrics>,
    max_batch: usize,
) where
    I: Clone + Send + Sync,
    O: Clone + Send + Sync,
    Op: UnaryOperator<I, O>,
{
    let has_outputs = ports.iter().any(|p| !p.is_empty());
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(rxs.len());
    let mut out: Vec<O> = Vec::new();
    let mut pending: Option<(usize, Element<I>)> = None;
    loop {
        let (slot, received) = match pending.take() {
            Some((slot, marker)) => (slot, Some(marker)),
            None => recv_any(&rxs),
        };
        match received {
            Some(Element::Item(item)) if max_batch <= 1 => {
                // The exact pre-batching hot path: no buffering, no
                // allocation per item.
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                // Time the operator callback only: send-side
                // backpressure in flush_outputs is queueing, not
                // processing, and would drown the signal.
                let started = Instant::now();
                op.on_item(item, &mut out);
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics, max_batch) && has_outputs {
                    return;
                }
            }
            Some(el @ (Element::Item(_) | Element::Batch(_))) => {
                let rx = rxs[slot].as_ref().expect("data from an open slot");
                let (mut batch, ctrl) = drain_data(el, rx, max_batch);
                if let Some(marker) = ctrl {
                    pending = Some((slot, marker));
                }
                metrics.record_in(batch.len() as u64);
                metrics.record_queue_depth(queue_depth(&rxs));
                if max_batch > 1 {
                    metrics.record_batch(batch.len() as u64);
                }
                let started = Instant::now();
                if batch.len() == 1 {
                    op.on_item(batch.pop().expect("single item"), &mut out);
                } else {
                    op.on_batch(batch, &mut out);
                }
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics, max_batch) && has_outputs {
                    return;
                }
            }
            Some(Element::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    op.on_watermark(combined, &mut out);
                    let alive = flush_outputs(&mut out, &ports, &metrics, max_batch)
                        && broadcast_all(&ports, Element::Watermark(combined));
                    if !alive && has_outputs {
                        return;
                    }
                }
            }
            Some(Element::End) | None => {
                rxs[slot] = None;
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        op.on_watermark(combined, &mut out);
                        let alive = flush_outputs(&mut out, &ports, &metrics, max_batch)
                            && broadcast_all(&ports, Element::Watermark(combined));
                        if !alive && has_outputs {
                            return;
                        }
                    }
                }
                if merge.all_closed() {
                    op.on_end(&mut out);
                    flush_outputs(&mut out, &ports, &metrics, max_batch);
                    broadcast_all(&ports, Element::End);
                    return;
                }
            }
        }
    }
}

/// A control marker carried over to the next loop iteration of a
/// binary worker; side-agnostic because markers hold no payload.
enum PendingCtrl {
    Watermark(Timestamp),
    End,
}

enum ElementEvent<L, R> {
    LeftBatch(Vec<L>),
    RightBatch(Vec<R>),
    Watermark(Timestamp),
    Closed,
}

/// A still-open input of a binary node, tagged by side so the select
/// loop can complete the chosen operation against the right type.
enum SideRx<'a, L, R> {
    Left(&'a Receiver<Element<L>>),
    Right(&'a Receiver<Element<R>>),
}

/// Receives one event for a binary worker, draining data into a batch
/// of the selected side. A control marker hit mid-drain lands in
/// `pending`.
#[allow(clippy::type_complexity)]
fn recv_binary<L: Clone + Send + Sync, R: Clone + Send + Sync>(
    left: &[Option<Receiver<Element<L>>>],
    right: &[Option<Receiver<Element<R>>>],
    max_batch: usize,
    pending: &mut Option<(usize, PendingCtrl)>,
) -> (usize, ElementEvent<L, R>) {
    if let Some((slot, ctrl)) = pending.take() {
        let event = match ctrl {
            PendingCtrl::Watermark(wm) => ElementEvent::Watermark(wm),
            PendingCtrl::End => ElementEvent::Closed,
        };
        return (slot, event);
    }
    let left_count = left.len();
    // A heterogeneous select: left and right channels carry different
    // element types, so build the Select manually. The slot list keeps
    // a typed reference alongside each index, so the selected receiver
    // is recovered without unwrapping.
    let mut sel = Select::new();
    let mut slots: Vec<(usize, SideRx<'_, L, R>)> = Vec::new();
    for (i, rx) in left.iter().enumerate() {
        if let Some(rx) = rx {
            sel.recv(rx);
            slots.push((i, SideRx::Left(rx)));
        }
    }
    for (i, rx) in right.iter().enumerate() {
        if let Some(rx) = rx {
            sel.recv(rx);
            slots.push((left_count + i, SideRx::Right(rx)));
        }
    }
    debug_assert!(!slots.is_empty());
    let oper = sel.select();
    let (slot, side) = &slots[oper.index()];
    let slot = *slot;
    let event = match side {
        SideRx::Left(rx) => match oper.recv(rx) {
            Ok(el @ (Element::Item(_) | Element::Batch(_))) => {
                let (batch, ctrl) = drain_data(el, rx, max_batch);
                *pending = ctrl.map(|marker| (slot, to_pending(marker)));
                ElementEvent::LeftBatch(batch)
            }
            Ok(Element::Watermark(wm)) => ElementEvent::Watermark(wm),
            Ok(Element::End) | Err(_) => ElementEvent::Closed,
        },
        SideRx::Right(rx) => match oper.recv(rx) {
            Ok(el @ (Element::Item(_) | Element::Batch(_))) => {
                let (batch, ctrl) = drain_data(el, rx, max_batch);
                *pending = ctrl.map(|marker| (slot, to_pending(marker)));
                ElementEvent::RightBatch(batch)
            }
            Ok(Element::Watermark(wm)) => ElementEvent::Watermark(wm),
            Ok(Element::End) | Err(_) => ElementEvent::Closed,
        },
    };
    (slot, event)
}

fn to_pending<T>(marker: Element<T>) -> PendingCtrl {
    match marker {
        Element::Watermark(wm) => PendingCtrl::Watermark(wm),
        Element::End => PendingCtrl::End,
        _ => unreachable!("data elements are drained, not carried over"),
    }
}

/// The worker loop for two-input-type nodes (Join). `left_rxs` and
/// `right_rxs` are usually singletons but may each carry several
/// channels (e.g. a union feeding a join side directly).
pub(crate) fn run_binary<L, R, O, Op>(
    mut op: Op,
    left_rxs: Vec<Receiver<Element<L>>>,
    right_rxs: Vec<Receiver<Element<R>>>,
    ports: Ports<O>,
    metrics: Arc<NodeMetrics>,
    max_batch: usize,
) where
    L: Clone + Send + Sync,
    R: Clone + Send + Sync,
    O: Clone + Send + Sync,
    Op: BinaryOperator<L, R, O>,
{
    let has_outputs = ports.iter().any(|p| !p.is_empty());
    let left_count = left_rxs.len();
    let mut left: Vec<Option<_>> = left_rxs.into_iter().map(Some).collect();
    let mut right: Vec<Option<_>> = right_rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(left.len() + right.len());
    let mut out: Vec<O> = Vec::new();
    let mut pending: Option<(usize, PendingCtrl)> = None;

    loop {
        let (slot, event) = recv_binary(&left, &right, max_batch, &mut pending);
        match event {
            ElementEvent::LeftBatch(mut batch) => {
                metrics.record_in(batch.len() as u64);
                metrics.record_queue_depth(queue_depth(&left) + queue_depth(&right));
                if max_batch > 1 {
                    metrics.record_batch(batch.len() as u64);
                }
                let started = Instant::now();
                if batch.len() == 1 {
                    op.on_left(batch.pop().expect("single item"), &mut out);
                } else {
                    op.on_left_batch(batch, &mut out);
                }
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics, max_batch) && has_outputs {
                    return;
                }
            }
            ElementEvent::RightBatch(mut batch) => {
                metrics.record_in(batch.len() as u64);
                metrics.record_queue_depth(queue_depth(&left) + queue_depth(&right));
                if max_batch > 1 {
                    metrics.record_batch(batch.len() as u64);
                }
                let started = Instant::now();
                if batch.len() == 1 {
                    op.on_right(batch.pop().expect("single item"), &mut out);
                } else {
                    op.on_right_batch(batch, &mut out);
                }
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics, max_batch) && has_outputs {
                    return;
                }
            }
            ElementEvent::Watermark(wm) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    op.on_watermark(combined, &mut out);
                    let alive = flush_outputs(&mut out, &ports, &metrics, max_batch)
                        && broadcast_all(&ports, Element::Watermark(combined));
                    if !alive && has_outputs {
                        return;
                    }
                }
            }
            ElementEvent::Closed => {
                if slot < left_count {
                    left[slot] = None;
                } else {
                    right[slot - left_count] = None;
                }
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        op.on_watermark(combined, &mut out);
                        let alive = flush_outputs(&mut out, &ports, &metrics, max_batch)
                            && broadcast_all(&ports, Element::Watermark(combined));
                        if !alive && has_outputs {
                            return;
                        }
                    }
                }
                if merge.all_closed() {
                    op.on_end(&mut out);
                    flush_outputs(&mut out, &ports, &metrics, max_batch);
                    broadcast_all(&ports, Element::End);
                    return;
                }
            }
        }
    }
}

/// The worker loop for router nodes: each item goes to exactly one
/// port (all channels of that port, normally one); watermarks and
/// end-of-stream go to every port. Under batching the router drains a
/// wakeup's worth of items, partitions them into per-port buffers in
/// arrival order, and flushes every buffer before the next receive —
/// so routing decisions (including round-robin) are identical at
/// every batch size.
pub(crate) fn run_router<T>(
    mut router: Router<T>,
    rxs: Vec<Receiver<Element<T>>>,
    ports: Ports<T>,
    metrics: Arc<NodeMetrics>,
    max_batch: usize,
) where
    T: Clone + Send + Sync,
{
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(rxs.len());
    let mut pending: Option<(usize, Element<T>)> = None;
    let mut port_bufs: Vec<Vec<T>> = ports.iter().map(|_| Vec::new()).collect();
    loop {
        let (slot, received) = match pending.take() {
            Some((slot, marker)) => (slot, Some(marker)),
            None => recv_any(&rxs),
        };
        match received {
            Some(el @ (Element::Item(_) | Element::Batch(_))) => {
                let rx = rxs[slot].as_ref().expect("data from an open slot");
                let (batch, ctrl) = drain_data(el, rx, max_batch);
                if let Some(marker) = ctrl {
                    pending = Some((slot, marker));
                }
                metrics.record_in(batch.len() as u64);
                metrics.record_queue_depth(queue_depth(&rxs));
                if max_batch > 1 {
                    metrics.record_batch(batch.len() as u64);
                }
                let started = Instant::now();
                for item in batch {
                    port_bufs[router.route(&item)].push(item);
                }
                metrics.record_process_since(started);
                // Flush every non-empty port buffer. The router dies
                // when data it routed found no live receiver, exactly
                // like the per-item engine did.
                let mut routed_to_dead_port = false;
                for (port, buf) in port_bufs.iter_mut().enumerate() {
                    if buf.is_empty() {
                        continue;
                    }
                    metrics.record_out(buf.len() as u64);
                    let element = if buf.len() == 1 {
                        Element::Item(buf.pop().expect("one item"))
                    } else {
                        Element::Batch(Batch::new(std::mem::take(buf)))
                    };
                    let channels = &ports[port];
                    let mut alive = false;
                    let mut element = Some(element);
                    for (i, tx) in channels.iter().enumerate() {
                        let payload = if i + 1 == channels.len() {
                            element.take().expect("moved into last channel")
                        } else {
                            element.as_ref().expect("kept until last channel").clone()
                        };
                        if tx.send(payload).is_ok() {
                            alive = true;
                        }
                    }
                    if !alive {
                        routed_to_dead_port = true;
                    }
                }
                if routed_to_dead_port {
                    return;
                }
            }
            Some(Element::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    if !broadcast_all(&ports, Element::Watermark(combined)) {
                        return;
                    }
                }
            }
            Some(Element::End) | None => {
                rxs[slot] = None;
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        broadcast_all(&ports, Element::Watermark(combined));
                    }
                }
                if merge.all_closed() {
                    broadcast_all(&ports, Element::End);
                    return;
                }
            }
        }
    }
}

/// The worker loop for source nodes: runs the user source, then
/// flushes any partial batch and closes the stream.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_source<S>(
    mut source: S,
    name: String,
    ports: Ports<S::Out>,
    stop: Arc<AtomicBool>,
    metrics: Arc<NodeMetrics>,
    errors: Arc<Mutex<Vec<Error>>>,
    max_batch: usize,
    batch_timeout: Duration,
) where
    S: Source,
{
    let outputs: Vec<Sender<Element<S::Out>>> = ports.into_iter().flatten().collect();
    let mut ctx = SourceContext::new(outputs, stop, metrics, max_batch, batch_timeout);
    if let Err(reason) = source.run(&mut ctx) {
        errors
            .lock()
            .push(Error::SourceFailed { node: name, reason });
    }
    ctx.finish();
}

/// The worker loop for element-level sink nodes: the callback sees
/// items, (merged) watermarks and the final end-of-stream marker —
/// what a connector publisher needs to forward stream control through
/// a broker topic. Batches are exploded into per-item calls, so the
/// callback's view of the stream is identical at every batch size.
pub(crate) fn run_element_sink<T, F>(
    mut f: F,
    rxs: Vec<Receiver<Element<T>>>,
    metrics: Arc<NodeMetrics>,
) where
    T: Clone + Send + Sync,
    F: FnMut(Element<T>),
{
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(rxs.len());
    loop {
        let (slot, received) = recv_any(&rxs);
        match received {
            Some(Element::Item(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                let started = Instant::now();
                f(Element::Item(item));
                metrics.record_process_since(started);
            }
            Some(Element::Batch(batch)) => {
                metrics.record_in(batch.len() as u64);
                metrics.record_queue_depth(queue_depth(&rxs));
                metrics.record_batch(batch.len() as u64);
                let started = Instant::now();
                for item in batch.into_vec() {
                    f(Element::Item(item));
                }
                metrics.record_process_since(started);
            }
            Some(Element::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    f(Element::Watermark(combined));
                }
            }
            Some(Element::End) | None => {
                rxs[slot] = None;
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        f(Element::Watermark(combined));
                    }
                }
                if merge.all_closed() {
                    f(Element::End);
                    return;
                }
            }
        }
    }
}

/// The worker loop for sink nodes: applies the callback to every item
/// until all inputs end.
pub(crate) fn run_sink<T, F>(mut f: F, rxs: Vec<Receiver<Element<T>>>, metrics: Arc<NodeMetrics>)
where
    T: Clone + Send + Sync,
    F: FnMut(T),
{
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut open = rxs.iter().filter(|r| r.is_some()).count();
    while open > 0 {
        let (slot, received) = recv_any(&rxs);
        match received {
            Some(Element::Item(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                let started = Instant::now();
                f(item);
                metrics.record_process_since(started);
            }
            Some(Element::Batch(batch)) => {
                metrics.record_in(batch.len() as u64);
                metrics.record_queue_depth(queue_depth(&rxs));
                metrics.record_batch(batch.len() as u64);
                let started = Instant::now();
                for item in batch.into_vec() {
                    f(item);
                }
                metrics.record_process_since(started);
            }
            Some(Element::Watermark(_)) => metrics.record_watermark(),
            Some(Element::End) | None => {
                rxs[slot] = None;
                open -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn watermark_merge_takes_minimum() {
        let mut m = WatermarkMerge::new(2);
        assert_eq!(m.advance(0, Timestamp::from_millis(10)), None); // input 1 still at MIN
        assert_eq!(
            m.advance(1, Timestamp::from_millis(5)),
            Some(Timestamp::from_millis(5))
        );
        assert_eq!(
            m.advance(1, Timestamp::from_millis(20)),
            Some(Timestamp::from_millis(10))
        );
    }

    #[test]
    fn watermark_merge_ignores_regressions() {
        let mut m = WatermarkMerge::new(1);
        assert_eq!(
            m.advance(0, Timestamp::from_millis(10)),
            Some(Timestamp::from_millis(10))
        );
        assert_eq!(m.advance(0, Timestamp::from_millis(5)), None);
    }

    #[test]
    fn closing_an_input_unblocks_progress() {
        let mut m = WatermarkMerge::new(2);
        m.advance(0, Timestamp::from_millis(100));
        // Input 1 never advanced; closing it releases input 0's watermark.
        assert_eq!(m.close(1), Some(Timestamp::from_millis(100)));
        assert!(!m.all_closed());
        // Closing the last input pushes the combined watermark to MAX.
        assert_eq!(m.close(0), Some(Timestamp::MAX));
        assert!(m.all_closed());
    }

    /// A payload that counts how many times it is cloned, to pin the
    /// broadcast fan-out contract: N downstream channels cost exactly
    /// N−1 clones, because the original moves into the last send.
    #[derive(Debug)]
    struct CloneCounter(Arc<AtomicUsize>);

    impl Clone for CloneCounter {
        fn clone(&self) -> Self {
            self.0.fetch_add(1, Ordering::Relaxed);
            CloneCounter(Arc::clone(&self.0))
        }
    }

    #[test]
    fn broadcast_moves_the_original_into_the_last_send() {
        let clones = Arc::new(AtomicUsize::new(0));
        for channels in 1..=4usize {
            clones.store(0, Ordering::Relaxed);
            let mut rxs = Vec::new();
            let mut port = Vec::new();
            for _ in 0..channels {
                let (tx, rx) = bounded(4);
                port.push(tx);
                rxs.push(rx);
            }
            let ports: Ports<CloneCounter> = vec![port];
            assert!(broadcast_all(
                &ports,
                Element::Item(CloneCounter(Arc::clone(&clones)))
            ));
            assert_eq!(
                clones.load(Ordering::Relaxed),
                channels - 1,
                "{channels} channels must cost exactly {} clones",
                channels - 1
            );
            for rx in &rxs {
                assert!(rx.try_recv().is_ok());
            }
        }
    }

    #[test]
    fn broadcast_batches_share_instead_of_cloning_items() {
        let clones = Arc::new(AtomicUsize::new(0));
        let (tx_a, rx_a) = bounded(4);
        let (tx_b, rx_b) = bounded(4);
        let ports: Ports<CloneCounter> = vec![vec![tx_a, tx_b]];
        let batch = Batch::new(vec![
            CloneCounter(Arc::clone(&clones)),
            CloneCounter(Arc::clone(&clones)),
        ]);
        assert!(broadcast_all(&ports, Element::Batch(batch)));
        // Two channels share one Arc'd batch: zero item clones on the
        // way out...
        assert_eq!(clones.load(Ordering::Relaxed), 0);
        let first: Element<CloneCounter> = rx_a.try_recv().unwrap();
        let second: Element<CloneCounter> = rx_b.try_recv().unwrap();
        // ...one clone pass when the first consumer unwraps while the
        // batch is still shared...
        drop(first.into_items());
        assert_eq!(clones.load(Ordering::Relaxed), 2);
        // ...and the last consumer takes the items by move.
        drop(second.into_items());
        assert_eq!(clones.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn drain_data_stops_at_control_markers() {
        let (tx, rx) = bounded(16);
        tx.send(Element::Item(2)).unwrap();
        tx.send(Element::Batch(Batch::new(vec![3, 4]))).unwrap();
        tx.send(Element::Watermark(Timestamp::from_millis(9)))
            .unwrap();
        tx.send(Element::Item(5)).unwrap();
        let (batch, ctrl) = drain_data(Element::Item(1), &rx, 64);
        assert_eq!(batch, vec![1, 2, 3, 4]);
        assert_eq!(ctrl, Some(Element::Watermark(Timestamp::from_millis(9))));
        // The item after the watermark stays queued for the next wakeup.
        assert_eq!(rx.try_recv(), Ok(Element::Item(5)));
    }

    mod watermark_merge_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any interleaving of advances and closes over four
            /// inputs, the combined watermark (1) never regresses and
            /// (2) always equals the minimum, over still-open inputs,
            /// of the highest watermark each has reported — closed
            /// inputs stop constraining progress immediately.
            #[test]
            fn combined_is_the_monotone_min_over_open_inputs(
                ops in proptest::collection::vec(
                    (0usize..4, 0u8..10, 0u64..1_000),
                    1..200,
                ),
            ) {
                let mut merge = WatermarkMerge::new(4);
                let mut max_seen = [Timestamp::MIN; 4];
                let mut open = [true; 4];
                let mut combined = Timestamp::MIN;
                for (input, kind, millis) in ops {
                    let update = if kind < 8 {
                        let wm = Timestamp::from_millis(millis);
                        if wm > max_seen[input] {
                            max_seen[input] = wm;
                        }
                        merge.advance(input, wm)
                    } else {
                        open[input] = false;
                        merge.close(input)
                    };
                    if let Some(advanced) = update {
                        prop_assert!(
                            advanced > combined,
                            "combined regressed: {:?} -> {:?}",
                            combined,
                            advanced
                        );
                        combined = advanced;
                    }
                    let floor = (0..4)
                        .filter(|&i| open[i])
                        .map(|i| max_seen[i])
                        .min()
                        .unwrap_or(Timestamp::MAX);
                    prop_assert_eq!(
                        combined,
                        floor,
                        "combined diverged from the open-input minimum"
                    );
                }
            }

            /// Closing inputs in any order eventually pushes the
            /// combined watermark to MAX, and each close-step change
            /// is an increase.
            #[test]
            fn closing_everything_releases_max(
                advances in proptest::collection::vec(0u64..1_000, 4),
                close_order in Just([0usize, 1, 2, 3]),
            ) {
                let mut merge = WatermarkMerge::new(4);
                for (i, &millis) in advances.iter().enumerate() {
                    merge.advance(i, Timestamp::from_millis(millis));
                }
                let mut last = Timestamp::MIN;
                for &input in &close_order {
                    if let Some(advanced) = merge.close(input) {
                        prop_assert!(advanced > last);
                        last = advanced;
                    }
                }
                prop_assert!(merge.all_closed());
                prop_assert_eq!(last, Timestamp::MAX);
            }
        }
    }

    /// Regression: an input that never advanced past MIN must stop
    /// holding back the merged watermark the moment it closes — the
    /// bug class where one finished (or idle) source froze event time
    /// for every downstream window. Exercised through a real two-input
    /// node, not just the merge struct.
    #[test]
    fn closed_idle_input_releases_downstream_watermarks() {
        let (busy_tx, busy_rx) = bounded(16);
        let (idle_tx, idle_rx) = bounded(16);
        let (out_tx, out_rx) = bounded(16);
        let metrics = Arc::new(NodeMetrics::new("merge"));
        let worker = std::thread::spawn(move || {
            run_unary(
                crate::operators::Identity::new(),
                vec![busy_rx, idle_rx],
                vec![vec![out_tx]],
                metrics,
                1,
            );
        });
        busy_tx
            .send(Element::Watermark(Timestamp::from_millis(50)))
            .unwrap();
        // The idle input pins the merge at MIN; closing it must
        // release the busy input's watermark (in either processing
        // order — the merge only emits on a strict increase).
        idle_tx.send(Element::End).unwrap();
        let released: Element<i32> = out_rx.recv().unwrap();
        assert_eq!(released, Element::Watermark(Timestamp::from_millis(50)));
        // Only close the busy input after observing the release, so
        // the End cannot race ahead of the watermark above.
        busy_tx.send(Element::End).unwrap();
        drop(busy_tx);
        drop(idle_tx);
        let got: Vec<Element<i32>> = out_rx.iter().collect();
        assert_eq!(got, vec![Element::End]);
        worker.join().unwrap();
    }

    #[test]
    fn drain_data_respects_max_batch() {
        let (tx, rx) = bounded(16);
        for i in 2..10 {
            tx.send(Element::Item(i)).unwrap();
        }
        let (batch, ctrl) = drain_data(Element::Item(1), &rx, 4);
        assert_eq!(batch, vec![1, 2, 3, 4]);
        assert_eq!(ctrl, None);
        assert_eq!(rx.len(), 5);
    }
}
