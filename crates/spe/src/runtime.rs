//! Worker loops: one thread per node, watermark merging across
//! inputs, broadcast fan-out, cooperative termination.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Select, Sender};
use parking_lot::Mutex;

use crate::element::Element;
use crate::error::Error;
use crate::metrics::NodeMetrics;
use crate::operator::{BinaryOperator, UnaryOperator};
use crate::operators::router::Router;
use crate::source::{Source, SourceContext};
use crate::time::Timestamp;

/// Output ports of a node: `ports[p]` is the list of downstream
/// channels attached to port `p`. Ordinary nodes have one port and
/// broadcast to every channel on it; router nodes send each item to
/// exactly one port.
pub(crate) type Ports<T> = Vec<Vec<Sender<Element<T>>>>;

/// Sends a clone of `element` to every channel of every port.
/// Returns `true` while at least one receiver is still connected.
fn broadcast_all<T: Clone>(ports: &Ports<T>, element: &Element<T>) -> bool {
    let mut alive = false;
    for port in ports {
        for tx in port {
            if tx.send(element.clone()).is_ok() {
                alive = true;
            }
        }
    }
    alive
}

/// Tracks the watermark of each input channel and exposes the
/// combined (minimum) watermark across the inputs that are still
/// open. A closed input no longer constrains progress.
#[derive(Debug)]
pub(crate) struct WatermarkMerge {
    per_input: Vec<Timestamp>,
    closed: Vec<bool>,
    combined: Timestamp,
}

impl WatermarkMerge {
    pub(crate) fn new(inputs: usize) -> Self {
        WatermarkMerge {
            per_input: vec![Timestamp::MIN; inputs],
            closed: vec![false; inputs],
            combined: Timestamp::MIN,
        }
    }

    /// Records a watermark on `input`; returns the new combined
    /// watermark if it advanced.
    pub(crate) fn advance(&mut self, input: usize, watermark: Timestamp) -> Option<Timestamp> {
        if watermark > self.per_input[input] {
            self.per_input[input] = watermark;
        }
        self.recompute()
    }

    /// Marks `input` as closed; returns the new combined watermark if
    /// closing it unblocked progress.
    pub(crate) fn close(&mut self, input: usize) -> Option<Timestamp> {
        self.closed[input] = true;
        self.recompute()
    }

    pub(crate) fn all_closed(&self) -> bool {
        self.closed.iter().all(|&c| c)
    }

    fn recompute(&mut self) -> Option<Timestamp> {
        let min = self
            .per_input
            .iter()
            .zip(&self.closed)
            .filter(|(_, &closed)| !closed)
            .map(|(&wm, _)| wm)
            .min()
            .unwrap_or(Timestamp::MAX);
        if min > self.combined {
            self.combined = min;
            Some(min)
        } else {
            None
        }
    }
}

/// Receives from whichever of `rxs` is ready; `None` marks
/// already-closed slots. Returns `(input_index, element_or_closed)`.
/// A disconnected channel (its sender's thread exited, panicked or
/// not) is reported as closed, never unwrapped.
fn recv_any<T>(rxs: &[Option<Receiver<Element<T>>>]) -> (usize, Option<Element<T>>) {
    let mut sel = Select::new();
    let mut open: Vec<(usize, &Receiver<Element<T>>)> = Vec::new();
    for (i, rx) in rxs.iter().enumerate() {
        if let Some(rx) = rx {
            sel.recv(rx);
            open.push((i, rx));
        }
    }
    debug_assert!(!open.is_empty());
    let oper = sel.select();
    let (slot, rx) = open[oper.index()];
    match oper.recv(rx) {
        Ok(el) => (slot, Some(el)),
        Err(_) => (slot, None),
    }
}

/// Total buffered items across a node's still-open inputs. Sampled
/// into the queue-depth histogram at each item receipt, so sustained
/// backpressure shows up as a rising distribution.
fn queue_depth<T>(rxs: &[Option<Receiver<Element<T>>>]) -> u64 {
    rxs.iter().flatten().map(|rx| rx.len() as u64).sum()
}

/// Drains `out` into the node's ports, recording output metrics.
/// Returns `false` when every downstream consumer is gone.
fn flush_outputs<O: Clone>(out: &mut Vec<O>, ports: &Ports<O>, metrics: &NodeMetrics) -> bool {
    let mut alive = true;
    for item in out.drain(..) {
        metrics.record_out(1);
        alive = broadcast_all(ports, &Element::Item(item));
    }
    alive
}

/// The worker loop shared by every single-input-type node (Map,
/// Filter, FlatMap, Aggregate, Union/Identity, sinks are separate).
pub(crate) fn run_unary<I, O, Op>(
    mut op: Op,
    rxs: Vec<Receiver<Element<I>>>,
    ports: Ports<O>,
    metrics: Arc<NodeMetrics>,
) where
    I: Clone + Send,
    O: Clone + Send,
    Op: UnaryOperator<I, O>,
{
    let has_outputs = ports.iter().any(|p| !p.is_empty());
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(rxs.len());
    let mut out: Vec<O> = Vec::new();
    loop {
        let (slot, received) = recv_any(&rxs);
        match received {
            Some(Element::Item(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                // Time the operator callback only: send-side
                // backpressure in flush_outputs is queueing, not
                // processing, and would drown the signal.
                let started = Instant::now();
                op.on_item(item, &mut out);
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics) && has_outputs {
                    return;
                }
            }
            Some(Element::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    op.on_watermark(combined, &mut out);
                    let alive = flush_outputs(&mut out, &ports, &metrics)
                        && broadcast_all(&ports, &Element::Watermark(combined));
                    if !alive && has_outputs {
                        return;
                    }
                }
            }
            Some(Element::End) | None => {
                rxs[slot] = None;
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        op.on_watermark(combined, &mut out);
                        let alive = flush_outputs(&mut out, &ports, &metrics)
                            && broadcast_all(&ports, &Element::Watermark(combined));
                        if !alive && has_outputs {
                            return;
                        }
                    }
                }
                if merge.all_closed() {
                    op.on_end(&mut out);
                    flush_outputs(&mut out, &ports, &metrics);
                    broadcast_all(&ports, &Element::End);
                    return;
                }
            }
        }
    }
}

/// The worker loop for two-input-type nodes (Join). `left_rxs` and
/// `right_rxs` are usually singletons but may each carry several
/// channels (e.g. a union feeding a join side directly).
pub(crate) fn run_binary<L, R, O, Op>(
    mut op: Op,
    left_rxs: Vec<Receiver<Element<L>>>,
    right_rxs: Vec<Receiver<Element<R>>>,
    ports: Ports<O>,
    metrics: Arc<NodeMetrics>,
) where
    L: Clone + Send,
    R: Clone + Send,
    O: Clone + Send,
    Op: BinaryOperator<L, R, O>,
{
    let has_outputs = ports.iter().any(|p| !p.is_empty());
    let left_count = left_rxs.len();
    let mut left: Vec<Option<_>> = left_rxs.into_iter().map(Some).collect();
    let mut right: Vec<Option<_>> = right_rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(left.len() + right.len());
    let mut out: Vec<O> = Vec::new();

    loop {
        // A heterogeneous select: left and right channels carry
        // different element types, so build the Select manually. The
        // slot list keeps a typed reference alongside each index, so
        // the selected receiver is recovered without unwrapping.
        let mut sel = Select::new();
        let mut slots: Vec<(usize, SideRx<'_, L, R>)> = Vec::new();
        for (i, rx) in left.iter().enumerate() {
            if let Some(rx) = rx {
                sel.recv(rx);
                slots.push((i, SideRx::Left(rx)));
            }
        }
        for (i, rx) in right.iter().enumerate() {
            if let Some(rx) = rx {
                sel.recv(rx);
                slots.push((left_count + i, SideRx::Right(rx)));
            }
        }
        debug_assert!(!slots.is_empty());
        let oper = sel.select();
        let (slot, side) = &slots[oper.index()];
        let slot = *slot;
        let is_left = slot < left_count;

        let event: Option<ElementEvent<L, R>> = match side {
            SideRx::Left(rx) => match oper.recv(rx) {
                Ok(Element::Item(i)) => Some(ElementEvent::Left(i)),
                Ok(Element::Watermark(w)) => Some(ElementEvent::Watermark(w)),
                Ok(Element::End) | Err(_) => None,
            },
            SideRx::Right(rx) => match oper.recv(rx) {
                Ok(Element::Item(i)) => Some(ElementEvent::Right(i)),
                Ok(Element::Watermark(w)) => Some(ElementEvent::Watermark(w)),
                Ok(Element::End) | Err(_) => None,
            },
        };

        match event {
            Some(ElementEvent::Left(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&left) + queue_depth(&right));
                let started = Instant::now();
                op.on_left(item, &mut out);
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics) && has_outputs {
                    return;
                }
            }
            Some(ElementEvent::Right(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&left) + queue_depth(&right));
                let started = Instant::now();
                op.on_right(item, &mut out);
                metrics.record_process_since(started);
                if !flush_outputs(&mut out, &ports, &metrics) && has_outputs {
                    return;
                }
            }
            Some(ElementEvent::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    op.on_watermark(combined, &mut out);
                    let alive = flush_outputs(&mut out, &ports, &metrics)
                        && broadcast_all(&ports, &Element::Watermark(combined));
                    if !alive && has_outputs {
                        return;
                    }
                }
            }
            None => {
                if is_left {
                    left[slot] = None;
                } else {
                    right[slot - left_count] = None;
                }
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        op.on_watermark(combined, &mut out);
                        let alive = flush_outputs(&mut out, &ports, &metrics)
                            && broadcast_all(&ports, &Element::Watermark(combined));
                        if !alive && has_outputs {
                            return;
                        }
                    }
                }
                if merge.all_closed() {
                    op.on_end(&mut out);
                    flush_outputs(&mut out, &ports, &metrics);
                    broadcast_all(&ports, &Element::End);
                    return;
                }
            }
        }
    }
}

enum ElementEvent<L, R> {
    Left(L),
    Right(R),
    Watermark(Timestamp),
}

/// A still-open input of a binary node, tagged by side so the select
/// loop can complete the chosen operation against the right type.
enum SideRx<'a, L, R> {
    Left(&'a Receiver<Element<L>>),
    Right(&'a Receiver<Element<R>>),
}

/// The worker loop for router nodes: each item goes to exactly one
/// port (all channels of that port, normally one); watermarks and
/// end-of-stream go to every port.
pub(crate) fn run_router<T>(
    mut router: Router<T>,
    rxs: Vec<Receiver<Element<T>>>,
    ports: Ports<T>,
    metrics: Arc<NodeMetrics>,
) where
    T: Clone + Send,
{
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(rxs.len());
    loop {
        let (slot, received) = recv_any(&rxs);
        match received {
            Some(Element::Item(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                let started = Instant::now();
                let port = router.route(&item);
                metrics.record_process_since(started);
                metrics.record_out(1);
                let mut alive = false;
                for tx in &ports[port] {
                    if tx.send(Element::Item(item.clone())).is_ok() {
                        alive = true;
                    }
                }
                if !alive {
                    return;
                }
            }
            Some(Element::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    if !broadcast_all(&ports, &Element::Watermark(combined)) {
                        return;
                    }
                }
            }
            Some(Element::End) | None => {
                rxs[slot] = None;
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        broadcast_all(&ports, &Element::Watermark(combined));
                    }
                }
                if merge.all_closed() {
                    broadcast_all(&ports, &Element::End);
                    return;
                }
            }
        }
    }
}

/// The worker loop for source nodes: runs the user source, then
/// closes the stream.
pub(crate) fn run_source<S>(
    mut source: S,
    name: String,
    ports: Ports<S::Out>,
    stop: Arc<AtomicBool>,
    metrics: Arc<NodeMetrics>,
    errors: Arc<Mutex<Vec<Error>>>,
) where
    S: Source,
{
    let outputs: Vec<Sender<Element<S::Out>>> = ports.into_iter().flatten().collect();
    let mut ctx = SourceContext::new(outputs.clone(), stop, metrics);
    if let Err(reason) = source.run(&mut ctx) {
        errors
            .lock()
            .push(Error::SourceFailed { node: name, reason });
    }
    for tx in &outputs {
        let _ = tx.send(Element::End);
    }
}

/// The worker loop for element-level sink nodes: the callback sees
/// items, (merged) watermarks and the final end-of-stream marker —
/// what a connector publisher needs to forward stream control through
/// a broker topic.
pub(crate) fn run_element_sink<T, F>(
    mut f: F,
    rxs: Vec<Receiver<Element<T>>>,
    metrics: Arc<NodeMetrics>,
) where
    T: Clone + Send,
    F: FnMut(Element<T>),
{
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut merge = WatermarkMerge::new(rxs.len());
    loop {
        let (slot, received) = recv_any(&rxs);
        match received {
            Some(Element::Item(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                let started = Instant::now();
                f(Element::Item(item));
                metrics.record_process_since(started);
            }
            Some(Element::Watermark(wm)) => {
                metrics.record_watermark();
                if let Some(combined) = merge.advance(slot, wm) {
                    f(Element::Watermark(combined));
                }
            }
            Some(Element::End) | None => {
                rxs[slot] = None;
                if let Some(combined) = merge.close(slot) {
                    if !merge.all_closed() {
                        f(Element::Watermark(combined));
                    }
                }
                if merge.all_closed() {
                    f(Element::End);
                    return;
                }
            }
        }
    }
}

/// The worker loop for sink nodes: applies the callback to every item
/// until all inputs end.
pub(crate) fn run_sink<T, F>(mut f: F, rxs: Vec<Receiver<Element<T>>>, metrics: Arc<NodeMetrics>)
where
    T: Clone + Send,
    F: FnMut(T),
{
    let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();
    let mut open = rxs.iter().filter(|r| r.is_some()).count();
    while open > 0 {
        let (slot, received) = recv_any(&rxs);
        match received {
            Some(Element::Item(item)) => {
                metrics.record_in(1);
                metrics.record_queue_depth(queue_depth(&rxs));
                let started = Instant::now();
                f(item);
                metrics.record_process_since(started);
            }
            Some(Element::Watermark(_)) => metrics.record_watermark(),
            Some(Element::End) | None => {
                rxs[slot] = None;
                open -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_merge_takes_minimum() {
        let mut m = WatermarkMerge::new(2);
        assert_eq!(m.advance(0, Timestamp::from_millis(10)), None); // input 1 still at MIN
        assert_eq!(
            m.advance(1, Timestamp::from_millis(5)),
            Some(Timestamp::from_millis(5))
        );
        assert_eq!(
            m.advance(1, Timestamp::from_millis(20)),
            Some(Timestamp::from_millis(10))
        );
    }

    #[test]
    fn watermark_merge_ignores_regressions() {
        let mut m = WatermarkMerge::new(1);
        assert_eq!(
            m.advance(0, Timestamp::from_millis(10)),
            Some(Timestamp::from_millis(10))
        );
        assert_eq!(m.advance(0, Timestamp::from_millis(5)), None);
    }

    #[test]
    fn closing_an_input_unblocks_progress() {
        let mut m = WatermarkMerge::new(2);
        m.advance(0, Timestamp::from_millis(100));
        // Input 1 never advanced; closing it releases input 0's watermark.
        assert_eq!(m.close(1), Some(Timestamp::from_millis(100)));
        assert!(!m.all_closed());
        // Closing the last input pushes the combined watermark to MAX.
        assert_eq!(m.close(0), Some(Timestamp::MAX));
        assert!(m.all_closed());
    }
}
