//! Sinks: the exit points of a continuous query.

use std::sync::Arc;

use parking_lot::Mutex;

/// A shared handle to the items accumulated by a
/// [`collect_sink`](crate::builder::QueryBuilder::collect_sink).
///
/// Cloning the handle is cheap; all clones observe the same buffer.
/// Typical use is to keep one clone while the query runs and call
/// [`take`](CollectHandle::take) (or [`snapshot`](CollectHandle::snapshot))
/// after [`RunningQuery::join`](crate::query::RunningQuery::join).
#[derive(Debug)]
pub struct CollectHandle<T> {
    items: Arc<Mutex<Vec<T>>>,
}

impl<T> Clone for CollectHandle<T> {
    fn clone(&self) -> Self {
        CollectHandle {
            items: Arc::clone(&self.items),
        }
    }
}

impl<T> Default for CollectHandle<T> {
    fn default() -> Self {
        CollectHandle::new()
    }
}

impl<T> CollectHandle<T> {
    /// Creates an empty handle.
    pub fn new() -> Self {
        CollectHandle {
            items: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Number of items collected so far.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// `true` if nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *self.items.lock())
    }

    pub(crate) fn push(&self, item: T) {
        self.items.lock().push(item);
    }
}

impl<T: Clone> CollectHandle<T> {
    /// Returns a copy of everything collected so far, leaving the
    /// buffer intact.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_takes() {
        let h = CollectHandle::new();
        assert!(h.is_empty());
        h.push(1);
        h.push(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.snapshot(), vec![1, 2]);
        assert_eq!(h.take(), vec![1, 2]);
        assert!(h.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = CollectHandle::new();
        let b = a.clone();
        a.push("x");
        assert_eq!(b.len(), 1);
        assert_eq!(b.take(), vec!["x"]);
        assert!(a.is_empty());
    }
}
