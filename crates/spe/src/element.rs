//! Stream elements: data items plus in-band control markers.

use std::sync::Arc;

use crate::time::Timestamp;

/// A shared micro-batch of data items.
///
/// The data plane moves items through channels in batches to amortize
/// per-element synchronization. The payload is reference-counted:
/// broadcasting a batch to N downstream channels clones the `Arc`, not
/// the items, and the *last* (or sole) consumer that calls
/// [`into_vec`](Batch::into_vec) takes the items by move.
///
/// ```
/// use strata_spe::Batch;
/// let batch = Batch::new(vec![1, 2, 3]);
/// let shared = batch.clone(); // Arc bump, items not copied
/// assert_eq!(batch.len(), 3);
/// assert_eq!(shared.into_vec(), vec![1, 2, 3]); // batch still holds an Arc
/// assert_eq!(batch.into_vec(), vec![1, 2, 3]); // sole owner: moved, not cloned
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct Batch<T>(Arc<Vec<T>>);

impl<T> Batch<T> {
    /// Wraps `items` into a shared batch.
    pub fn new(items: Vec<T>) -> Self {
        Batch(Arc::new(items))
    }

    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the batch holds no items. The engine never sends
    /// empty batches; this exists for completeness.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The items as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.0
    }

    /// Iterates over the items by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.0.iter()
    }
}

impl<T: Clone> Batch<T> {
    /// Takes the items out. When this handle is the last owner the
    /// items are moved for free; otherwise they are cloned — which is
    /// why broadcast fan-out hands the *moved* original to the final
    /// consumer.
    pub fn into_vec(self) -> Vec<T> {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

/// Cloning a batch bumps the reference count; items are never copied.
/// (Manual impl: `derive` would needlessly require `T: Clone`.)
impl<T> Clone for Batch<T> {
    fn clone(&self) -> Self {
        Batch(Arc::clone(&self.0))
    }
}

impl<T> From<Vec<T>> for Batch<T> {
    fn from(items: Vec<T>) -> Self {
        Batch::new(items)
    }
}

impl<T> std::ops::Deref for Batch<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.0
    }
}

impl<'a, T> IntoIterator for &'a Batch<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// A single unit flowing through a stream channel: data (one item or
/// a shared micro-batch) or an in-band control marker.
///
/// Watermarks and end-of-stream markers travel through the same
/// bounded channels as data, so control information can never overtake
/// the data it describes. Control markers are always batch boundaries:
/// the engine flushes buffered data before forwarding them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element<T> {
    /// A single data tuple.
    Item(T),
    /// A micro-batch of data tuples, shared by reference count across
    /// fan-out. Semantically identical to that many consecutive
    /// [`Item`](Element::Item)s.
    Batch(Batch<T>),
    /// A promise from the upstream node that no future data element on
    /// this channel will carry an event time **strictly lower** than
    /// the carried timestamp. Watermarks drive window closing in
    /// stateful operators.
    Watermark(Timestamp),
    /// End of stream: the upstream node has finished and will send
    /// nothing further. Receiving `End` on every input causes a node
    /// to flush its state and propagate `End` downstream.
    End,
}

impl<T> Element<T> {
    /// Returns `true` for [`Element::Item`].
    pub fn is_item(&self) -> bool {
        matches!(self, Element::Item(_))
    }

    /// Returns `true` for data elements ([`Element::Item`] and
    /// [`Element::Batch`]).
    pub fn is_data(&self) -> bool {
        matches!(self, Element::Item(_) | Element::Batch(_))
    }

    /// Returns `true` for [`Element::End`].
    pub fn is_end(&self) -> bool {
        matches!(self, Element::End)
    }

    /// Returns the contained single item, if any. Batches are not
    /// unwrapped; use [`into_items`](Element::into_items) to extract
    /// data from either form.
    pub fn into_item(self) -> Option<T> {
        match self {
            Element::Item(item) => Some(item),
            _ => None,
        }
    }
}

impl<T: Clone> Element<T> {
    /// Extracts all data items: one for [`Item`](Element::Item), all
    /// of them for [`Batch`](Element::Batch), none for control
    /// markers.
    pub fn into_items(self) -> Vec<T> {
        match self {
            Element::Item(item) => vec![item],
            Element::Batch(batch) => batch.into_vec(),
            _ => Vec::new(),
        }
    }

    /// Maps the contained item(s) with `f`, preserving control
    /// markers.
    ///
    /// ```
    /// use strata_spe::{Element, Timestamp};
    /// let e = Element::Item(2).map(|x| x * 10);
    /// assert_eq!(e, Element::Item(20));
    /// let w: Element<i32> = Element::Watermark(Timestamp::from_millis(5));
    /// assert_eq!(w.map(|x| x * 10), Element::Watermark(Timestamp::from_millis(5)));
    /// ```
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> Element<U> {
        match self {
            Element::Item(item) => Element::Item(f(item)),
            Element::Batch(batch) => {
                Element::Batch(Batch::new(batch.into_vec().into_iter().map(f).collect()))
            }
            Element::Watermark(w) => Element::Watermark(w),
            Element::End => Element::End,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Element::Item(1).is_item());
        assert!(!Element::Item(1).is_end());
        assert!(Element::<u32>::End.is_end());
        assert!(!Element::<u32>::Watermark(Timestamp::MIN).is_item());
        assert!(Element::Item(1).is_data());
        assert!(Element::Batch(Batch::new(vec![1])).is_data());
        assert!(!Element::<u32>::End.is_data());
    }

    #[test]
    fn into_item_extracts_only_items() {
        assert_eq!(Element::Item(7).into_item(), Some(7));
        assert_eq!(Element::<u8>::End.into_item(), None);
        assert_eq!(
            Element::<u8>::Watermark(Timestamp::from_millis(1)).into_item(),
            None
        );
        assert_eq!(Element::Batch(Batch::new(vec![1u8])).into_item(), None);
    }

    #[test]
    fn into_items_handles_both_data_forms() {
        assert_eq!(Element::Item(7).into_items(), vec![7]);
        assert_eq!(
            Element::Batch(Batch::new(vec![1, 2])).into_items(),
            vec![1, 2]
        );
        assert_eq!(Element::<u8>::End.into_items(), Vec::<u8>::new());
    }

    #[test]
    fn map_preserves_markers() {
        let end: Element<u32> = Element::End;
        assert_eq!(end.map(|x| x + 1), Element::End);
        assert_eq!(
            Element::Batch(Batch::new(vec![1u32, 2])).map(|x| x * 2),
            Element::Batch(Batch::new(vec![2u32, 4]))
        );
    }

    #[test]
    fn batch_clone_is_shared_not_copied() {
        let batch = Batch::new(vec![String::from("a"), String::from("b")]);
        let clone = batch.clone();
        assert_eq!(batch.as_slice(), clone.as_slice());
        // The clone still shares, so the original's into_vec clones...
        assert_eq!(clone.into_vec(), vec!["a", "b"]);
        // ...but once it is the sole owner, into_vec moves.
        assert_eq!(batch.into_vec(), vec!["a", "b"]);
    }
}
