//! Stream elements: data items plus in-band control markers.

use crate::time::Timestamp;

/// A single unit flowing through a stream channel: either a data item
/// or an in-band control marker.
///
/// Watermarks and end-of-stream markers travel through the same
/// bounded channels as data, so control information can never overtake
/// the data it describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element<T> {
    /// A data tuple.
    Item(T),
    /// A promise from the upstream node that no future [`Item`] on
    /// this channel will carry an event time **strictly lower** than
    /// the carried timestamp. Watermarks drive window closing in
    /// stateful operators.
    ///
    /// [`Item`]: Element::Item
    Watermark(Timestamp),
    /// End of stream: the upstream node has finished and will send
    /// nothing further. Receiving `End` on every input causes a node
    /// to flush its state and propagate `End` downstream.
    End,
}

impl<T> Element<T> {
    /// Returns `true` for [`Element::Item`].
    pub fn is_item(&self) -> bool {
        matches!(self, Element::Item(_))
    }

    /// Returns `true` for [`Element::End`].
    pub fn is_end(&self) -> bool {
        matches!(self, Element::End)
    }

    /// Returns the contained item, if any.
    pub fn into_item(self) -> Option<T> {
        match self {
            Element::Item(item) => Some(item),
            _ => None,
        }
    }

    /// Maps the contained item with `f`, preserving control markers.
    ///
    /// ```
    /// use strata_spe::{Element, Timestamp};
    /// let e = Element::Item(2).map(|x| x * 10);
    /// assert_eq!(e, Element::Item(20));
    /// let w: Element<i32> = Element::Watermark(Timestamp::from_millis(5));
    /// assert_eq!(w.map(|x| x * 10), Element::Watermark(Timestamp::from_millis(5)));
    /// ```
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Element<U> {
        match self {
            Element::Item(item) => Element::Item(f(item)),
            Element::Watermark(w) => Element::Watermark(w),
            Element::End => Element::End,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Element::Item(1).is_item());
        assert!(!Element::Item(1).is_end());
        assert!(Element::<u32>::End.is_end());
        assert!(!Element::<u32>::Watermark(Timestamp::MIN).is_item());
    }

    #[test]
    fn into_item_extracts_only_items() {
        assert_eq!(Element::Item(7).into_item(), Some(7));
        assert_eq!(Element::<u8>::End.into_item(), None);
        assert_eq!(
            Element::<u8>::Watermark(Timestamp::from_millis(1)).into_item(),
            None
        );
    }

    #[test]
    fn map_preserves_markers() {
        let end: Element<u32> = Element::End;
        assert_eq!(end.map(|x| x + 1), Element::End);
    }
}
