//! Runtime observability: per-node counters and query-level metrics.
//!
//! The STRATA paper evaluates *latency* and *throughput* (§3, §5).
//! The engine keeps lightweight per-node metrics, built on the shared
//! `strata-obs` primitives, that a running query exposes without
//! locking the data path: monotone counters for item flow plus log₂
//! histograms for per-item processing latency and input queue depth.
//!
//! Metrics exist standalone (every query records into them whether or
//! not anything scrapes), and can additionally be
//! [registered](QueryMetrics::register_into) into a process-wide
//! [`Registry`] where they render as Prometheus exposition with
//! `{query=..., node=...}` labels.

use std::sync::Arc;
use std::time::Instant;

use strata_obs::{Counter, Histogram, HistogramSnapshot, Registry};

/// Metrics for one node (source, operator, or sink) of a query.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics by the node's worker thread; readers may observe slightly
/// stale values, never torn ones.
#[derive(Debug)]
pub struct NodeMetrics {
    name: String,
    items_in: Counter,
    items_out: Counter,
    watermarks_in: Counter,
    panics: Counter,
    process_ns: Histogram,
    queue_depth: Histogram,
    batch_items: Histogram,
}

impl NodeMetrics {
    /// Creates a zeroed metric set for the node called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NodeMetrics {
            name: name.into(),
            items_in: Counter::new(),
            items_out: Counter::new(),
            watermarks_in: Counter::new(),
            panics: Counter::new(),
            process_ns: Histogram::new(),
            queue_depth: Histogram::new(),
            batch_items: Histogram::new(),
        }
    }

    /// The node's unique name within its query.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data items the node has consumed so far.
    pub fn items_in(&self) -> u64 {
        self.items_in.get()
    }

    /// Number of data items the node has produced so far.
    pub fn items_out(&self) -> u64 {
        self.items_out.get()
    }

    /// Number of watermarks the node has consumed so far.
    pub fn watermarks_in(&self) -> u64 {
        self.watermarks_in.get()
    }

    /// Number of times this node's user code panicked and was caught
    /// by the runtime's supervision. At most 1 today (a panicked node
    /// does not restart), but kept as a counter for symmetry.
    pub fn panics(&self) -> u64 {
        self.panics.get()
    }

    /// Distribution of per-item processing latency (the operator
    /// callback only — send-side backpressure is excluded), in
    /// nanoseconds.
    pub fn process_latency(&self) -> HistogramSnapshot {
        self.process_ns.snapshot()
    }

    /// Distribution of this node's total input queue depth, sampled
    /// at each item receipt.
    pub fn queue_depth(&self) -> HistogramSnapshot {
        self.queue_depth.snapshot()
    }

    /// Distribution of micro-batch sizes the node processed (items per
    /// wakeup). Only recorded when the query runs with a batch size
    /// above 1, so item-at-a-time queries report an empty
    /// distribution.
    pub fn batch_items(&self) -> HistogramSnapshot {
        self.batch_items.snapshot()
    }

    pub(crate) fn record_in(&self, n: u64) {
        self.items_in.add(n);
    }

    pub(crate) fn record_out(&self, n: u64) {
        self.items_out.add(n);
    }

    pub(crate) fn record_watermark(&self) {
        self.watermarks_in.inc();
    }

    pub(crate) fn record_panic(&self) {
        self.panics.inc();
    }

    pub(crate) fn record_process_since(&self, started: Instant) {
        self.process_ns.record_since(started);
    }

    pub(crate) fn record_queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
    }

    pub(crate) fn record_batch(&self, items: u64) {
        self.batch_items.record(items);
    }

    /// Registers this node's handles into `registry` under the
    /// standard `spe_node_*` names, labelled by query and node.
    fn register_into(&self, registry: &Registry, query: &str) {
        let labels: &[(&str, &str)] = &[("node", &self.name), ("query", query)];
        registry.register_counter(
            "spe_node_items_in_total",
            "Data items consumed by the node",
            labels,
            &self.items_in,
        );
        registry.register_counter(
            "spe_node_items_out_total",
            "Data items produced by the node",
            labels,
            &self.items_out,
        );
        registry.register_counter(
            "spe_node_watermarks_total",
            "Watermarks consumed by the node",
            labels,
            &self.watermarks_in,
        );
        registry.register_counter(
            "spe_node_panics_total",
            "Panics caught by the node's supervision",
            labels,
            &self.panics,
        );
        registry.register_histogram(
            "spe_node_process_ns",
            "Per-item operator latency in nanoseconds",
            labels,
            &self.process_ns,
        );
        registry.register_histogram(
            "spe_node_queue_depth",
            "Input queue depth sampled at item receipt",
            labels,
            &self.queue_depth,
        );
        registry.register_histogram(
            "spe_node_batch_items",
            "Micro-batch sizes processed per wakeup (batched queries only)",
            labels,
            &self.batch_items,
        );
    }

    /// A point-in-time copy of every counter and distribution.
    pub fn snapshot(&self) -> NodeMetricsSnapshot {
        NodeMetricsSnapshot {
            name: self.name.clone(),
            items_in: self.items_in(),
            items_out: self.items_out(),
            watermarks_in: self.watermarks_in(),
            panics: self.panics(),
            process_ns: self.process_latency(),
            queue_depth: self.queue_depth(),
            batch_items: self.batch_items(),
        }
    }
}

/// A read-only view over the metrics of every node in a query, plus
/// the query's wall-clock runtime.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    query: String,
    nodes: Vec<Arc<NodeMetrics>>,
    started: Instant,
}

impl QueryMetrics {
    pub(crate) fn new(query: String, nodes: Vec<Arc<NodeMetrics>>) -> Self {
        QueryMetrics {
            query,
            nodes,
            started: Instant::now(),
        }
    }

    /// The name of the query these metrics belong to.
    pub fn query(&self) -> &str {
        &self.query
    }

    /// Metrics of every node, in topological creation order.
    pub fn nodes(&self) -> &[Arc<NodeMetrics>] {
        &self.nodes
    }

    /// Metrics for the node named `name`, if it exists.
    pub fn node(&self, name: &str) -> Option<&Arc<NodeMetrics>> {
        self.nodes.iter().find(|m| m.name() == name)
    }

    /// Wall-clock time elapsed since the query started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Aggregate input throughput of the node named `name`, in items
    /// per second since the query started. Returns `None` for an
    /// unknown node.
    pub fn throughput_in(&self, name: &str) -> Option<f64> {
        let node = self.node(name)?;
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            return Some(0.0);
        }
        Some(node.items_in() as f64 / secs)
    }

    /// Total caught panics across every node of this query.
    pub fn total_panics(&self) -> u64 {
        self.nodes.iter().map(|n| n.panics()).sum()
    }

    /// Process-wide count of faults fired by the deterministic
    /// fault-injection layer (`strata-chaos`). Always 0 unless the
    /// `failpoints` feature armed the registry — i.e. in production
    /// builds this is a constant. Exposed here so chaos runs can
    /// correlate injected faults with the recovery counters above.
    pub fn chaos_faults(&self) -> u64 {
        strata_chaos::total_fired()
    }

    /// Registers every node's live handles into `registry`, labelled
    /// `{query=..., node=...}`. Recording stays on the same cells, so
    /// the registry renders current values from then on.
    pub fn register_into(&self, registry: &Registry) {
        for node in &self.nodes {
            node.register_into(registry, &self.query);
        }
    }

    /// A point-in-time, human-readable summary of the whole query —
    /// including caught panics, per-item latency quantiles and queue
    /// depths. See [`QueryMetricsSnapshot`]'s `Display`.
    pub fn snapshot(&self) -> QueryMetricsSnapshot {
        QueryMetricsSnapshot {
            query: self.query.clone(),
            elapsed: self.elapsed(),
            nodes: self.nodes.iter().map(|n| n.snapshot()).collect(),
        }
    }
}

/// Point-in-time metrics of one node. All fields are plain values.
#[derive(Debug, Clone)]
pub struct NodeMetricsSnapshot {
    /// The node's name within its query.
    pub name: String,
    /// Items consumed.
    pub items_in: u64,
    /// Items produced.
    pub items_out: u64,
    /// Watermarks consumed.
    pub watermarks_in: u64,
    /// Panics caught by supervision.
    pub panics: u64,
    /// Per-item operator latency distribution (nanoseconds).
    pub process_ns: HistogramSnapshot,
    /// Input queue depth distribution, sampled at item receipt.
    pub queue_depth: HistogramSnapshot,
    /// Micro-batch size distribution (items per wakeup); empty unless
    /// the query ran with a batch size above 1.
    pub batch_items: HistogramSnapshot,
}

/// Point-in-time metrics of a whole query, one row per node.
///
/// The `Display` rendering is the user-visible summary: it surfaces
/// `panics` (supervision catches) alongside the flow counters and the
/// latency/queue-depth quantiles, so a wedged or dying node is
/// visible at a glance.
#[derive(Debug, Clone)]
pub struct QueryMetricsSnapshot {
    /// The query's name.
    pub query: String,
    /// Wall-clock time since the query started.
    pub elapsed: std::time::Duration,
    /// One snapshot per node, in topological creation order.
    pub nodes: Vec<NodeMetricsSnapshot>,
}

impl QueryMetricsSnapshot {
    /// Total caught panics across every node.
    pub fn total_panics(&self) -> u64 {
        self.nodes.iter().map(|n| n.panics).sum()
    }
}

impl std::fmt::Display for QueryMetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "query `{}`: {} nodes, elapsed {:.3}s, panics {}",
            self.query,
            self.nodes.len(),
            self.elapsed.as_secs_f64(),
            self.total_panics(),
        )?;
        for n in &self.nodes {
            write!(
                f,
                "  {}: in={} out={} wm={} panics={}",
                n.name, n.items_in, n.items_out, n.watermarks_in, n.panics
            )?;
            if n.process_ns.count() > 0 {
                write!(
                    f,
                    " proc[p50={}ns p99={}ns max={}ns]",
                    n.process_ns.p50(),
                    n.process_ns.p99(),
                    n.process_ns.max()
                )?;
            }
            if n.queue_depth.count() > 0 {
                write!(f, " queue[p99={}]", n.queue_depth.p99())?;
            }
            if n.batch_items.count() > 0 {
                write!(
                    f,
                    " batch[p50={} max={}]",
                    n.batch_items.p50(),
                    n.batch_items.max()
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NodeMetrics::new("map");
        m.record_in(3);
        m.record_in(2);
        m.record_out(4);
        m.record_watermark();
        assert_eq!(m.items_in(), 5);
        assert_eq!(m.items_out(), 4);
        assert_eq!(m.watermarks_in(), 1);
        assert_eq!(m.name(), "map");
    }

    #[test]
    fn query_metrics_lookup() {
        let nodes = vec![
            Arc::new(NodeMetrics::new("src")),
            Arc::new(NodeMetrics::new("sink")),
        ];
        let qm = QueryMetrics::new("q".into(), nodes);
        assert_eq!(qm.query(), "q");
        assert!(qm.node("src").is_some());
        assert!(qm.node("nope").is_none());
        assert_eq!(qm.nodes().len(), 2);
        assert!(qm.throughput_in("nope").is_none());
        qm.node("src").unwrap().record_in(10);
        assert!(qm.throughput_in("src").unwrap() >= 0.0);
    }

    #[test]
    fn panic_counters_aggregate() {
        let nodes = vec![
            Arc::new(NodeMetrics::new("a")),
            Arc::new(NodeMetrics::new("b")),
        ];
        let qm = QueryMetrics::new("q".into(), nodes);
        assert_eq!(qm.total_panics(), 0);
        qm.node("a").unwrap().record_panic();
        qm.node("b").unwrap().record_panic();
        assert_eq!(qm.node("a").unwrap().panics(), 1);
        assert_eq!(qm.total_panics(), 2);
        // Without the failpoints feature this is a compile-time 0.
        if !strata_chaos::is_compiled() {
            assert_eq!(qm.chaos_faults(), 0);
        }
    }

    #[test]
    fn snapshot_surfaces_flow_latency_and_panics() {
        let node = Arc::new(NodeMetrics::new("detect"));
        node.record_in(7);
        node.record_out(3);
        node.record_panic();
        node.record_queue_depth(4);
        node.record_process_since(Instant::now());
        let qm = QueryMetrics::new("monitor".into(), vec![node]);
        let snap = qm.snapshot();
        assert_eq!(snap.total_panics(), 1);
        let text = snap.to_string();
        assert!(text.contains("query `monitor`"), "{text}");
        assert!(text.contains("detect: in=7 out=3 wm=0 panics=1"), "{text}");
        assert!(text.contains("proc[p50="), "{text}");
        assert!(text.contains("queue[p99=4]"), "{text}");
    }

    #[test]
    fn registration_exposes_prometheus_series() {
        let node = Arc::new(NodeMetrics::new("map"));
        node.record_in(5);
        let qm = QueryMetrics::new("q1".into(), vec![node]);
        let registry = Registry::new();
        qm.register_into(&registry);
        let text = registry.render();
        assert!(
            text.contains("spe_node_items_in_total{node=\"map\",query=\"q1\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE spe_node_process_ns histogram"),
            "{text}"
        );
    }
}
