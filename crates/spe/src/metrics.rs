//! Runtime observability: per-node counters and query-level metrics.
//!
//! The STRATA paper evaluates *latency* and *throughput* (§3, §5).
//! The engine keeps lightweight per-node atomic counters that a
//! running query exposes without locking the data path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counters for one node (source, operator, or sink) of a query.
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics by the node's worker thread; readers may observe slightly
/// stale values, never torn ones.
#[derive(Debug)]
pub struct NodeMetrics {
    name: String,
    items_in: AtomicU64,
    items_out: AtomicU64,
    watermarks_in: AtomicU64,
    panics: AtomicU64,
}

impl NodeMetrics {
    /// Creates a zeroed counter set for the node called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NodeMetrics {
            name: name.into(),
            items_in: AtomicU64::new(0),
            items_out: AtomicU64::new(0),
            watermarks_in: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// The node's unique name within its query.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data items the node has consumed so far.
    pub fn items_in(&self) -> u64 {
        self.items_in.load(Ordering::Relaxed)
    }

    /// Number of data items the node has produced so far.
    pub fn items_out(&self) -> u64 {
        self.items_out.load(Ordering::Relaxed)
    }

    /// Number of watermarks the node has consumed so far.
    pub fn watermarks_in(&self) -> u64 {
        self.watermarks_in.load(Ordering::Relaxed)
    }

    /// Number of times this node's user code panicked and was caught
    /// by the runtime's supervision. At most 1 today (a panicked node
    /// does not restart), but kept as a counter for symmetry.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    pub(crate) fn record_in(&self, n: u64) {
        self.items_in.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_out(&self, n: u64) {
        self.items_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_watermark(&self) {
        self.watermarks_in.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }
}

/// A read-only view over the metrics of every node in a query, plus
/// the query's wall-clock runtime.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    nodes: Vec<Arc<NodeMetrics>>,
    started: Instant,
}

impl QueryMetrics {
    pub(crate) fn new(nodes: Vec<Arc<NodeMetrics>>) -> Self {
        QueryMetrics {
            nodes,
            started: Instant::now(),
        }
    }

    /// Metrics of every node, in topological creation order.
    pub fn nodes(&self) -> &[Arc<NodeMetrics>] {
        &self.nodes
    }

    /// Metrics for the node named `name`, if it exists.
    pub fn node(&self, name: &str) -> Option<&Arc<NodeMetrics>> {
        self.nodes.iter().find(|m| m.name() == name)
    }

    /// Wall-clock time elapsed since the query started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Aggregate input throughput of the node named `name`, in items
    /// per second since the query started. Returns `None` for an
    /// unknown node.
    pub fn throughput_in(&self, name: &str) -> Option<f64> {
        let node = self.node(name)?;
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            return Some(0.0);
        }
        Some(node.items_in() as f64 / secs)
    }

    /// Total caught panics across every node of this query.
    pub fn total_panics(&self) -> u64 {
        self.nodes.iter().map(|n| n.panics()).sum()
    }

    /// Process-wide count of faults fired by the deterministic
    /// fault-injection layer (`strata-chaos`). Always 0 unless the
    /// `failpoints` feature armed the registry — i.e. in production
    /// builds this is a constant. Exposed here so chaos runs can
    /// correlate injected faults with the recovery counters above.
    pub fn chaos_faults(&self) -> u64 {
        strata_chaos::total_fired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NodeMetrics::new("map");
        m.record_in(3);
        m.record_in(2);
        m.record_out(4);
        m.record_watermark();
        assert_eq!(m.items_in(), 5);
        assert_eq!(m.items_out(), 4);
        assert_eq!(m.watermarks_in(), 1);
        assert_eq!(m.name(), "map");
    }

    #[test]
    fn query_metrics_lookup() {
        let nodes = vec![
            Arc::new(NodeMetrics::new("src")),
            Arc::new(NodeMetrics::new("sink")),
        ];
        let qm = QueryMetrics::new(nodes);
        assert!(qm.node("src").is_some());
        assert!(qm.node("nope").is_none());
        assert_eq!(qm.nodes().len(), 2);
        assert!(qm.throughput_in("nope").is_none());
        qm.node("src").unwrap().record_in(10);
        assert!(qm.throughput_in("src").unwrap() >= 0.0);
    }

    #[test]
    fn panic_counters_aggregate() {
        let nodes = vec![
            Arc::new(NodeMetrics::new("a")),
            Arc::new(NodeMetrics::new("b")),
        ];
        let qm = QueryMetrics::new(nodes);
        assert_eq!(qm.total_panics(), 0);
        qm.node("a").unwrap().record_panic();
        qm.node("b").unwrap().record_panic();
        assert_eq!(qm.node("a").unwrap().panics(), 1);
        assert_eq!(qm.total_panics(), 2);
        // Without the failpoints feature this is a compile-time 0.
        if !strata_chaos::is_compiled() {
            assert_eq!(qm.chaos_faults(), 0);
        }
    }
}
