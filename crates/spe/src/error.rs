//! Error type for query construction and execution.

use std::fmt;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or running a continuous query.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The query graph is invalid (e.g. it has no source, or a node
    /// name is duplicated).
    InvalidQuery(String),
    /// A configuration parameter is out of range (e.g. a zero channel
    /// capacity or a zero window advance).
    InvalidConfig(String),
    /// A worker thread panicked while the query was running.
    WorkerPanicked {
        /// Name of the node whose thread panicked.
        node: String,
    },
    /// An operator, source or sink panicked and was caught by the
    /// runtime's supervision: downstream nodes drained normally and
    /// the panic surfaced here as a structured error instead of a
    /// hung or aborted query.
    OperatorPanicked {
        /// Name of the node whose user code panicked.
        node: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A source reported a failure while producing data.
    SourceFailed {
        /// Name of the failing source node.
        node: String,
        /// Human-readable failure reason.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::WorkerPanicked { node } => {
                write!(f, "worker thread for node `{node}` panicked")
            }
            Error::OperatorPanicked { node, message } => {
                write!(f, "operator `{node}` panicked: {message}")
            }
            Error::SourceFailed { node, reason } => {
                write!(f, "source `{node}` failed: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = Error::InvalidQuery("no source".into());
        assert_eq!(err.to_string(), "invalid query: no source");
        let err = Error::WorkerPanicked { node: "agg".into() };
        assert!(err.to_string().contains("agg"));
        let err = Error::OperatorPanicked {
            node: "agg".into(),
            message: "boom".into(),
        };
        assert!(err.to_string().contains("agg"));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn source_failed_mentions_reason() {
        let err = Error::SourceFailed {
            node: "ot".into(),
            reason: "disk gone".into(),
        };
        assert!(err.to_string().contains("disk gone"));
    }
}
