//! Declarative construction of continuous queries.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;

use crate::element::Element;
use crate::error::{Error, Result};
use crate::metrics::NodeMetrics;
use crate::operator::UnaryOperator;
use crate::operators::aggregate::{Aggregate, WindowBounds};
use crate::operators::join::Join;
use crate::operators::router::{RoutePolicy, Router};
use crate::operators::{Filter, FlatMap, Identity, Map};
use crate::query::Query;
use crate::runtime::{self, Ports};
use crate::sink::CollectHandle;
use crate::source::Source;
use crate::time::Timestamped;
use crate::window::WindowSpec;

static BUILDER_IDS: AtomicU64 = AtomicU64::new(1);

/// A typed handle to the output stream of a node under construction.
///
/// `Stream` is a lightweight copyable token; it is only valid with
/// the [`QueryBuilder`] that created it (using it with another builder
/// is reported as [`Error::InvalidQuery`] at
/// [`build`](QueryBuilder::build) time).
pub struct Stream<T> {
    node: usize,
    port: usize,
    builder: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for Stream<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("node", &self.node)
            .field("port", &self.port)
            .finish()
    }
}

impl<T> Clone for Stream<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Stream<T> {}

type WorkerFn = Box<dyn FnOnce() + Send>;
type Factory = Box<
    dyn FnOnce(Box<dyn Any + Send>, Arc<AtomicBool>, Arc<Mutex<Vec<Error>>>) -> WorkerFn + Send,
>;

struct NodeSpec {
    name: String,
    senders: Box<dyn Any + Send>,
    factory: Factory,
    metrics: Arc<NodeMetrics>,
}

/// Builder for a continuous query: declare sources, operators and
/// sinks, then [`build`](QueryBuilder::build) a runnable [`Query`].
///
/// Construction never fails midway — invalid uses (duplicate node
/// names, foreign stream handles, zero parallelism) are recorded and
/// reported together by `build` ([C-BUILDER], deferred validation).
///
/// See the [crate documentation](crate) for a complete example.
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
pub struct QueryBuilder {
    name: String,
    capacity: usize,
    batch_size: usize,
    batch_timeout: Duration,
    nodes: Vec<NodeSpec>,
    errors: Vec<Error>,
    source_count: usize,
    sink_count: usize,
    id: u64,
}

impl std::fmt::Debug for QueryBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBuilder")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl QueryBuilder {
    /// Creates a builder for a query called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            capacity: 256,
            batch_size: 1,
            batch_timeout: Duration::from_millis(5),
            nodes: Vec::new(),
            errors: Vec::new(),
            source_count: 0,
            sink_count: 0,
            id: BUILDER_IDS.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Sets the capacity of every channel created from now on.
    /// Smaller capacities bound memory and tighten backpressure;
    /// larger ones absorb bursts. The default is 256 elements.
    pub fn channel_capacity(&mut self, capacity: usize) -> &mut Self {
        if capacity == 0 {
            self.errors
                .push(Error::InvalidConfig("channel capacity must be > 0".into()));
        } else {
            self.capacity = capacity;
        }
        self
    }

    /// Sets the micro-batch size of every node created from now on:
    /// worker loops drain up to this many buffered items per wakeup
    /// and move them through the graph as one shared batch, trading
    /// per-item latency for channel-synchronization amortization. The
    /// default of 1 preserves item-at-a-time behavior (today's latency
    /// profile). Watermarks and end-of-stream are always batch
    /// boundaries, so event-time semantics are unaffected.
    pub fn batch_size(&mut self, batch_size: usize) -> &mut Self {
        if batch_size == 0 {
            self.errors
                .push(Error::InvalidConfig("batch size must be > 0".into()));
        } else {
            self.batch_size = batch_size;
        }
        self
    }

    /// Bounds how long a partially filled source batch may wait for
    /// more items before it is flushed downstream (default 5 ms).
    /// Only meaningful with [`batch_size`](Self::batch_size) > 1.
    pub fn batch_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.batch_timeout = timeout;
        self
    }

    fn check_name(&mut self, name: &str) {
        if self.nodes.iter().any(|n| n.name == name) {
            self.errors
                .push(Error::InvalidQuery(format!("duplicate node name `{name}`")));
        }
    }

    fn connect<T: Clone + Send + Sync + 'static>(&mut self, s: &Stream<T>) -> Receiver<Element<T>> {
        let (tx, rx) = bounded(self.capacity);
        if s.builder != self.id {
            self.errors.push(Error::InvalidQuery(
                "stream handle used with a different QueryBuilder".into(),
            ));
            return rx; // Disconnected: tx dropped below.
        }
        match self.nodes[s.node].senders.downcast_mut::<Ports<T>>() {
            Some(ports) => ports[s.port].push(tx),
            None => self.errors.push(Error::InvalidQuery(format!(
                "stream type mismatch on node `{}`",
                self.nodes[s.node].name
            ))),
        }
        rx
    }

    fn stream<T>(&self, node: usize, port: usize) -> Stream<T> {
        Stream {
            node,
            port,
            builder: self.id,
            _marker: PhantomData,
        }
    }

    fn empty_ports<T: Clone + Send + Sync + 'static>(ports: usize) -> Box<dyn Any + Send> {
        let p: Ports<T> = (0..ports).map(|_| Vec::new()).collect();
        Box::new(p)
    }

    /// Adds a [`Source`] node; its stream carries whatever the source
    /// emits.
    pub fn source<S>(&mut self, name: impl Into<String>, source: S) -> Stream<S::Out>
    where
        S: Source + 'static,
    {
        let name = name.into();
        self.check_name(&name);
        let metrics = Arc::new(NodeMetrics::new(name.clone()));
        let m = Arc::clone(&metrics);
        let node_name = name.clone();
        let (max_batch, batch_timeout) = (self.batch_size, self.batch_timeout);
        let factory: Factory = Box::new(move |senders, stop, errors| {
            let ports = *senders
                .downcast::<Ports<S::Out>>()
                .expect("source port type");
            Box::new(move || {
                runtime::run_source(
                    source,
                    node_name,
                    ports,
                    stop,
                    m,
                    errors,
                    max_batch,
                    batch_timeout,
                )
            })
        });
        self.nodes.push(NodeSpec {
            name,
            senders: Self::empty_ports::<S::Out>(1),
            factory,
            metrics,
        });
        self.source_count += 1;
        self.stream(self.nodes.len() - 1, 0)
    }

    /// Adds a custom [`UnaryOperator`] node — the escape hatch behind
    /// [`map`](Self::map), [`filter`](Self::filter),
    /// [`flat_map`](Self::flat_map) and
    /// [`aggregate`](Self::aggregate).
    pub fn operator<I, O, Op>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<I>,
        op: Op,
    ) -> Stream<O>
    where
        I: Clone + Send + Sync + 'static,
        O: Clone + Send + Sync + 'static,
        Op: UnaryOperator<I, O> + 'static,
    {
        let rx = self.connect(input);
        self.unary_node(name.into(), vec![rx], op)
    }

    fn unary_node<I, O, Op>(
        &mut self,
        name: String,
        rxs: Vec<Receiver<Element<I>>>,
        op: Op,
    ) -> Stream<O>
    where
        I: Clone + Send + Sync + 'static,
        O: Clone + Send + Sync + 'static,
        Op: UnaryOperator<I, O> + 'static,
    {
        self.check_name(&name);
        let metrics = Arc::new(NodeMetrics::new(name.clone()));
        let m = Arc::clone(&metrics);
        let max_batch = self.batch_size;
        let factory: Factory = Box::new(move |senders, _stop, _errors| {
            let ports = *senders.downcast::<Ports<O>>().expect("unary port type");
            Box::new(move || runtime::run_unary(op, rxs, ports, m, max_batch))
        });
        self.nodes.push(NodeSpec {
            name,
            senders: Self::empty_ports::<O>(1),
            factory,
            metrics,
        });
        self.stream(self.nodes.len() - 1, 0)
    }

    /// Adds a `Map` node: exactly one output per input.
    pub fn map<I, O>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<I>,
        f: impl FnMut(I) -> O + Send + 'static,
    ) -> Stream<O>
    where
        I: Clone + Send + Sync + 'static,
        O: Clone + Send + Sync + 'static,
    {
        self.operator(name, input, Map::new(f))
    }

    /// Adds a `Filter` node: forwards items satisfying the predicate.
    pub fn filter<T>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<T>,
        predicate: impl FnMut(&T) -> bool + Send + 'static,
    ) -> Stream<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.operator(name, input, Filter::new(predicate))
    }

    /// Adds a `FlatMap` node: zero or more outputs per input.
    pub fn flat_map<I, O, II>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<I>,
        f: impl FnMut(I) -> II + Send + 'static,
    ) -> Stream<O>
    where
        I: Clone + Send + Sync + 'static,
        O: Clone + Send + Sync + 'static,
        II: IntoIterator<Item = O> + 'static,
    {
        self.operator(name, input, FlatMap::new(f))
    }

    /// Adds an `Aggregate` node: event-time windows of `spec`, grouped
    /// by `key_fn`, reduced by `window_fn` when the watermark closes
    /// each window. See [`Aggregate`] for ordering and lateness
    /// semantics.
    pub fn aggregate<I, K, O>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<I>,
        spec: WindowSpec,
        key_fn: impl FnMut(&I) -> K + Send + 'static,
        window_fn: impl FnMut(&K, WindowBounds, &[I]) -> Vec<O> + Send + 'static,
    ) -> Stream<O>
    where
        I: Timestamped + Clone + Send + Sync + 'static,
        K: Ord + Clone + Send + 'static,
        O: Clone + Send + Sync + 'static,
    {
        self.operator(name, input, Aggregate::new(spec, key_fn, window_fn))
    }

    /// Adds a `Join` node over a `left` and a `right` stream: emits
    /// `join_fn(l, r)` for every pair with `|l.τ − r.τ| ≤ ws_millis`
    /// sharing the same group-by key. See [`Join`].
    #[allow(clippy::too_many_arguments)]
    pub fn join<L, R, K, O>(
        &mut self,
        name: impl Into<String>,
        left: &Stream<L>,
        right: &Stream<R>,
        ws_millis: u64,
        key_left: impl FnMut(&L) -> K + Send + 'static,
        key_right: impl FnMut(&R) -> K + Send + 'static,
        join_fn: impl FnMut(&L, &R) -> Option<O> + Send + 'static,
    ) -> Stream<O>
    where
        L: Timestamped + Clone + Send + Sync + 'static,
        R: Timestamped + Clone + Send + Sync + 'static,
        K: std::hash::Hash + Eq + Clone + Send + 'static,
        O: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        let left_rx = self.connect(left);
        let right_rx = self.connect(right);
        self.check_name(&name);
        let metrics = Arc::new(NodeMetrics::new(name.clone()));
        let m = Arc::clone(&metrics);
        let op = Join::new(ws_millis, key_left, key_right, join_fn);
        let max_batch = self.batch_size;
        let factory: Factory = Box::new(move |senders, _stop, _errors| {
            let ports = *senders.downcast::<Ports<O>>().expect("join port type");
            Box::new(move || {
                runtime::run_binary(op, vec![left_rx], vec![right_rx], ports, m, max_batch)
            })
        });
        self.nodes.push(NodeSpec {
            name,
            senders: Self::empty_ports::<O>(1),
            factory,
            metrics,
        });
        self.stream(self.nodes.len() - 1, 0)
    }

    /// Adds a `Union` node merging homogeneous streams; watermarks
    /// are merged as the minimum across inputs.
    pub fn union<T>(&mut self, name: impl Into<String>, inputs: &[Stream<T>]) -> Stream<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        if inputs.is_empty() {
            self.errors.push(Error::InvalidQuery(
                "union requires at least one input stream".into(),
            ));
        }
        let rxs: Vec<_> = inputs.iter().map(|s| self.connect(s)).collect();
        self.unary_node(name.into(), rxs, Identity::new())
    }

    /// Adds a router node distributing items over `ports` output
    /// streams according to `policy`; watermarks and end-of-stream
    /// reach every port. Used to build parallel operator instances —
    /// see [`parallel_operator`](Self::parallel_operator).
    pub fn route<T>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<T>,
        ports: usize,
        policy: RoutePolicy<T>,
    ) -> Vec<Stream<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        let ports = if ports == 0 {
            self.errors.push(Error::InvalidConfig(
                "route requires at least one output port".into(),
            ));
            1
        } else {
            ports
        };
        let rx = self.connect(input);
        self.check_name(&name);
        let metrics = Arc::new(NodeMetrics::new(name.clone()));
        let m = Arc::clone(&metrics);
        let router = Router::new(policy, ports);
        let max_batch = self.batch_size;
        let factory: Factory = Box::new(move |senders, _stop, _errors| {
            let p = *senders.downcast::<Ports<T>>().expect("router port type");
            Box::new(move || runtime::run_router(router, vec![rx], p, m, max_batch))
        });
        self.nodes.push(NodeSpec {
            name,
            senders: Self::empty_ports::<T>(ports),
            factory,
            metrics,
        });
        let node = self.nodes.len() - 1;
        (0..ports).map(|p| self.stream(node, p)).collect()
    }

    /// Runs `parallelism` instances of a unary operator side by side:
    /// items are routed by `policy`, each instance is produced by
    /// `op_factory(instance_index)`, and the instance outputs are
    /// merged back into a single stream.
    ///
    /// For stateful operators use [`RoutePolicy::by_key`] with the
    /// operator's group-by key so each instance sees complete groups.
    pub fn parallel_operator<I, O, Op>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<I>,
        parallelism: usize,
        policy: RoutePolicy<I>,
        op_factory: impl Fn(usize) -> Op,
    ) -> Stream<O>
    where
        I: Clone + Send + Sync + 'static,
        O: Clone + Send + Sync + 'static,
        Op: UnaryOperator<I, O> + 'static,
    {
        let name = name.into();
        let parallelism = if parallelism == 0 {
            self.errors
                .push(Error::InvalidConfig("parallelism must be > 0".into()));
            1
        } else {
            parallelism
        };
        let routed = self.route(format!("{name}.route"), input, parallelism, policy);
        let instances: Vec<Stream<O>> = routed
            .iter()
            .enumerate()
            .map(|(i, s)| self.operator(format!("{name}.{i}"), s, op_factory(i)))
            .collect();
        self.union(format!("{name}.merge"), &instances)
    }

    /// Adds a sink node invoking `f` on every item it receives.
    pub fn sink<T>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<T>,
        f: impl FnMut(T) + Send + 'static,
    ) where
        T: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        let rx = self.connect(input);
        self.check_name(&name);
        let metrics = Arc::new(NodeMetrics::new(name.clone()));
        let m = Arc::clone(&metrics);
        let factory: Factory = Box::new(move |_senders, _stop, _errors| {
            Box::new(move || runtime::run_sink(f, vec![rx], m))
        });
        self.nodes.push(NodeSpec {
            name,
            senders: Self::empty_ports::<T>(0),
            factory,
            metrics,
        });
        self.sink_count += 1;
    }

    /// Adds an element-level sink: `f` receives data items, merged
    /// watermarks and the final end-of-stream marker — everything a
    /// connector needs to republish a stream (control flow included)
    /// into an external system.
    pub fn element_sink<T>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<T>,
        f: impl FnMut(Element<T>) + Send + 'static,
    ) where
        T: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        let rx = self.connect(input);
        self.check_name(&name);
        let metrics = Arc::new(NodeMetrics::new(name.clone()));
        let m = Arc::clone(&metrics);
        let factory: Factory = Box::new(move |_senders, _stop, _errors| {
            Box::new(move || runtime::run_element_sink(f, vec![rx], m))
        });
        self.nodes.push(NodeSpec {
            name,
            senders: Self::empty_ports::<T>(0),
            factory,
            metrics,
        });
        self.sink_count += 1;
    }

    /// Adds a sink that appends every item to a shared buffer and
    /// returns the [`CollectHandle`] for reading it back.
    pub fn collect_sink<T>(
        &mut self,
        name: impl Into<String>,
        input: &Stream<T>,
    ) -> CollectHandle<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let handle = CollectHandle::new();
        let sink_handle = handle.clone();
        self.sink(name, input, move |item| sink_handle.push(item));
        handle
    }

    /// Finalizes the graph into a runnable [`Query`].
    ///
    /// # Errors
    ///
    /// Returns the first construction error recorded by the builder
    /// methods, or [`Error::InvalidQuery`] if the graph has no source
    /// or no sink.
    pub fn build(mut self) -> Result<Query> {
        if self.source_count == 0 {
            self.errors
                .push(Error::InvalidQuery("query has no source".into()));
        }
        if self.sink_count == 0 {
            self.errors
                .push(Error::InvalidQuery("query has no sink".into()));
        }
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::with_capacity(self.nodes.len());
        let mut metrics = Vec::with_capacity(self.nodes.len());
        for node in self.nodes {
            metrics.push(Arc::clone(&node.metrics));
            let worker = (node.factory)(node.senders, Arc::clone(&stop), Arc::clone(&errors));
            workers.push((node.name, worker));
        }
        Ok(Query::new(self.name, workers, stop, metrics, errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::IteratorSource;

    #[test]
    fn rejects_empty_query() {
        let qb = QueryBuilder::new("empty");
        assert!(matches!(qb.build(), Err(Error::InvalidQuery(_))));
    }

    #[test]
    fn rejects_query_without_sink() {
        let mut qb = QueryBuilder::new("no-sink");
        let _src = qb.source("s", IteratorSource::new(0..3));
        assert!(matches!(qb.build(), Err(Error::InvalidQuery(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut qb = QueryBuilder::new("dups");
        let s = qb.source("node", IteratorSource::new(0..3));
        let t = qb.map("node", &s, |x| x);
        let _ = qb.collect_sink("out", &t);
        assert!(matches!(qb.build(), Err(Error::InvalidQuery(_))));
    }

    #[test]
    fn rejects_zero_capacity() {
        let mut qb = QueryBuilder::new("cap");
        qb.channel_capacity(0);
        let s = qb.source("s", IteratorSource::new(0..3));
        let _ = qb.collect_sink("out", &s);
        assert!(matches!(qb.build(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn rejects_foreign_stream_handles() {
        let mut qb1 = QueryBuilder::new("one");
        let foreign = qb1.source("s", IteratorSource::new(0..3));
        let mut qb2 = QueryBuilder::new("two");
        let local = qb2.source("s", IteratorSource::new(0..3));
        let _ = qb2.collect_sink("ok", &local);
        let _ = qb2.collect_sink("bad", &foreign);
        assert!(matches!(qb2.build(), Err(Error::InvalidQuery(_))));
    }

    #[test]
    fn rejects_zero_parallelism_and_ports() {
        let mut qb = QueryBuilder::new("zero");
        let s = qb.source("s", IteratorSource::new(0..3));
        let streams = qb.route("r", &s, 0, RoutePolicy::RoundRobin);
        assert_eq!(streams.len(), 1, "clamped to one port");
        let _ = qb.collect_sink("out", &streams[0]);
        assert!(matches!(qb.build(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn streams_are_copy() {
        let mut qb = QueryBuilder::new("copy");
        let s = qb.source("s", IteratorSource::new(0..3));
        let s2 = s; // Copy
        let _ = qb.collect_sink("a", &s);
        let _ = qb.collect_sink("b", &s2);
        assert!(qb.build().is_ok());
    }
}
