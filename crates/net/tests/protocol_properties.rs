//! Property-based tests for the TCP transport: arbitrary requests and
//! responses survive the codec bit-exactly, and corrupted or
//! truncated frames never decode successfully.

use std::io::Cursor;

use proptest::prelude::*;
use strata_net::codec;
use strata_net::protocol::{PartitionInfo, TopicInfo};
use strata_net::{Request, Response};
use strata_pubsub::{Record, StoredRecord};

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16)),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<u64>(),
        proptest::collection::vec(
            ("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..8)),
            0..3,
        ),
    )
        .prop_map(|(key, value, ts, headers)| {
            let mut r = Record::new(key.map(bytes::Bytes::from), value).with_timestamp(ts);
            for (name, hval) in headers {
                r = r.with_header(name, hval);
            }
            r
        })
}

fn stored_strategy() -> impl Strategy<Value = StoredRecord> {
    (any::<u64>(), record_strategy()).prop_map(|(offset, record)| StoredRecord { offset, record })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        ("[a-z.]{1,16}", 1u32..32)
            .prop_map(|(topic, partitions)| Request::CreateTopic { topic, partitions }),
        (
            "[a-z.]{1,16}",
            proptest::option::of(0u32..8),
            record_strategy()
        )
            .prop_map(|(topic, partition, record)| Request::Produce {
                topic,
                partition,
                record
            }),
        (
            "[a-z.]{1,16}",
            0u32..8,
            any::<u64>(),
            0u32..10_000,
            0u32..100_000
        )
            .prop_map(|(topic, partition, offset, max_records, max_wait_ms)| {
                Request::Fetch {
                    topic,
                    partition,
                    offset,
                    max_records,
                    max_wait_ms,
                }
            }),
        ("[a-z]{1,12}", "[a-z.]{1,16}", 0u32..8, any::<u64>()).prop_map(
            |(group, topic, partition, offset)| Request::CommitOffset {
                group,
                topic,
                partition,
                offset
            }
        ),
        ("[a-z]{1,12}", "[a-z.]{1,16}", 0u32..8).prop_map(|(group, topic, partition)| {
            Request::FetchOffset {
                group,
                topic,
                partition,
            }
        }),
        proptest::collection::vec("[a-z.]{1,16}", 0..4)
            .prop_map(|topics| Request::Metadata { topics }),
        ("[a-z]{1,12}", "[a-z.]{1,16}")
            .prop_map(|(group, topic)| Request::ConsumerLag { group, topic }),
        Just(Request::Metrics),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Created),
        Just(Response::Committed),
        (0u32..8, any::<u64>())
            .prop_map(|(partition, offset)| Response::Produced { partition, offset }),
        proptest::collection::vec(stored_strategy(), 0..8).prop_map(Response::Records),
        proptest::option::of(any::<u64>()).prop_map(Response::CommittedOffset),
        any::<u64>().prop_map(Response::Lag),
        proptest::collection::vec(
            (
                "[a-z.]{1,16}",
                proptest::collection::vec((0u32..16, any::<u64>(), any::<u64>()), 0..4)
            ),
            0..3
        )
        .prop_map(|topics| {
            Response::Metadata(
                topics
                    .into_iter()
                    .map(|(name, partitions)| TopicInfo {
                        name,
                        partitions: partitions
                            .into_iter()
                            .map(|(partition, start, end)| PartitionInfo {
                                partition,
                                start,
                                end,
                            })
                            .collect(),
                    })
                    .collect(),
            )
        }),
        (
            1u32..10,
            "[ -~]{0,24}",
            proptest::collection::vec(any::<u64>(), 0..4)
        )
            .prop_map(|(code, message, context)| Response::Error {
                code: strata_net::ErrorCode::from_u16(code as u16).expect("codes 1-9 are valid"),
                message,
                context,
            }),
        // Short bodies plus a repeated tail that pushes past the u16
        // short-string cap, exercising the long-string framing.
        ("[ -~\n]{0,64}", 0usize..100_000usize)
            .prop_map(|(head, tail)| Response::MetricsText(format!("{head}{}", "m".repeat(tail)))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary requests survive encode → decode bit-exactly.
    #[test]
    fn requests_round_trip(request in request_strategy()) {
        let decoded = Request::decode(&request.encode()).unwrap();
        prop_assert_eq!(decoded, request);
    }

    /// Arbitrary responses survive encode → decode bit-exactly.
    #[test]
    fn responses_round_trip(response in response_strategy()) {
        let decoded = Response::decode(&response.encode()).unwrap();
        prop_assert_eq!(decoded, response);
    }

    /// Arbitrary requests survive the full stream framing (length
    /// prefix, CRC) through a byte stream.
    #[test]
    fn requests_round_trip_through_frames(request in request_strategy()) {
        let mut buf = Vec::new();
        codec::write_request(&mut buf, &request).unwrap();
        let decoded = codec::read_request(&mut Cursor::new(buf)).unwrap();
        prop_assert_eq!(decoded, request);
    }

    /// Flipping any single bit of a framed message makes the frame
    /// unreadable (CRC or framing check fails) — it never decodes
    /// silently into something else.
    #[test]
    fn corrupt_frames_are_rejected(
        request in request_strategy(),
        flip in any::<u32>(),
    ) {
        let mut buf = Vec::new();
        codec::write_request(&mut buf, &request).unwrap();
        let bit = flip as usize % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(codec::read_request(&mut Cursor::new(buf)).is_err());
    }

    /// Every proper prefix of a framed message fails to read — a
    /// peer dying mid-send can never deliver a partial message.
    #[test]
    fn truncated_frames_are_rejected(
        request in request_strategy(),
        cut in any::<u32>(),
    ) {
        let mut buf = Vec::new();
        codec::write_request(&mut buf, &request).unwrap();
        let keep = cut as usize % buf.len();
        buf.truncate(keep);
        prop_assert!(codec::read_request(&mut Cursor::new(buf)).is_err());
    }

    /// Message bodies with trailing garbage are rejected even when
    /// the frame-level CRC is valid (defence against desync bugs).
    #[test]
    fn padded_bodies_are_rejected(
        request in request_strategy(),
        pad in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut body = request.encode();
        body.extend_from_slice(&pad);
        prop_assert!(Request::decode(&body).is_err());
    }
}
