//! strata-net: a TCP transport for the strata pub/sub broker.
//!
//! Turns the in-process [`strata_pubsub::Broker`] into a networked
//! broker. The crate is layered like the in-process stack it mirrors:
//!
//! - [`protocol`] — request/response message types and their
//!   CRC-framed binary encoding (extends the `strata-pubsub` wire
//!   format to the network).
//! - [`codec`] — length-prefixed, CRC-checked frame I/O over any
//!   `Read`/`Write` transport.
//! - [`server`] — [`server::BrokerServer`]: a thread-per-connection
//!   TCP front end over an `Arc<Broker>` with graceful shutdown.
//! - [`client`] — [`client::RemoteProducer`] / [`client::RemoteConsumer`],
//!   mirroring the in-process `Producer` / `Consumer` APIs.
//! - [`retry`] — bounded exponential backoff with jitter, shared by
//!   the client reliability layer.
//! - [`error`] — transport error type, convertible from and into the
//!   broker's [`strata_pubsub::Error`].

pub mod client;
pub mod codec;
pub mod error;
pub mod protocol;
pub mod retry;
pub mod server;

pub use client::{BrokerClient, ClientConfig, RemoteConsumer, RemoteProducer};
pub use error::{NetError, NetResult};
pub use protocol::{ErrorCode, Request, Response};
pub use retry::RetryPolicy;
pub use server::{BrokerServer, ServerConfig};
