//! Remote clients: [`RemoteProducer`] and [`RemoteConsumer`] mirror
//! the in-process `Producer`/`Consumer` APIs over a TCP connection,
//! with a reliability layer underneath (request timeouts, bounded
//! retries with backoff, transparent reconnect).
//!
//! # Resume semantics
//!
//! A [`RemoteConsumer`] tracks its read positions client-side and
//! commits them to the server with [`RemoteConsumer::commit`]. Every
//! reconnect bumps the connection's *epoch*; when a poll observes an
//! epoch change it discards its in-memory positions and re-seeds them
//! from the server's committed offsets before reading on. Records
//! polled after the last commit are therefore re-delivered after a
//! connection loss — at-least-once overall, and exactly-once for
//! consumers that commit before acting on a batch's successor.

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use strata_pubsub::record::Record;
use strata_pubsub::PolledRecord;

use crate::codec;
use crate::error::{broker_error_from_wire, NetError, NetResult};
use crate::protocol::{Request, Response, TopicInfo};
use crate::retry::RetryPolicy;

/// Tuning knobs shared by the remote clients.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Cap on one request/response exchange (socket read timeout).
    /// Must exceed the longest `Fetch` wait the client will request.
    pub request_timeout: Duration,
    /// Retry schedule for transient transport failures.
    pub retry: RetryPolicy,
    /// Batch-size cap per poll of a [`RemoteConsumer`].
    pub max_poll_records: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            request_timeout: Duration::from_secs(60),
            retry: RetryPolicy::default(),
            max_poll_records: 500,
        }
    }
}

/// A single logical connection to a [`BrokerServer`]
/// (crate::server::BrokerServer): serialized request/response with
/// reconnect-on-failure underneath.
pub struct BrokerClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    /// Bumped whenever the connection is torn down; lets consumers
    /// detect that a transparent reconnect happened mid-stream.
    epoch: u64,
    /// Decorrelates this client's retry jitter from its siblings'.
    salt: u64,
}

impl std::fmt::Debug for BrokerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerClient")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl BrokerClient {
    /// Connects to a broker server with default tuning.
    ///
    /// # Errors
    ///
    /// Transport errors if no connection can be established within
    /// the retry budget.
    pub fn connect(addr: impl Into<String>) -> NetResult<Self> {
        Self::connect_with_config(addr, ClientConfig::default())
    }

    /// [`connect`](Self::connect) with explicit tuning.
    ///
    /// # Errors
    ///
    /// Transport errors if no connection can be established within
    /// the retry budget.
    pub fn connect_with_config(addr: impl Into<String>, config: ClientConfig) -> NetResult<Self> {
        let addr = addr.into();
        let salt = {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            addr.hash(&mut hasher);
            std::process::id().hash(&mut hasher);
            hasher.finish()
        };
        let mut client = BrokerClient {
            addr,
            config,
            stream: None,
            epoch: 0,
            salt,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The connection epoch: bumped on every disconnect. Consumers
    /// compare epochs across calls to notice reconnects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn ensure_connected(&mut self) -> NetResult<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.config.request_timeout))?;
        stream.set_nodelay(true)?;
        self.stream = Some(stream);
        Ok(())
    }

    fn drop_connection(&mut self) {
        if self.stream.take().is_some() {
            self.epoch += 1;
        }
    }

    /// One request/response exchange without retries. Transport
    /// failures tear the connection down so the next attempt
    /// reconnects.
    fn exchange(&mut self, request: &Request) -> NetResult<Response> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("just connected");
        let result =
            codec::write_request(stream, request).and_then(|()| codec::read_response(stream));
        match result {
            Ok(response) => Ok(response),
            Err(err) => {
                self.drop_connection();
                Err(err)
            }
        }
    }

    /// Sends `request` and returns the response, retrying transient
    /// transport failures per the configured [`RetryPolicy`]. A
    /// server-reported error response becomes [`NetError::Broker`].
    ///
    /// # Errors
    ///
    /// [`NetError::Broker`] for broker-side failures, transport
    /// errors (possibly wrapped in [`NetError::RetriesExhausted`])
    /// otherwise.
    pub fn request(&mut self, request: &Request) -> NetResult<Response> {
        let retry = self.config.retry.clone();
        let salt = self.salt;
        let response = retry.run(salt, |_| self.exchange(request))?;
        match response {
            Response::Error {
                code,
                message,
                context,
            } => Err(NetError::Broker(broker_error_from_wire(
                code, message, &context,
            ))),
            other => Ok(other),
        }
    }

    /// Creates a memory-backed topic on the server.
    ///
    /// # Errors
    ///
    /// [`NetError::Broker`] with `TopicExists` (among others), or
    /// transport errors.
    pub fn create_topic(&mut self, topic: &str, partitions: u32) -> NetResult<()> {
        match self.request(&Request::CreateTopic {
            topic: topic.into(),
            partitions,
        })? {
            Response::Created => Ok(()),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// Fetches topic metadata (all topics when `topics` is empty).
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn metadata(&mut self, topics: &[&str]) -> NetResult<Vec<TopicInfo>> {
        match self.request(&Request::Metadata {
            topics: topics.iter().map(|t| t.to_string()).collect(),
        })? {
            Response::Metadata(infos) => Ok(infos),
            other => Err(unexpected("Metadata", &other)),
        }
    }

    /// A Prometheus text dump of the server's metrics registry,
    /// covering the broker, its topics, and the transport itself.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn metrics_text(&mut self) -> NetResult<String> {
        match self.request(&Request::Metrics)? {
            Response::MetricsText(text) => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// The total backlog of `group` on `topic`.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn consumer_lag(&mut self, group: &str, topic: &str) -> NetResult<u64> {
        match self.request(&Request::ConsumerLag {
            group: group.into(),
            topic: topic.into(),
        })? {
            Response::Lag(lag) => Ok(lag),
            other => Err(unexpected("Lag", &other)),
        }
    }

    /// Tears the connection down, forcing the next request to
    /// reconnect. Mainly for tests of the resume path.
    pub fn drop_connection_for_test(&mut self) {
        self.drop_connection();
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

/// A producer whose broker lives across a TCP connection. Mirrors
/// the in-process `Producer` API, returning `(partition, offset)`.
pub struct RemoteProducer {
    client: BrokerClient,
}

impl std::fmt::Debug for RemoteProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteProducer")
            .field("client", &self.client)
            .finish()
    }
}

impl RemoteProducer {
    /// Connects a producer to `addr` with default tuning.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(addr: impl Into<String>) -> NetResult<Self> {
        Ok(RemoteProducer {
            client: BrokerClient::connect(addr)?,
        })
    }

    /// [`connect`](Self::connect) with explicit tuning.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect_with_config(addr: impl Into<String>, config: ClientConfig) -> NetResult<Self> {
        Ok(RemoteProducer {
            client: BrokerClient::connect_with_config(addr, config)?,
        })
    }

    /// Access to the underlying connection (for `create_topic`,
    /// `metadata`, and test hooks).
    pub fn client_mut(&mut self) -> &mut BrokerClient {
        &mut self.client
    }

    /// Sends a record with the given key and value, server-side
    /// partitioning. Returns `(partition, offset)`.
    ///
    /// # Errors
    ///
    /// Broker or transport errors. Note a retried produce that
    /// succeeded server-side before the response was lost is
    /// re-appended: produces are at-least-once, like Kafka's
    /// pre-idempotence producer.
    pub fn send(
        &mut self,
        topic: &str,
        key: Option<&[u8]>,
        value: impl Into<bytes::Bytes>,
    ) -> NetResult<(u32, u64)> {
        let record = Record::new(key.map(bytes::Bytes::copy_from_slice), value.into());
        self.send_record(topic, record)
    }

    /// Sends a fully built record, server-side partitioning.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn send_record(&mut self, topic: &str, record: Record) -> NetResult<(u32, u64)> {
        match self.client.request(&Request::Produce {
            topic: topic.into(),
            partition: None,
            record,
        })? {
            Response::Produced { partition, offset } => Ok((partition, offset)),
            other => Err(unexpected("Produced", &other)),
        }
    }

    /// Sends a record to an explicit partition. Returns the offset.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn send_to_partition(
        &mut self,
        topic: &str,
        partition: u32,
        record: Record,
    ) -> NetResult<u64> {
        match self.client.request(&Request::Produce {
            topic: topic.into(),
            partition: Some(partition),
            record,
        })? {
            Response::Produced { offset, .. } => Ok(offset),
            other => Err(unexpected("Produced", &other)),
        }
    }
}

/// A consumer whose broker lives across a TCP connection.
///
/// Unlike the in-process `Consumer` there is no server-side group
/// membership: the consumer owns *all* partitions of its subscribed
/// topics and tracks positions client-side, committing them under its
/// group name. Scaling out therefore means partitioning by topic, not
/// by group membership — which matches how the STRATA pipeline
/// shards: one topic per connector hop, one consumer per topic.
pub struct RemoteConsumer {
    client: BrokerClient,
    group: String,
    topics: Vec<String>,
    /// `(topic, partition)` → next offset to read.
    positions: HashMap<(String, u32), u64>,
    /// Partitions in fixed iteration order, for fair polling.
    assignment: Vec<(String, u32)>,
    /// The client epoch the positions were last synced against.
    synced_epoch: u64,
    max_poll_records: usize,
}

impl std::fmt::Debug for RemoteConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteConsumer")
            .field("group", &self.group)
            .field("assignment", &self.assignment)
            .field("client", &self.client)
            .finish()
    }
}

impl RemoteConsumer {
    /// Connects a consumer in `group` subscribed to `topics`,
    /// starting each partition at the group's committed offset (or
    /// the partition start).
    ///
    /// # Errors
    ///
    /// [`NetError::Broker`] with `UnknownTopic` if a subscribed topic
    /// is missing, or transport errors.
    pub fn connect(
        addr: impl Into<String>,
        group: impl Into<String>,
        topics: &[&str],
    ) -> NetResult<Self> {
        Self::connect_with_config(addr, group, topics, ClientConfig::default())
    }

    /// [`connect`](Self::connect) with explicit tuning.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn connect_with_config(
        addr: impl Into<String>,
        group: impl Into<String>,
        topics: &[&str],
        config: ClientConfig,
    ) -> NetResult<Self> {
        let max_poll_records = config.max_poll_records;
        let mut consumer = RemoteConsumer {
            client: BrokerClient::connect_with_config(addr, config)?,
            group: group.into(),
            topics: topics.iter().map(|t| t.to_string()).collect(),
            positions: HashMap::new(),
            assignment: Vec::new(),
            synced_epoch: 0,
            max_poll_records,
        };
        consumer.sync_positions()?;
        Ok(consumer)
    }

    /// The group this consumer commits under.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// The `(topic, partition)` pairs this consumer reads, in polling
    /// order.
    pub fn assignment(&self) -> &[(String, u32)] {
        &self.assignment
    }

    /// Caps the records returned by one [`poll`](Self::poll).
    pub fn set_max_poll_records(&mut self, max: usize) {
        self.max_poll_records = max.max(1);
    }

    /// Access to the underlying connection (for lag queries and test
    /// hooks such as killing the connection mid-stream).
    pub fn client_mut(&mut self) -> &mut BrokerClient {
        &mut self.client
    }

    /// (Re)derives the assignment from server metadata and seeds
    /// positions from committed offsets, falling back to each
    /// partition's start offset.
    fn sync_positions(&mut self) -> NetResult<()> {
        let topics: Vec<&str> = self.topics.iter().map(String::as_str).collect();
        let metadata = self.client.metadata(&topics)?;
        let mut assignment = Vec::new();
        let mut positions = HashMap::new();
        for info in &metadata {
            for p in &info.partitions {
                let committed = self.committed(&info.name, p.partition)?;
                let position = committed.unwrap_or(p.start).clamp(p.start, p.end);
                assignment.push((info.name.clone(), p.partition));
                positions.insert((info.name.clone(), p.partition), position);
            }
        }
        assignment.sort();
        self.assignment = assignment;
        self.positions = positions;
        self.synced_epoch = self.client.epoch();
        Ok(())
    }

    fn committed(&mut self, topic: &str, partition: u32) -> NetResult<Option<u64>> {
        match self.client.request(&Request::FetchOffset {
            group: self.group.clone(),
            topic: topic.into(),
            partition,
        })? {
            Response::CommittedOffset(offset) => Ok(offset),
            other => Err(unexpected("CommittedOffset", &other)),
        }
    }

    /// Polls for records across the assignment, long-polling up to
    /// `timeout` when all partitions are drained. Returns an empty
    /// batch on timeout.
    ///
    /// If the connection was lost (and transparently re-established)
    /// since the last poll, positions are first re-seeded from the
    /// group's committed offsets, so uncommitted reads re-deliver.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn poll(&mut self, timeout: Duration) -> NetResult<Vec<PolledRecord>> {
        if self.client.epoch() != self.synced_epoch {
            self.sync_positions()?;
        }
        let mut out = Vec::new();
        // First pass: drain whatever is already stored, no waiting.
        self.poll_once(Duration::ZERO, &mut out)?;
        if !out.is_empty() || timeout.is_zero() {
            return Ok(out);
        }
        // Nothing buffered: spend the wait budget on a long poll of
        // the first partition, then sweep the rest without waiting so
        // one quiet partition cannot starve the others.
        self.poll_once(timeout, &mut out)?;
        Ok(out)
    }

    fn poll_once(&mut self, wait: Duration, out: &mut Vec<PolledRecord>) -> NetResult<()> {
        let mut remaining_wait = wait;
        for (topic, partition) in self.assignment.clone() {
            if out.len() >= self.max_poll_records {
                break;
            }
            let position = *self
                .positions
                .get(&(topic.clone(), partition))
                .unwrap_or(&0);
            let response = self.client.request(&Request::Fetch {
                topic: topic.clone(),
                partition,
                offset: position,
                max_records: (self.max_poll_records - out.len()) as u32,
                max_wait_ms: remaining_wait.as_millis().min(u32::MAX as u128) as u32,
            });
            // A reconnect mid-poll invalidates every position,
            // including ones this sweep already advanced: drop what
            // we have and let the caller's next poll re-sync.
            if self.client.epoch() != self.synced_epoch {
                out.clear();
                self.sync_positions()?;
                return Ok(());
            }
            let records = match response? {
                Response::Records(records) => records,
                other => return Err(unexpected("Records", &other)),
            };
            remaining_wait = Duration::ZERO; // Only the first fetch waits.
            if let Some(last) = records.last() {
                self.positions
                    .insert((topic.clone(), partition), last.offset + 1);
            }
            out.extend(records.into_iter().map(|stored| PolledRecord {
                topic: topic.clone(),
                partition,
                offset: stored.offset,
                record: stored.record,
            }));
        }
        Ok(())
    }

    /// Commits the current positions of every assigned partition
    /// under the consumer's group, making them the resume points for
    /// reconnects and successors.
    ///
    /// # Errors
    ///
    /// Broker or transport errors. On error, part of the assignment
    /// may have committed; re-committing is safe (idempotent).
    pub fn commit(&mut self) -> NetResult<()> {
        for ((topic, partition), offset) in self.positions.clone() {
            match self.client.request(&Request::CommitOffset {
                group: self.group.clone(),
                topic,
                partition,
                offset,
            })? {
                Response::Committed => {}
                other => return Err(unexpected("Committed", &other)),
            }
        }
        Ok(())
    }

    /// Rewinds every assigned partition to its start offset. Does not
    /// commit; pair with [`commit`](Self::commit) to persist.
    ///
    /// # Errors
    ///
    /// Broker or transport errors.
    pub fn seek_to_beginning(&mut self) -> NetResult<()> {
        let topics: Vec<&str> = self.topics.iter().map(String::as_str).collect();
        let metadata = self.client.metadata(&topics)?;
        for info in metadata {
            for p in info.partitions {
                self.positions
                    .insert((info.name.clone(), p.partition), p.start);
            }
        }
        Ok(())
    }
}
