//! Bounded exponential backoff with jitter — the client reliability
//! layer's scheduling half.

use std::hash::{Hash, Hasher};
use std::time::Duration;

use crate::error::{NetError, NetResult};

/// Retry schedule: exponentially growing, capped, jittered delays.
///
/// Jitter is deterministic per `(salt, attempt)` pair — derived by
/// hashing, not from a clock — so two clients hammering the same
/// server from the same binary still spread out (different salts),
/// while a given client's schedule is reproducible in tests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
    /// Relative jitter amplitude in `[0, 1]`: each delay is scaled by
    /// a factor drawn from `[1 − jitter, 1 + jitter]`.
    jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(2),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy with the given attempt budget (≥ 1) and delays.
    pub fn new(max_attempts: u32, base_delay: Duration, max_delay: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay,
            max_delay: max_delay.max(base_delay),
            jitter: 0.25,
        }
    }

    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy::new(1, Duration::ZERO, Duration::ZERO)
    }

    /// Sets the relative jitter amplitude (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The attempt budget.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The backoff before retry number `attempt` (1-based: the delay
    /// after the first failure is `delay_for(1, _)`), jittered by a
    /// hash of `(salt, attempt)`.
    pub fn delay_for(&self, attempt: u32, salt: u64) -> Duration {
        let exponent = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exponent)
            .min(self.max_delay);
        if self.jitter == 0.0 || raw.is_zero() {
            return raw;
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        (salt, attempt).hash(&mut hasher);
        // Uniform in [0, 1) from the hash's top 53 bits.
        let unit = (hasher.finish() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        raw.mul_f64(factor)
    }

    /// Runs `op` until it succeeds, fails non-transiently, or the
    /// attempt budget runs out. `op` receives the 0-based attempt
    /// index; `salt` decorrelates the jitter of concurrent callers.
    ///
    /// # Errors
    ///
    /// The operation's own error when non-transient, or
    /// [`NetError::RetriesExhausted`] wrapping the last transient
    /// error once the budget is spent.
    pub fn run<T>(&self, salt: u64, mut op: impl FnMut(u32) -> NetResult<T>) -> NetResult<T> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) if err.is_transient() && attempt + 1 < self.max_attempts => {
                    attempt += 1;
                    std::thread::sleep(self.delay_for(attempt, salt));
                }
                Err(err) if err.is_transient() => {
                    return Err(NetError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(err),
                    });
                }
                Err(err) => return Err(err),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let policy = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(100))
            .with_jitter(0.0);
        assert_eq!(policy.delay_for(1, 0), Duration::from_millis(10));
        assert_eq!(policy.delay_for(2, 0), Duration::from_millis(20));
        assert_eq!(policy.delay_for(3, 0), Duration::from_millis(40));
        assert_eq!(policy.delay_for(6, 0), Duration::from_millis(100), "capped");
    }

    #[test]
    fn jitter_stays_within_amplitude_and_varies_by_salt() {
        let policy = RetryPolicy::new(4, Duration::from_millis(100), Duration::from_secs(1))
            .with_jitter(0.5);
        let base = Duration::from_millis(100);
        let mut distinct = std::collections::HashSet::new();
        for salt in 0..16u64 {
            let d = policy.delay_for(1, salt);
            assert!(d >= base.mul_f64(0.5) && d <= base.mul_f64(1.5), "{d:?}");
            distinct.insert(d.as_nanos());
        }
        assert!(distinct.len() > 1, "salts decorrelate");
    }

    #[test]
    fn run_retries_transient_until_success() {
        let policy = RetryPolicy::new(5, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let result = policy.run(0, |_| {
            calls += 1;
            if calls < 3 {
                Err(NetError::Disconnected)
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_stops_on_permanent_errors() {
        let policy = RetryPolicy::new(5, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let result: NetResult<()> = policy.run(0, |_| {
            calls += 1;
            Err(NetError::Protocol("bad".into()))
        });
        assert!(matches!(result, Err(NetError::Protocol(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn run_exhausts_budget() {
        let policy = RetryPolicy::new(3, Duration::ZERO, Duration::ZERO);
        let result: NetResult<()> = policy.run(0, |_| Err(NetError::Disconnected));
        match result {
            Err(NetError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, NetError::Disconnected));
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
