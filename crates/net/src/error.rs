//! Transport error type shared by the client and server halves.

use std::fmt;

use strata_pubsub::Error as BrokerError;

use crate::protocol::ErrorCode;

/// A specialized `Result` whose error type is [`NetError`].
pub type NetResult<T> = std::result::Result<T, NetError>;

/// Errors produced by the TCP transport.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer closed the connection (clean EOF between frames).
    Disconnected,
    /// A frame failed its length or CRC validation.
    Corrupt(String),
    /// A frame decoded, but violated the request/response protocol
    /// (unknown message type, wrong version, unexpected response).
    Protocol(String),
    /// The server reported a broker-side error.
    Broker(BrokerError),
    /// The retry budget ran out; holds the final attempt's error.
    RetriesExhausted {
        /// Attempts made (including the first, non-retried one).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<NetError>,
    },
}

impl NetError {
    /// Whether a retry with a fresh connection could plausibly
    /// succeed. Socket failures and disconnects are transient;
    /// protocol violations and most broker errors are not (the
    /// request would fail identically on a healthy connection).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::Io(_)
                | NetError::Disconnected
                | NetError::Broker(BrokerError::RebalanceInProgress)
        )
    }

    /// Maps this error onto the broker error space, for callers that
    /// unify local and remote transports. Transport-layer failures
    /// become [`BrokerError::Io`].
    pub fn into_broker_error(self) -> BrokerError {
        match self {
            NetError::Broker(err) => err,
            NetError::Corrupt(msg) => BrokerError::Corrupt(msg),
            NetError::RetriesExhausted { last, .. } => last.into_broker_error(),
            other => BrokerError::Io(std::io::Error::other(other.to_string())),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "socket failure: {err}"),
            NetError::Disconnected => write!(f, "connection closed by peer"),
            NetError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Broker(err) => write!(f, "broker error: {err}"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(err) => Some(err),
            NetError::Broker(err) => Some(err),
            NetError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Disconnected
        } else {
            NetError::Io(err)
        }
    }
}

impl From<BrokerError> for NetError {
    fn from(err: BrokerError) -> Self {
        NetError::Broker(err)
    }
}

/// Reconstructs a broker error from its wire form (code, message,
/// numeric context). The inverse of
/// [`ErrorCode::from_broker_error`].
pub fn broker_error_from_wire(code: ErrorCode, message: String, context: &[u64]) -> BrokerError {
    match code {
        ErrorCode::UnknownTopic => BrokerError::UnknownTopic(message),
        ErrorCode::TopicExists => BrokerError::TopicExists(message),
        ErrorCode::UnknownPartition => BrokerError::UnknownPartition {
            topic: message,
            partition: context.first().copied().unwrap_or(0) as u32,
        },
        ErrorCode::OffsetOutOfRange => BrokerError::OffsetOutOfRange {
            requested: context.first().copied().unwrap_or(0),
            start: context.get(1).copied().unwrap_or(0),
            end: context.get(2).copied().unwrap_or(0),
        },
        ErrorCode::RebalanceInProgress => BrokerError::RebalanceInProgress,
        ErrorCode::InvalidConfig => BrokerError::InvalidConfig(message),
        ErrorCode::Corrupt => BrokerError::Corrupt(message),
        ErrorCode::Io | ErrorCode::BadRequest => BrokerError::Io(std::io::Error::other(message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(NetError::Disconnected.is_transient());
        assert!(NetError::Io(std::io::Error::other("x")).is_transient());
        assert!(NetError::Broker(BrokerError::RebalanceInProgress).is_transient());
        assert!(!NetError::Corrupt("bad".into()).is_transient());
        assert!(!NetError::Broker(BrokerError::UnknownTopic("t".into())).is_transient());
    }

    #[test]
    fn eof_maps_to_disconnected() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(NetError::from(eof), NetError::Disconnected));
    }

    #[test]
    fn broker_errors_round_trip_through_wire_form() {
        let original = BrokerError::OffsetOutOfRange {
            requested: 9,
            start: 2,
            end: 5,
        };
        let (code, message, context) = ErrorCode::from_broker_error(&original);
        let back = broker_error_from_wire(code, message, &context);
        assert!(matches!(
            back,
            BrokerError::OffsetOutOfRange {
                requested: 9,
                start: 2,
                end: 5
            }
        ));
    }
}
