//! The broker server: exposes an in-process [`Broker`] over TCP.
//!
//! One thread accepts connections; each connection gets a handler
//! thread running a strict request/response loop. Handler threads use
//! a short socket read timeout as an idle poll so they notice the
//! shutdown flag even while a client is silent, and long-poll fetches
//! wait on the broker's append condvar in equally short slices.
//!
//! Shutdown is graceful: [`BrokerServer::shutdown`] raises the flag,
//! unblocks the accept loop with a self-connection, and joins every
//! thread. In-flight requests complete; subsequent reads on the dead
//! connections fail client-side and surface as transport errors
//! (which the client reliability layer retries against a reconnect,
//! and gives up on once the server stays gone).

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use strata_obs::{Counter, Gauge, Histogram, Registry};
use strata_pubsub::{Broker, Producer, TopicConfig};

use crate::codec;
use crate::error::{NetError, NetResult};
use crate::protocol::{PartitionInfo, Request, Response, TopicInfo};

/// Tuning knobs for a [`BrokerServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How often idle handler threads wake to check the shutdown
    /// flag. Bounds both shutdown latency and long-poll granularity.
    pub idle_poll: Duration,
    /// Server-side cap on a single fetch batch, applied on top of the
    /// client's `max_records`.
    pub max_fetch_records: usize,
    /// Server-side cap on a fetch's long-poll budget.
    pub max_fetch_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_poll: Duration::from_millis(100),
            max_fetch_records: 10_000,
            max_fetch_wait: Duration::from_secs(30),
        }
    }
}

/// A TCP front-end for a [`Broker`].
///
/// ```no_run
/// use strata_net::server::BrokerServer;
/// use strata_pubsub::Broker;
///
/// let mut server = BrokerServer::bind("127.0.0.1:0", Broker::new())?;
/// println!("serving on {}", server.local_addr());
/// // ... later:
/// server.shutdown();
/// # Ok::<(), strata_net::NetError>(())
/// ```
pub struct BrokerServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

struct Shared {
    broker: Broker,
    config: ServerConfig,
    stop: AtomicBool,
    connections: AtomicU64,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    metrics: ServerMetrics,
}

/// Server-side metrics, registered into the broker's registry at bind
/// so a single `Metrics` request (or `Registry::render`) covers the
/// transport alongside the broker it fronts.
struct ServerMetrics {
    active_connections: Gauge,
    connections_total: Counter,
    create_topic_ns: Histogram,
    produce_ns: Histogram,
    fetch_ns: Histogram,
    commit_offset_ns: Histogram,
    fetch_offset_ns: Histogram,
    metadata_ns: Histogram,
    consumer_lag_ns: Histogram,
    metrics_ns: Histogram,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> Self {
        let request_ns = |op: &str| {
            registry.histogram(
                "net_request_ns",
                "Server-side request handling latency",
                &[("op", op)],
            )
        };
        ServerMetrics {
            active_connections: registry.gauge(
                "net_active_connections",
                "Currently open client connections",
                &[],
            ),
            connections_total: registry.counter(
                "net_connections_total",
                "Connections accepted over the server's lifetime",
                &[],
            ),
            create_topic_ns: request_ns("create_topic"),
            produce_ns: request_ns("produce"),
            fetch_ns: request_ns("fetch"),
            commit_offset_ns: request_ns("commit_offset"),
            fetch_offset_ns: request_ns("fetch_offset"),
            metadata_ns: request_ns("metadata"),
            consumer_lag_ns: request_ns("consumer_lag"),
            metrics_ns: request_ns("metrics"),
        }
    }

    fn for_request(&self, request: &Request) -> &Histogram {
        match request {
            Request::CreateTopic { .. } => &self.create_topic_ns,
            Request::Produce { .. } => &self.produce_ns,
            Request::Fetch { .. } => &self.fetch_ns,
            Request::CommitOffset { .. } => &self.commit_offset_ns,
            Request::FetchOffset { .. } => &self.fetch_offset_ns,
            Request::Metadata { .. } => &self.metadata_ns,
            Request::ConsumerLag { .. } => &self.consumer_lag_ns,
            Request::Metrics => &self.metrics_ns,
        }
    }
}

impl BrokerServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `broker` with default tuning.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn bind(addr: impl ToSocketAddrs, broker: Broker) -> NetResult<Self> {
        Self::bind_with_config(addr, broker, ServerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit tuning.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        broker: Broker,
        config: ServerConfig,
    ) -> NetResult<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = ServerMetrics::new(broker.registry());
        let shared = Arc::new(Shared {
            broker,
            config,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
            metrics,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("strata-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(NetError::Io)?;
        Ok(BrokerServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections accepted over the server's lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Stops accepting, lets in-flight requests finish, and joins all
    /// server threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop: a throwaway connection makes
        // `accept` return so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for BrokerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerServer")
            .field("local_addr", &self.local_addr)
            .field("connections", &self.connections_accepted())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // The shutdown self-connection (or a late client).
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        shared.metrics.connections_total.inc();
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("strata-net-conn".into())
            .spawn(move || handle_connection(stream, conn_shared));
        match handle {
            Ok(handle) => shared.handlers.lock().unwrap().push(handle),
            Err(_) => continue, // Thread spawn failed; drop the stream.
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(shared.config.idle_poll));
    let _ = stream.set_nodelay(true);
    // Failpoints `net.server.recv` / `net.server.send` can sever or
    // delay the connection at an exact byte boundary; transparent
    // passthrough when the chaos registry is disarmed.
    let mut stream = strata_chaos::ChaosStream::new("net.server", stream);
    // One producer per connection so keyless round-robin state is
    // connection-local, like an in-process producer handle.
    let producer = shared.broker.producer();
    shared.metrics.active_connections.add(1);
    while !shared.stop.load(Ordering::SeqCst) {
        let request = match codec::read_request(&mut stream) {
            Ok(request) => request,
            Err(NetError::Io(err))
                if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                continue; // Idle poll tick; re-check the stop flag.
            }
            Err(NetError::Disconnected) => break,
            Err(NetError::Corrupt(msg)) | Err(NetError::Protocol(msg)) => {
                // The frame boundary may be lost; report and close.
                let _ = codec::write_response(
                    &mut stream,
                    &Response::Error {
                        code: crate::protocol::ErrorCode::BadRequest,
                        message: msg,
                        context: vec![],
                    },
                );
                break;
            }
            Err(_) => break,
        };
        let response = serve(&shared, &producer, request);
        if codec::write_response(&mut stream, &response).is_err() {
            break;
        }
    }
    shared.metrics.active_connections.sub(1);
}

/// Executes one request against the broker.
fn serve(shared: &Shared, producer: &Producer, request: Request) -> Response {
    let started = Instant::now();
    let latency = shared.metrics.for_request(&request).clone();
    let broker = &shared.broker;
    let result = match request {
        Request::CreateTopic { topic, partitions } => broker
            .create_topic(topic, TopicConfig::new(partitions))
            .map(|()| Response::Created),
        Request::Produce {
            topic,
            partition,
            record,
        } => match partition {
            Some(partition) => producer
                .send_to_partition(&topic, partition, record)
                .map(|offset| Response::Produced { partition, offset }),
            None => producer
                .send_record(&topic, record)
                .map(|(partition, offset)| Response::Produced { partition, offset }),
        },
        Request::Fetch {
            topic,
            partition,
            offset,
            max_records,
            max_wait_ms,
        } => serve_fetch(shared, &topic, partition, offset, max_records, max_wait_ms),
        Request::CommitOffset {
            group,
            topic,
            partition,
            offset,
        } => broker
            .commit_offset(&group, &topic, partition, offset)
            .map(|()| Response::Committed),
        Request::FetchOffset {
            group,
            topic,
            partition,
        } => Ok(Response::CommittedOffset(
            broker.committed_offset(&group, &topic, partition),
        )),
        Request::Metadata { topics } => serve_metadata(broker, &topics),
        Request::ConsumerLag { group, topic } => {
            broker.consumer_lag(&group, &topic).map(Response::Lag)
        }
        Request::Metrics => Ok(Response::MetricsText(broker.registry().render())),
    };
    let response = result.unwrap_or_else(|err| Response::from_broker_error(&err));
    latency.record_since(started);
    response
}

/// A fetch with a long-poll budget: empty reads wait on the broker's
/// append signal in `idle_poll` slices until data arrives, the budget
/// runs out, or the server stops.
fn serve_fetch(
    shared: &Shared,
    topic: &str,
    partition: u32,
    offset: u64,
    max_records: u32,
    max_wait_ms: u32,
) -> Result<Response, strata_pubsub::Error> {
    let broker = &shared.broker;
    let max_records = (max_records as usize).min(shared.config.max_fetch_records);
    let budget = Duration::from_millis(max_wait_ms as u64).min(shared.config.max_fetch_wait);
    let deadline = Instant::now() + budget;
    let mut seen = 0u64;
    loop {
        let batch = broker.fetch(topic, partition, offset, max_records)?;
        if !batch.is_empty() {
            return Ok(Response::Records(batch));
        }
        let now = Instant::now();
        if now >= deadline || shared.stop.load(Ordering::SeqCst) {
            return Ok(Response::Records(vec![]));
        }
        let wait = (deadline - now).min(shared.config.idle_poll);
        broker.wait_for_appends(&mut seen, wait);
    }
}

fn serve_metadata(broker: &Broker, topics: &[String]) -> Result<Response, strata_pubsub::Error> {
    let names: Vec<String> = if topics.is_empty() {
        broker.topics()
    } else {
        topics.to_vec()
    };
    let mut infos = Vec::with_capacity(names.len());
    for name in names {
        let partition_count = broker.partition_count(&name)?;
        let mut partitions = Vec::with_capacity(partition_count as usize);
        for p in 0..partition_count {
            let (start, end) = broker.offsets(&name, p)?;
            partitions.push(PartitionInfo {
                partition: p,
                start,
                end,
            });
        }
        infos.push(TopicInfo { name, partitions });
    }
    Ok(Response::Metadata(infos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    fn roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
        codec::write_request(stream, request).unwrap();
        codec::read_response(stream).unwrap()
    }

    #[test]
    fn serves_the_full_request_vocabulary() {
        let mut server = BrokerServer::bind("127.0.0.1:0", Broker::new()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        let created = roundtrip(
            &mut stream,
            &Request::CreateTopic {
                topic: "t".into(),
                partitions: 2,
            },
        );
        assert_eq!(created, Response::Created);

        let produced = roundtrip(
            &mut stream,
            &Request::Produce {
                topic: "t".into(),
                partition: Some(1),
                record: strata_pubsub::Record::new(Some("k"), "v"),
            },
        );
        assert_eq!(
            produced,
            Response::Produced {
                partition: 1,
                offset: 0
            }
        );

        let fetched = roundtrip(
            &mut stream,
            &Request::Fetch {
                topic: "t".into(),
                partition: 1,
                offset: 0,
                max_records: 10,
                max_wait_ms: 0,
            },
        );
        match fetched {
            Response::Records(records) => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].record.value.as_ref(), b"v");
            }
            other => panic!("expected records, got {other:?}"),
        }

        assert_eq!(
            roundtrip(
                &mut stream,
                &Request::CommitOffset {
                    group: "g".into(),
                    topic: "t".into(),
                    partition: 1,
                    offset: 1,
                },
            ),
            Response::Committed
        );
        assert_eq!(
            roundtrip(
                &mut stream,
                &Request::FetchOffset {
                    group: "g".into(),
                    topic: "t".into(),
                    partition: 1,
                },
            ),
            Response::CommittedOffset(Some(1))
        );
        assert_eq!(
            roundtrip(
                &mut stream,
                &Request::ConsumerLag {
                    group: "g".into(),
                    topic: "t".into(),
                },
            ),
            Response::Lag(0)
        );

        match roundtrip(&mut stream, &Request::Metadata { topics: vec![] }) {
            Response::Metadata(topics) => {
                assert_eq!(topics.len(), 1);
                assert_eq!(topics[0].name, "t");
                assert_eq!(topics[0].partitions.len(), 2);
                assert_eq!(topics[0].partitions[1].end, 1);
            }
            other => panic!("expected metadata, got {other:?}"),
        }

        match roundtrip(&mut stream, &Request::Metrics) {
            Response::MetricsText(text) => {
                assert!(text.contains("net_active_connections 1"), "{text}");
                assert!(text.contains("net_connections_total 1"), "{text}");
                assert!(
                    text.contains("net_request_ns_count{op=\"produce\"} 1"),
                    "{text}"
                );
                assert!(
                    text.contains("pubsub_topic_records_in_total{topic=\"t\"} 1"),
                    "{text}"
                );
            }
            other => panic!("expected metrics text, got {other:?}"),
        }

        server.shutdown();
    }

    #[test]
    fn broker_errors_travel_as_error_responses() {
        let server = BrokerServer::bind("127.0.0.1:0", Broker::new()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let response = roundtrip(
            &mut stream,
            &Request::Fetch {
                topic: "missing".into(),
                partition: 0,
                offset: 0,
                max_records: 1,
                max_wait_ms: 0,
            },
        );
        assert!(matches!(
            response,
            Response::Error {
                code: ErrorCode::UnknownTopic,
                ..
            }
        ));
    }

    #[test]
    fn long_poll_fetch_waits_for_data() {
        let broker = Broker::new();
        broker.create_topic("t", TopicConfig::new(1)).unwrap();
        let producer = broker.producer();
        let server = BrokerServer::bind("127.0.0.1:0", broker).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        let feeder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            producer.send("t", None, "late").unwrap();
        });
        let start = Instant::now();
        let response = roundtrip(
            &mut stream,
            &Request::Fetch {
                topic: "t".into(),
                partition: 0,
                offset: 0,
                max_records: 10,
                max_wait_ms: 5_000,
            },
        );
        feeder.join().unwrap();
        match response {
            Response::Records(records) => assert_eq!(records.len(), 1),
            other => panic!("expected records, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "returned on data, not on budget"
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_threads() {
        let mut server = BrokerServer::bind("127.0.0.1:0", Broker::new()).unwrap();
        let addr = server.local_addr();
        let _stream = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly on some platforms; a write
                // must fail either way since no accept loop remains.
                true
            }
        );
    }
}
