//! Stream framing: length-prefixed, CRC-checked frames over any
//! `Read`/`Write` pair (in practice a `TcpStream`).
//!
//! The transport reuses the segment-file frame shape of
//! [`strata_pubsub::wire`]:
//!
//! ```text
//! ┌──────────────┬───────────────┬──────────────┐
//! │ body_len u32 │ body (…)      │ crc32 u32    │   little-endian
//! └──────────────┴───────────────┴──────────────┘
//! ```
//!
//! with the body being an encoded [`Request`](crate::protocol::Request)
//! or [`Response`](crate::protocol::Response) rather than a stored
//! record. The same CRC-32 routine guards data at rest and in flight.

use std::io::{Read, Write};

use strata_pubsub::checksum::crc32;

use crate::error::{NetError, NetResult};
use crate::protocol::{Request, Response};

/// Upper bound on a frame body, protecting both sides from a
/// corrupted (or hostile) length prefix allocating gigabytes.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Writes one frame (length, body, CRC) and flushes the stream.
///
/// # Errors
///
/// [`NetError::Io`]/[`NetError::Disconnected`] on socket failure;
/// [`NetError::Protocol`] if `body` exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> NetResult<()> {
    if body.len() > MAX_FRAME_BYTES {
        return Err(NetError::Protocol(format!(
            "frame body of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            body.len()
        )));
    }
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame.extend_from_slice(&crc32(body).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame and returns its verified body.
///
/// A clean EOF *before the first length byte* is reported as
/// [`NetError::Disconnected`]; EOF mid-frame is [`NetError::Corrupt`]
/// (the peer died mid-send, the frame is unusable either way).
pub fn read_frame(r: &mut impl Read) -> NetResult<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    read_exact_or_disconnect(r, &mut len_bytes)?;
    let body_len = u32::from_le_bytes(len_bytes) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(NetError::Corrupt(format!(
            "frame length {body_len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)
        .map_err(|err| truncated(err, "body"))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|err| truncated(err, "checksum"))?;
    let stored_crc = u32::from_le_bytes(crc_bytes);
    let actual_crc = crc32(&body);
    if stored_crc != actual_crc {
        return Err(NetError::Corrupt(format!(
            "crc mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    Ok(body)
}

/// `read_exact` that maps EOF at the frame boundary to
/// [`NetError::Disconnected`] — the peer hung up between messages,
/// which is an orderly close, not corruption.
fn read_exact_or_disconnect(r: &mut impl Read, buf: &mut [u8]) -> NetResult<()> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => Err(NetError::Disconnected),
        Err(err) => Err(err.into()),
    }
}

fn truncated(err: std::io::Error, part: &str) -> NetError {
    if err.kind() == std::io::ErrorKind::UnexpectedEof {
        NetError::Corrupt(format!("connection closed mid-frame (reading {part})"))
    } else {
        err.into()
    }
}

/// Writes an encoded request as one frame.
pub fn write_request(w: &mut impl Write, request: &Request) -> NetResult<()> {
    write_frame(w, &request.encode())
}

/// Reads and decodes one request frame.
pub fn read_request(r: &mut impl Read) -> NetResult<Request> {
    Request::decode(&read_frame(r)?)
}

/// Writes an encoded response as one frame.
pub fn write_response(w: &mut impl Write, response: &Response) -> NetResult<()> {
    write_frame(w, &response.encode())
}

/// Reads and decodes one response frame.
pub fn read_response(r: &mut impl Read) -> NetResult<Response> {
    Response::decode(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xFFu8; 1000]).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), vec![0xFFu8; 1000]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        buf[7] ^= 0x40;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_mid_frame_is_corrupt_not_disconnect() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        buf.truncate(buf.len() - 6);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(NetError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_body_is_refused_at_write_time() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let body = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            write_frame(&mut NullSink, &body),
            Err(NetError::Protocol(_))
        ));
    }

    #[test]
    fn request_and_response_helpers_round_trip() {
        let request = Request::Metadata {
            topics: vec!["t".into()],
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &request).unwrap();
        assert_eq!(read_request(&mut Cursor::new(&buf)).unwrap(), request);

        let response = Response::Lag(7);
        let mut buf = Vec::new();
        write_response(&mut buf, &response).unwrap();
        assert_eq!(read_response(&mut Cursor::new(&buf)).unwrap(), response);
    }
}
