//! The request/response protocol spoken between [`BrokerServer`]
//! (crate::server::BrokerServer) and the remote clients.
//!
//! Messages travel inside the CRC frame of [`codec`](crate::codec);
//! this module defines what the frame bodies mean:
//!
//! ```text
//! body := version u8 · message_type u8 · payload
//! ```
//!
//! Payload scalars are little-endian, strings are `u16 len · utf-8`,
//! and records reuse the `strata-pubsub` segment framing
//! ([`wire::encode_frame`]) verbatim — a record's bytes are identical
//! at rest and in flight, covered by the same CRC-32.
//!
//! The protocol is strictly blocking request/response per connection:
//! every request produces exactly one response, in order. There is no
//! correlation id; pipelining is achieved with multiple connections.

use strata_pubsub::record::{Record, StoredRecord};
use strata_pubsub::wire::{self, Reader};
use strata_pubsub::Error as BrokerError;

use crate::error::{NetError, NetResult};

/// Protocol version carried in every message body.
pub const PROTOCOL_VERSION: u8 = 1;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Creates a memory-backed topic with `partitions` partitions.
    CreateTopic {
        /// Topic name.
        topic: String,
        /// Partition count (≥ 1).
        partitions: u32,
    },
    /// Appends a record. With `partition: None` the server picks the
    /// partition (key hash / round-robin, like the in-process
    /// producer); `Some(p)` bypasses the partitioner.
    Produce {
        /// Target topic.
        topic: String,
        /// Explicit partition, or `None` for server-side choice.
        partition: Option<u32>,
        /// The record to append.
        record: Record,
    },
    /// Reads up to `max_records` from one partition at `offset`,
    /// long-polling up to `max_wait_ms` when the log has no new data.
    Fetch {
        /// Topic to read.
        topic: String,
        /// Partition index.
        partition: u32,
        /// First offset wanted.
        offset: u64,
        /// Batch size cap.
        max_records: u32,
        /// Long-poll budget; 0 returns immediately.
        max_wait_ms: u32,
    },
    /// Commits `offset` as `(group, topic, partition)`'s resume point.
    CommitOffset {
        /// Consumer group.
        group: String,
        /// Topic.
        topic: String,
        /// Partition index.
        partition: u32,
        /// Next offset the group should read.
        offset: u64,
    },
    /// Asks for the committed offset of `(group, topic, partition)`.
    FetchOffset {
        /// Consumer group.
        group: String,
        /// Topic.
        topic: String,
        /// Partition index.
        partition: u32,
    },
    /// Asks for topic metadata: partition counts and per-partition
    /// `[start, end)` offsets. Empty `topics` means "all topics".
    Metadata {
        /// Topics of interest, or empty for all.
        topics: Vec<String>,
    },
    /// Asks for the total backlog of `group` on `topic`.
    ConsumerLag {
        /// Consumer group.
        group: String,
        /// Topic.
        topic: String,
    },
    /// Asks for a Prometheus text dump of the server's metrics
    /// registry.
    Metrics,
}

/// Per-partition metadata in a [`Response::Metadata`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Partition index.
    pub partition: u32,
    /// First stored offset.
    pub start: u64,
    /// One past the last stored offset.
    pub end: u64,
}

/// Per-topic metadata in a [`Response::Metadata`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicInfo {
    /// Topic name.
    pub name: String,
    /// One entry per partition, in index order.
    pub partitions: Vec<PartitionInfo>,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Topic created.
    Created,
    /// Record appended at `(partition, offset)`.
    Produced {
        /// Partition the record landed in.
        partition: u32,
        /// Offset assigned to the record.
        offset: u64,
    },
    /// A fetch's batch (possibly empty after the wait budget).
    Records(Vec<StoredRecord>),
    /// Offset commit acknowledged.
    Committed,
    /// The committed offset asked for, if one exists.
    CommittedOffset(Option<u64>),
    /// Topic metadata.
    Metadata(Vec<TopicInfo>),
    /// Consumer lag of a group on a topic.
    Lag(u64),
    /// A Prometheus text dump of the server's metrics registry.
    MetricsText(String),
    /// The request failed broker-side.
    Error {
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail (or the variant's string payload).
        message: String,
        /// Numeric detail (offsets, partition index) so structured
        /// errors survive the wire.
        context: Vec<u64>,
    },
}

/// Wire error categories, mirroring [`strata_pubsub::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// See [`strata_pubsub::Error::UnknownTopic`].
    UnknownTopic = 1,
    /// See [`strata_pubsub::Error::TopicExists`].
    TopicExists = 2,
    /// See [`strata_pubsub::Error::UnknownPartition`].
    UnknownPartition = 3,
    /// See [`strata_pubsub::Error::OffsetOutOfRange`].
    OffsetOutOfRange = 4,
    /// See [`strata_pubsub::Error::RebalanceInProgress`].
    RebalanceInProgress = 5,
    /// See [`strata_pubsub::Error::InvalidConfig`].
    InvalidConfig = 6,
    /// See [`strata_pubsub::Error::Corrupt`].
    Corrupt = 7,
    /// See [`strata_pubsub::Error::Io`].
    Io = 8,
    /// The request itself was malformed (client bug).
    BadRequest = 9,
}

impl ErrorCode {
    /// Decodes a wire error code.
    pub fn from_u16(value: u16) -> Option<Self> {
        Some(match value {
            1 => ErrorCode::UnknownTopic,
            2 => ErrorCode::TopicExists,
            3 => ErrorCode::UnknownPartition,
            4 => ErrorCode::OffsetOutOfRange,
            5 => ErrorCode::RebalanceInProgress,
            6 => ErrorCode::InvalidConfig,
            7 => ErrorCode::Corrupt,
            8 => ErrorCode::Io,
            9 => ErrorCode::BadRequest,
            _ => return None,
        })
    }

    /// Flattens a broker error into `(code, message, context)` for
    /// the wire. Inverse of
    /// [`broker_error_from_wire`](crate::error::broker_error_from_wire).
    pub fn from_broker_error(err: &BrokerError) -> (Self, String, Vec<u64>) {
        match err {
            BrokerError::UnknownTopic(name) => (ErrorCode::UnknownTopic, name.clone(), vec![]),
            BrokerError::TopicExists(name) => (ErrorCode::TopicExists, name.clone(), vec![]),
            BrokerError::UnknownPartition { topic, partition } => (
                ErrorCode::UnknownPartition,
                topic.clone(),
                vec![*partition as u64],
            ),
            BrokerError::OffsetOutOfRange {
                requested,
                start,
                end,
            } => (
                ErrorCode::OffsetOutOfRange,
                String::new(),
                vec![*requested, *start, *end],
            ),
            BrokerError::RebalanceInProgress => {
                (ErrorCode::RebalanceInProgress, String::new(), vec![])
            }
            BrokerError::InvalidConfig(msg) => (ErrorCode::InvalidConfig, msg.clone(), vec![]),
            BrokerError::Corrupt(msg) => (ErrorCode::Corrupt, msg.clone(), vec![]),
            BrokerError::Io(err) => (ErrorCode::Io, err.to_string(), vec![]),
            other => (ErrorCode::Io, other.to_string(), vec![]),
        }
    }
}

// ───────────────────────── encoding helpers ─────────────────────────

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn read_string(r: &mut Reader<'_>) -> NetResult<String> {
    let len = r.u16()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| NetError::Corrupt("string field is not utf-8".into()))
}

/// Long-string encoding (`u32 len · utf-8`) for payloads that can
/// exceed the `u16` cap of [`put_string`], such as metrics dumps.
fn put_long_string(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn read_long_string(r: &mut Reader<'_>) -> NetResult<String> {
    let len = r.u32()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| NetError::Corrupt("string field is not utf-8".into()))
}

/// Encodes a record without an offset (the `Produce` payload) by
/// reusing the stored-record framing with a zero placeholder offset.
fn put_record(buf: &mut Vec<u8>, record: &Record) {
    let stored = StoredRecord {
        offset: 0,
        record: record.clone(),
    };
    wire::encode_frame(&stored, buf);
}

fn read_stored_record(r: &mut Reader<'_>) -> NetResult<StoredRecord> {
    // Frames are self-delimiting: peek the body length to know the
    // total frame size, then hand that slice to the wire decoder.
    let remaining = r.bytes(r.remaining())?;
    let (stored, consumed) = wire::decode_frame(remaining)?;
    // Rewind past what decode actually used.
    *r = Reader::new(&remaining[consumed..]);
    Ok(stored)
}

// ───────────────────────── message encoding ─────────────────────────

const REQ_CREATE_TOPIC: u8 = 1;
const REQ_PRODUCE: u8 = 2;
const REQ_FETCH: u8 = 3;
const REQ_COMMIT_OFFSET: u8 = 4;
const REQ_FETCH_OFFSET: u8 = 5;
const REQ_METADATA: u8 = 6;
const REQ_CONSUMER_LAG: u8 = 7;
const REQ_METRICS: u8 = 8;

const RESP_CREATED: u8 = 1;
const RESP_PRODUCED: u8 = 2;
const RESP_RECORDS: u8 = 3;
const RESP_COMMITTED: u8 = 4;
const RESP_COMMITTED_OFFSET: u8 = 5;
const RESP_METADATA: u8 = 6;
const RESP_LAG: u8 = 7;
const RESP_ERROR: u8 = 8;
const RESP_METRICS_TEXT: u8 = 9;

/// Explicit-partition marker in `Produce` (1 = explicit, 0 = auto).
const PARTITION_EXPLICIT: u8 = 1;

impl Request {
    /// Encodes this request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![PROTOCOL_VERSION];
        match self {
            Request::CreateTopic { topic, partitions } => {
                buf.push(REQ_CREATE_TOPIC);
                put_string(&mut buf, topic);
                put_u32(&mut buf, *partitions);
            }
            Request::Produce {
                topic,
                partition,
                record,
            } => {
                buf.push(REQ_PRODUCE);
                put_string(&mut buf, topic);
                match partition {
                    Some(p) => {
                        buf.push(PARTITION_EXPLICIT);
                        put_u32(&mut buf, *p);
                    }
                    None => {
                        buf.push(0);
                        put_u32(&mut buf, 0);
                    }
                }
                put_record(&mut buf, record);
            }
            Request::Fetch {
                topic,
                partition,
                offset,
                max_records,
                max_wait_ms,
            } => {
                buf.push(REQ_FETCH);
                put_string(&mut buf, topic);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *offset);
                put_u32(&mut buf, *max_records);
                put_u32(&mut buf, *max_wait_ms);
            }
            Request::CommitOffset {
                group,
                topic,
                partition,
                offset,
            } => {
                buf.push(REQ_COMMIT_OFFSET);
                put_string(&mut buf, group);
                put_string(&mut buf, topic);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *offset);
            }
            Request::FetchOffset {
                group,
                topic,
                partition,
            } => {
                buf.push(REQ_FETCH_OFFSET);
                put_string(&mut buf, group);
                put_string(&mut buf, topic);
                put_u32(&mut buf, *partition);
            }
            Request::Metadata { topics } => {
                buf.push(REQ_METADATA);
                put_u16(&mut buf, topics.len() as u16);
                for topic in topics {
                    put_string(&mut buf, topic);
                }
            }
            Request::ConsumerLag { group, topic } => {
                buf.push(REQ_CONSUMER_LAG);
                put_string(&mut buf, group);
                put_string(&mut buf, topic);
            }
            Request::Metrics => buf.push(REQ_METRICS),
        }
        buf
    }

    /// Decodes a request from a frame body.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on version/type mismatches,
    /// [`NetError::Corrupt`] on truncated payloads.
    pub fn decode(body: &[u8]) -> NetResult<Self> {
        let mut r = Reader::new(body);
        let (version, kind) = header(&mut r)?;
        if version != PROTOCOL_VERSION {
            return Err(NetError::Protocol(format!(
                "unsupported protocol version {version}"
            )));
        }
        let request = match kind {
            REQ_CREATE_TOPIC => Request::CreateTopic {
                topic: read_string(&mut r)?,
                partitions: r.u32()?,
            },
            REQ_PRODUCE => {
                let topic = read_string(&mut r)?;
                let explicit = r.bytes(1)?[0] == PARTITION_EXPLICIT;
                let partition = r.u32()?;
                let stored = read_stored_record(&mut r)?;
                Request::Produce {
                    topic,
                    partition: explicit.then_some(partition),
                    record: stored.record,
                }
            }
            REQ_FETCH => Request::Fetch {
                topic: read_string(&mut r)?,
                partition: r.u32()?,
                offset: r.u64()?,
                max_records: r.u32()?,
                max_wait_ms: r.u32()?,
            },
            REQ_COMMIT_OFFSET => Request::CommitOffset {
                group: read_string(&mut r)?,
                topic: read_string(&mut r)?,
                partition: r.u32()?,
                offset: r.u64()?,
            },
            REQ_FETCH_OFFSET => Request::FetchOffset {
                group: read_string(&mut r)?,
                topic: read_string(&mut r)?,
                partition: r.u32()?,
            },
            REQ_METADATA => {
                let count = r.u16()? as usize;
                let mut topics = Vec::with_capacity(count);
                for _ in 0..count {
                    topics.push(read_string(&mut r)?);
                }
                Request::Metadata { topics }
            }
            REQ_CONSUMER_LAG => Request::ConsumerLag {
                group: read_string(&mut r)?,
                topic: read_string(&mut r)?,
            },
            REQ_METRICS => Request::Metrics,
            other => return Err(NetError::Protocol(format!("unknown request type {other}"))),
        };
        expect_consumed(&r)?;
        Ok(request)
    }
}

impl Response {
    /// Encodes this response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![PROTOCOL_VERSION];
        match self {
            Response::Created => buf.push(RESP_CREATED),
            Response::Produced { partition, offset } => {
                buf.push(RESP_PRODUCED);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *offset);
            }
            Response::Records(records) => {
                buf.push(RESP_RECORDS);
                put_u32(&mut buf, records.len() as u32);
                for stored in records {
                    wire::encode_frame(stored, &mut buf);
                }
            }
            Response::Committed => buf.push(RESP_COMMITTED),
            Response::CommittedOffset(offset) => {
                buf.push(RESP_COMMITTED_OFFSET);
                buf.push(offset.is_some() as u8);
                put_u64(&mut buf, offset.unwrap_or(0));
            }
            Response::Metadata(topics) => {
                buf.push(RESP_METADATA);
                put_u16(&mut buf, topics.len() as u16);
                for topic in topics {
                    put_string(&mut buf, &topic.name);
                    put_u32(&mut buf, topic.partitions.len() as u32);
                    for p in &topic.partitions {
                        put_u32(&mut buf, p.partition);
                        put_u64(&mut buf, p.start);
                        put_u64(&mut buf, p.end);
                    }
                }
            }
            Response::Lag(lag) => {
                buf.push(RESP_LAG);
                put_u64(&mut buf, *lag);
            }
            Response::MetricsText(text) => {
                buf.push(RESP_METRICS_TEXT);
                put_long_string(&mut buf, text);
            }
            Response::Error {
                code,
                message,
                context,
            } => {
                buf.push(RESP_ERROR);
                put_u16(&mut buf, *code as u16);
                put_string(&mut buf, message);
                buf.push(context.len() as u8);
                for value in context {
                    put_u64(&mut buf, *value);
                }
            }
        }
        buf
    }

    /// Decodes a response from a frame body.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on version/type mismatches,
    /// [`NetError::Corrupt`] on truncated payloads.
    pub fn decode(body: &[u8]) -> NetResult<Self> {
        let mut r = Reader::new(body);
        let (version, kind) = header(&mut r)?;
        if version != PROTOCOL_VERSION {
            return Err(NetError::Protocol(format!(
                "unsupported protocol version {version}"
            )));
        }
        let response = match kind {
            RESP_CREATED => Response::Created,
            RESP_PRODUCED => Response::Produced {
                partition: r.u32()?,
                offset: r.u64()?,
            },
            RESP_RECORDS => {
                let count = r.u32()? as usize;
                let mut records = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    records.push(read_stored_record(&mut r)?);
                }
                Response::Records(records)
            }
            RESP_COMMITTED => Response::Committed,
            RESP_COMMITTED_OFFSET => {
                let present = r.bytes(1)?[0] != 0;
                let offset = r.u64()?;
                Response::CommittedOffset(present.then_some(offset))
            }
            RESP_METADATA => {
                let count = r.u16()? as usize;
                let mut topics = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = read_string(&mut r)?;
                    let partition_count = r.u32()? as usize;
                    let mut partitions = Vec::with_capacity(partition_count.min(4096));
                    for _ in 0..partition_count {
                        partitions.push(PartitionInfo {
                            partition: r.u32()?,
                            start: r.u64()?,
                            end: r.u64()?,
                        });
                    }
                    topics.push(TopicInfo { name, partitions });
                }
                Response::Metadata(topics)
            }
            RESP_LAG => Response::Lag(r.u64()?),
            RESP_METRICS_TEXT => Response::MetricsText(read_long_string(&mut r)?),
            RESP_ERROR => {
                let raw_code = r.u16()?;
                let code = ErrorCode::from_u16(raw_code)
                    .ok_or_else(|| NetError::Protocol(format!("unknown error code {raw_code}")))?;
                let message = read_string(&mut r)?;
                let count = r.bytes(1)?[0] as usize;
                let mut context = Vec::with_capacity(count);
                for _ in 0..count {
                    context.push(r.u64()?);
                }
                Response::Error {
                    code,
                    message,
                    context,
                }
            }
            other => return Err(NetError::Protocol(format!("unknown response type {other}"))),
        };
        expect_consumed(&r)?;
        Ok(response)
    }

    /// Converts a broker error into its wire response.
    pub fn from_broker_error(err: &BrokerError) -> Self {
        let (code, message, context) = ErrorCode::from_broker_error(err);
        Response::Error {
            code,
            message,
            context,
        }
    }
}

fn header(r: &mut Reader<'_>) -> NetResult<(u8, u8)> {
    let bytes = r.bytes(2)?;
    Ok((bytes[0], bytes[1]))
}

fn expect_consumed(r: &Reader<'_>) -> NetResult<()> {
    if r.remaining() != 0 {
        return Err(NetError::Corrupt(format!(
            "{} trailing bytes in message body",
            r.remaining()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::CreateTopic {
                topic: "ot-images".into(),
                partitions: 4,
            },
            Request::Produce {
                topic: "t".into(),
                partition: Some(2),
                record: Record::new(Some("k"), "v").with_header("h", "x"),
            },
            Request::Produce {
                topic: "t".into(),
                partition: None,
                record: Record::new(None::<Vec<u8>>, vec![1u8, 2, 3]),
            },
            Request::Fetch {
                topic: "t".into(),
                partition: 1,
                offset: 42,
                max_records: 100,
                max_wait_ms: 250,
            },
            Request::CommitOffset {
                group: "g".into(),
                topic: "t".into(),
                partition: 0,
                offset: 7,
            },
            Request::FetchOffset {
                group: "g".into(),
                topic: "t".into(),
                partition: 0,
            },
            Request::Metadata { topics: vec![] },
            Request::Metadata {
                topics: vec!["a".into(), "b".into()],
            },
            Request::ConsumerLag {
                group: "g".into(),
                topic: "t".into(),
            },
            Request::Metrics,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Created,
            Response::Produced {
                partition: 3,
                offset: 99,
            },
            Response::Records(vec![
                StoredRecord {
                    offset: 5,
                    record: Record::new(Some("k"), "v").with_timestamp(123),
                },
                StoredRecord {
                    offset: 6,
                    record: Record::new(None::<Vec<u8>>, "w"),
                },
            ]),
            Response::Records(vec![]),
            Response::Committed,
            Response::CommittedOffset(Some(17)),
            Response::CommittedOffset(None),
            Response::Metadata(vec![TopicInfo {
                name: "t".into(),
                partitions: vec![PartitionInfo {
                    partition: 0,
                    start: 2,
                    end: 9,
                }],
            }]),
            Response::Lag(1234),
            Response::MetricsText("# TYPE x counter\nx 1\n".into()),
            // Metrics dumps routinely exceed the u16 short-string cap;
            // the long-string framing must carry them intact.
            Response::MetricsText("m".repeat(100_000)),
            Response::Error {
                code: ErrorCode::OffsetOutOfRange,
                message: String::new(),
                context: vec![9, 2, 5],
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut body = Request::Metadata { topics: vec![] }.encode();
        body[0] = 99;
        assert!(matches!(Request::decode(&body), Err(NetError::Protocol(_))));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = Response::Committed.encode();
        body.push(0xAB);
        assert!(matches!(Response::decode(&body), Err(NetError::Corrupt(_))));
    }

    #[test]
    fn unknown_types_are_rejected() {
        assert!(matches!(
            Request::decode(&[PROTOCOL_VERSION, 200]),
            Err(NetError::Protocol(_))
        ));
        assert!(matches!(
            Response::decode(&[PROTOCOL_VERSION, 200]),
            Err(NetError::Protocol(_))
        ));
    }
}
