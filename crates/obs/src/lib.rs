//! Unified observability primitives for the STRATA stack.
//!
//! The paper's entire evaluation is latency and throughput measured
//! *inside* the pipeline, so every layer of this workspace records
//! into one shared substrate:
//!
//! - [`Counter`] — a monotone event count (items, bytes, requests).
//! - [`Gauge`] — a signed instantaneous value (queue depth, open
//!   connections, memtable bytes).
//! - [`Histogram`] — a fixed 65-bucket log₂ histogram for latency
//!   and size distributions, with [`HistogramSnapshot`] quantiles
//!   (p50/p95/p99/max).
//! - [`Registry`] — a named, labelled collection of the above that
//!   renders the Prometheus text exposition format.
//!
//! The hot path is lock-free: every `inc`/`record` is a handful of
//! relaxed atomic adds on `Arc`-shared cells, so operators can record
//! per-item without a mutex in the data plane. The registry's mutex
//! is touched only at registration and render time.
//!
//! ```
//! use strata_obs::Registry;
//!
//! let registry = Registry::new();
//! let items = registry.counter("items_total", "Items processed", &[("node", "map")]);
//! let latency = registry.histogram("process_ns", "Per-item latency", &[]);
//! items.inc();
//! latency.record(1_200);
//! let text = registry.render();
//! assert!(text.contains("items_total{node=\"map\"} 1"));
//! ```

#![forbid(unsafe_code)]

mod histogram;
mod metrics;
mod registry;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
