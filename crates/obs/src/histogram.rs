//! A fixed-bucket log₂ histogram for latency and size distributions.
//!
//! Values are `u64` (nanoseconds by convention for latency metrics —
//! names carry a `_ns` suffix). Bucket `0` holds exactly the value
//! `0`; bucket `i` (for `i ≥ 1`) holds values in `[2^(i-1), 2^i)`,
//! so the 65 buckets cover the full `u64` range with ≤ 2× relative
//! quantile error — plenty for the paper's p50/p95/p99 tables, and
//! cheap enough (one `fetch_add` into a fixed array) to record per
//! item on the data plane.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

#[derive(Debug)]
struct Cells {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log₂ histogram. Clones share the same cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<Cells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: `0` for zero, else `64 - leading_zeros`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket: `2^i - 1` (bucket 0 holds 0).
#[inline]
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            cells: Arc::new(Cells {
                buckets: [0u64; BUCKETS].map(AtomicU64::new),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. Lock-free: three relaxed atomics.
    #[inline]
    pub fn record(&self, value: u64) {
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        self.cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since `started`.
    #[inline]
    pub fn record_since(&self, started: Instant) {
        self.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the distribution.
    ///
    /// Buckets are read individually with relaxed loads, so a snapshot
    /// taken concurrently with recording may be mid-update — fine for
    /// monitoring, which only ever sees a recent consistent-enough
    /// view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, cell) in buckets.iter_mut().zip(self.cells.buckets.iter()) {
            *slot = cell.load(Ordering::Relaxed);
            count += *slot;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.cells.sum.load(Ordering::Relaxed),
            max: self.cells.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a [`Histogram`], with quantile estimates.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all recorded values, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Per-bucket counts (bucket `i` covers `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// An upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Returns the inclusive upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q * count)`, capped at the exact
    /// recorded maximum — so the estimate overshoots by at most 2×
    /// and `quantile(1.0) == max()`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.buckets()[0], 1);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn bucket_bounds_are_half_open_powers_of_two() {
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_cap_at_exact_max() {
        let h = Histogram::new();
        h.record(1000);
        let snap = h.snapshot();
        // Bucket upper bound is 1023, but the true max is 1000.
        assert_eq!(snap.p50(), 1000);
        assert_eq!(snap.max(), 1000);
    }

    #[test]
    fn mean_and_sum_are_exact() {
        let h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.sum(), 60);
        assert_eq!(snap.mean(), 20);
        assert_eq!(snap.count(), 3);
    }
}
