//! Scalar metric handles: counters and gauges.
//!
//! Handles are cheap `Arc` clones over a single atomic cell; every
//! clone records into the same cell, so a handle can be registered in
//! a [`Registry`](crate::Registry) once and carried into hot loops by
//! value. All operations use relaxed ordering: metrics are statistics,
//! not synchronization.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, open connections).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the current value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
        let g2 = g.clone();
        g2.set(0);
        assert_eq!(g.get(), 0);
    }
}
