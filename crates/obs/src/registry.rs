//! A named, labelled metric collection with Prometheus exposition.
//!
//! The registry is a `BTreeMap` behind a mutex, touched only at
//! registration and render time — recording goes straight through the
//! lock-free handles. Cloning a `Registry` shares the underlying map,
//! so one registry can be threaded through the broker, the kv store,
//! the SPE queries and the net server, and a single
//! [`render`](Registry::render) dumps the whole process.
//!
//! Exposition follows the Prometheus text format: families sorted by
//! name, one `# HELP`/`# TYPE` pair per family, label values escaped
//! (`\\`, `\"`, `\n`), histograms expanded into cumulative
//! `_bucket{le="..."}` series plus `_sum` and `_count`. The output is
//! deterministic for a given set of recorded values, which is what
//! lets the golden-file test pin it down.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::bucket_upper_bound;
use crate::{Counter, Gauge, Histogram, BUCKETS};

/// Metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    help: String,
    handle: Handle,
}

/// A shared collection of named metrics. Clones share the same map.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<Key, Entry>>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name` + `labels`,
    /// creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the same name + labels is already registered as a
    /// different metric type — that is a programming error, not a
    /// runtime condition.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let entry = self.get_or_insert(name, help, labels, || Handle::Counter(Counter::new()));
        match entry {
            Handle::Counter(c) => c,
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Returns the gauge registered under `name` + `labels`, creating
    /// it on first use. Panics on a type clash, like
    /// [`counter`](Registry::counter).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let entry = self.get_or_insert(name, help, labels, || Handle::Gauge(Gauge::new()));
        match entry {
            Handle::Gauge(g) => g,
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Returns the histogram registered under `name` + `labels`,
    /// creating it on first use. Panics on a type clash, like
    /// [`counter`](Registry::counter).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let entry = self.get_or_insert(name, help, labels, || Handle::Histogram(Histogram::new()));
        match entry {
            Handle::Histogram(h) => h,
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Registers a pre-existing counter handle (replacing any previous
    /// registration under the same name + labels). Used by components
    /// that create their handles before a registry exists.
    pub fn register_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], c: &Counter) {
        self.insert(name, help, labels, Handle::Counter(c.clone()));
    }

    /// Registers a pre-existing gauge handle, replacing any previous
    /// registration under the same name + labels.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], g: &Gauge) {
        self.insert(name, help, labels, Handle::Gauge(g.clone()));
    }

    /// Registers a pre-existing histogram handle, replacing any
    /// previous registration under the same name + labels.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &Histogram,
    ) {
        self.insert(name, help, labels, Handle::Histogram(h.clone()));
    }

    fn insert(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        let key = Key {
            name: name.to_string(),
            labels: owned_labels(labels),
        };
        self.inner.lock().insert(
            key,
            Entry {
                help: help.to_string(),
                handle,
            },
        );
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let key = Key {
            name: name.to_string(),
            labels: owned_labels(labels),
        };
        let mut map = self.inner.lock();
        map.entry(key)
            .or_insert_with(|| Entry {
                help: help.to_string(),
                handle: make(),
            })
            .handle
            .clone()
    }

    /// Renders the Prometheus text exposition format.
    ///
    /// Families are sorted by name; within a family, label sets are
    /// sorted. The process-wide `chaos_faults_total` counter (from
    /// `strata-chaos`) is folded in at its sorted position so fault
    /// injection shows up in the same dump as the latencies it causes.
    pub fn render(&self) -> String {
        // help text, exposition type, and (label set, rendered body)
        // per series, keyed by family name.
        type Family = (String, &'static str, Vec<(String, String)>);
        let map = self.inner.lock();
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        for (key, entry) in map.iter() {
            let labels = format_labels(&key.labels);
            let body = render_value(&key.name, &labels, &key.labels, &entry.handle);
            families
                .entry(key.name.clone())
                .or_insert_with(|| (entry.help.clone(), entry.handle.type_name(), Vec::new()))
                .2
                .push((labels, body));
        }
        drop(map);
        families.entry("chaos_faults_total".to_string()).or_insert((
            "Total faults fired by the strata-chaos failpoint registry".to_string(),
            "counter",
            vec![(
                String::new(),
                format!("chaos_faults_total {}\n", strata_chaos::total_fired()),
            )],
        ));

        let mut out = String::new();
        for (name, (help, type_name, series)) in families {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&help));
            let _ = writeln!(out, "# TYPE {name} {type_name}");
            for (_, body) in series {
                out.push_str(&body);
            }
        }
        out
    }
}

/// Renders one metric's sample lines (ends with a newline).
fn render_value(
    name: &str,
    formatted_labels: &str,
    labels: &[(String, String)],
    handle: &Handle,
) -> String {
    match handle {
        Handle::Counter(c) => format!("{name}{formatted_labels} {}\n", c.get()),
        Handle::Gauge(g) => format!("{name}{formatted_labels} {}\n", g.get()),
        Handle::Histogram(h) => {
            let snap = h.snapshot();
            let mut out = String::new();
            let highest = (0..BUCKETS).rev().find(|&i| snap.buckets()[i] > 0);
            let mut cumulative = 0u64;
            if let Some(highest) = highest {
                for (i, &n) in snap.buckets().iter().enumerate().take(highest + 1) {
                    cumulative += n;
                    let le = bucket_upper_bound(i);
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        with_le(labels, &le.to_string())
                    );
                }
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                with_le(labels, "+Inf"),
                snap.count()
            );
            let _ = writeln!(out, "{name}_sum{formatted_labels} {}", snap.sum());
            let _ = writeln!(out, "{name}_count{formatted_labels} {}", snap.count());
            out
        }
    }
}

/// Formats a label set as `{k="v",...}`, empty string when no labels.
fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Formats labels plus the histogram `le` bound.
fn with_le(labels: &[(String, String)], le: &str) -> String {
    let mut out = String::from("{");
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{}\",", escape_label(v));
    }
    let _ = write!(out, "le=\"{le}\"}}");
    out
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a help string: backslash, newline.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[]);
        let b = r.counter("x_total", "ignored on re-get", &[]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("node", "a")]);
        let b = r.counter("x_total", "x", &[("node", "b")]);
        a.inc();
        assert_eq!(b.get(), 0);
        let text = r.render();
        assert!(text.contains("x_total{node=\"a\"} 1"));
        assert!(text.contains("x_total{node=\"b\"} 0"));
    }

    #[test]
    fn label_order_is_canonical() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x_total", "x", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split the series");
        assert!(r.render().contains("x_total{a=\"1\",b=\"2\"} 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_clash_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "x", &[]);
        let _ = r.gauge("x", "x", &[]);
    }

    #[test]
    fn chaos_counter_is_always_present() {
        let text = Registry::new().render();
        assert!(text.contains("# TYPE chaos_faults_total counter"));
        assert!(text.contains("chaos_faults_total "));
    }

    #[test]
    fn render_sorts_families_by_name() {
        let r = Registry::new();
        let _ = r.counter("zz_total", "z", &[]);
        let _ = r.gauge("aa_depth", "a", &[]);
        let text = r.render();
        let aa = text.find("# TYPE aa_depth").unwrap();
        let chaos = text.find("# TYPE chaos_faults_total").unwrap();
        let zz = text.find("# TYPE zz_total").unwrap();
        assert!(
            aa < chaos && chaos < zz,
            "families sorted, chaos merged in place"
        );
    }
}
