//! Golden-file test of the Prometheus text exposition: stable family
//! ordering, correct `# TYPE` lines, label escaping, and histogram
//! bucket expansion are all pinned byte-for-byte.
//!
//! Runs in its own test binary so no chaos scenario from another
//! suite can perturb the `chaos_faults_total` sample.

use strata_obs::Registry;

/// Builds the registry the golden file was rendered from.
///
/// Registration order is deliberately scrambled relative to the
/// expected output: render must sort, not echo insertion order.
fn golden_registry() -> Registry {
    let registry = Registry::new();

    let latency = registry.histogram(
        "pipeline_process_ns",
        "Per-item processing latency",
        &[("node", "detect"), ("query", "monitor")],
    );
    for v in [0, 1, 2, 3, 700, 900] {
        latency.record(v);
    }
    let empty = registry.histogram("idle_wait_ns", "Never recorded", &[]);
    drop(empty);

    let depth = registry.gauge("queue_depth", "Items queued", &[("node", "sink")]);
    depth.set(-3);

    // Label values exercising every escape: backslash, quote, newline.
    let odd = registry.counter(
        "records_total",
        "Records by source path",
        &[("path", "C:\\data\n\"raw\"")],
    );
    odd.add(7);
    let plain = registry.counter("records_total", "Records by source path", &[("path", "a")]);
    plain.add(2);

    // Help text with a backslash and a newline, escaped in # HELP.
    let _ = registry.counter("weird_help_total", "first\\line\nsecond", &[]);
    registry
}

#[test]
fn exposition_matches_the_golden_file() {
    let rendered = golden_registry().render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = include_str!("golden/exposition.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/exposition.prom \
         (rerun with UPDATE_GOLDEN=1 after an intentional format change)"
    );
}

#[test]
fn rendering_is_deterministic_across_calls() {
    let registry = golden_registry();
    assert_eq!(registry.render(), registry.render());
}

#[test]
fn histogram_buckets_are_cumulative_and_capped_with_inf() {
    let text = golden_registry().render();
    // Six observations: 0, 1, 2, 3, 700, 900 — buckets 0,1,2,2,10,10.
    assert!(
        text.contains("pipeline_process_ns_bucket{node=\"detect\",query=\"monitor\",le=\"0\"} 1")
    );
    assert!(
        text.contains("pipeline_process_ns_bucket{node=\"detect\",query=\"monitor\",le=\"1\"} 2")
    );
    assert!(
        text.contains("pipeline_process_ns_bucket{node=\"detect\",query=\"monitor\",le=\"3\"} 4")
    );
    assert!(text
        .contains("pipeline_process_ns_bucket{node=\"detect\",query=\"monitor\",le=\"1023\"} 6"));
    assert!(text
        .contains("pipeline_process_ns_bucket{node=\"detect\",query=\"monitor\",le=\"+Inf\"} 6"));
    assert!(text.contains("pipeline_process_ns_sum{node=\"detect\",query=\"monitor\"} 1606"));
    assert!(text.contains("pipeline_process_ns_count{node=\"detect\",query=\"monitor\"} 6"));
    // An empty histogram renders only the +Inf bucket.
    assert!(text.contains("idle_wait_ns_bucket{le=\"+Inf\"} 0"));
    assert!(!text.contains("idle_wait_ns_bucket{le=\"0\"}"));
}
