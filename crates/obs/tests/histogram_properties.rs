//! Property tests for the log₂ histogram: bucket placement at every
//! power-of-two boundary, monotone quantile snapshots, and lossless
//! concurrent recording.

use proptest::prelude::*;
use strata_obs::{Histogram, BUCKETS};

/// Inclusive upper bound of bucket `i`, mirrored from the crate's
/// bucketing scheme (bucket 0 holds exactly 0; bucket `i` covers
/// `[2^(i-1), 2^i)`).
fn upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// The bucket a single recorded value landed in.
fn bucket_of(value: u64) -> usize {
    let h = Histogram::new();
    h.record(value);
    let snap = h.snapshot();
    (0..BUCKETS)
        .find(|&i| snap.buckets()[i] == 1)
        .expect("exactly one bucket holds the observation")
}

#[test]
fn every_power_of_two_boundary_lands_in_the_correct_bucket() {
    assert_eq!(bucket_of(0), 0);
    for exp in 0..64usize {
        let boundary = 1u64 << exp;
        // 2^exp is the first value of bucket exp+1 ...
        assert_eq!(
            bucket_of(boundary),
            exp + 1,
            "2^{exp} opens bucket {}",
            exp + 1
        );
        // ... and 2^exp - 1 is the last value of bucket exp.
        assert_eq!(
            bucket_of(boundary - 1),
            exp,
            "2^{exp}-1 closes bucket {exp}"
        );
        if boundary > 1 {
            assert_eq!(
                bucket_of(boundary + 1),
                exp + 1,
                "2^{exp}+1 stays in bucket {}",
                exp + 1
            );
        }
    }
    assert_eq!(bucket_of(u64::MAX), 64);
}

proptest! {
    /// Quantile estimates never cross: p50 ≤ p95 ≤ p99 ≤ max, and
    /// each estimate is an upper bound that at most doubles the true
    /// quantile (the bucket's lower edge is above half its upper
    /// bound).
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.p50();
        let p95 = snap.p95();
        let p99 = snap.p99();
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        prop_assert!(p99 <= snap.max(), "p99 {p99} > max {}", snap.max());
        prop_assert_eq!(snap.max(), *values.iter().max().unwrap());
        prop_assert_eq!(snap.count(), values.len() as u64);
    }

    /// The quantile estimate is a true upper bound on the exact
    /// rank statistic.
    #[test]
    fn quantile_upper_bounds_the_exact_rank(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
        q_milli in 1u64..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = h.snapshot().quantile(q);
        prop_assert!(
            estimate >= exact,
            "estimate {estimate} below exact {q}-quantile {exact}"
        );
    }
}

#[test]
fn concurrent_recording_from_eight_threads_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 100_000;
    let h = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets; every thread records a
                    // known total sum.
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.count(), n, "every recorded observation is counted");
    assert_eq!(
        snap.buckets().iter().sum::<u64>(),
        n,
        "bucket totals agree with the count"
    );
    assert_eq!(snap.sum(), n * (n - 1) / 2, "sum is exact");
    assert_eq!(snap.max(), n - 1);
    // The cumulative distribution is internally consistent.
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        cumulative += snap.buckets()[i];
        assert!(snap.quantile(cumulative as f64 / n as f64) <= upper_bound(i).min(snap.max()));
    }
}
