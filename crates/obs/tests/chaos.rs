//! Metric recording under fault injection.
//!
//! The obs hot path must stay lock-free even while failpoints fire in
//! the same threads (the kv store and broker record latencies around
//! fsync calls whose failpoints are armed by the chaos suite). Eight
//! writer threads interleave histogram/counter recording with an
//! armed fsync-style failpoint while the main thread renders the
//! registry in a loop: nothing may deadlock, and no count may be
//! lost.
//!
//! Runs in its own binary (its armed scenario must not leak into the
//! golden exposition test's `chaos_faults_total` sample).

use std::io::ErrorKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strata_chaos::{fired, Fault, Scenario};
use strata_obs::Registry;

/// Seeded probability trigger: same seed, same fault schedule.
const CHAOS_SEED: u64 = 0xB5_0B5;

#[test]
fn recording_never_deadlocks_while_fsync_failpoints_fire() {
    if !strata_chaos::is_compiled() {
        return;
    }
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let s = Scenario::setup();
    s.fail_with_probability(
        "obs.test.sync",
        0.2,
        CHAOS_SEED,
        Fault::Io(ErrorKind::Other),
    );

    let registry = Registry::new();
    let latency = registry.histogram("sync_ns", "Latency around a faulty fsync", &[]);
    let failures = registry.counter("sync_failures_total", "Failed fsyncs", &[]);

    let stop_rendering = Arc::new(AtomicBool::new(false));
    let renderer = {
        let registry = registry.clone();
        let stop = Arc::clone(&stop_rendering);
        std::thread::spawn(move || {
            let mut renders = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let text = registry.render();
                assert!(text.contains("sync_ns_count"));
                renders += 1;
            }
            renders
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|_| {
            let latency = latency.clone();
            let failures = failures.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    let started = Instant::now();
                    // The instrumented-fsync shape: hit the failpoint,
                    // record the outcome and the elapsed time.
                    if strata_chaos::fail_point("obs.test.sync").is_err() {
                        failures.inc();
                    }
                    latency.record_since(started);
                }
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(60);
    for handle in writers {
        assert!(
            Instant::now() < deadline,
            "writers wedged while failpoints were armed"
        );
        handle.join().unwrap();
    }
    stop_rendering.store(true, Ordering::Relaxed);
    let renders = renderer.join().unwrap();
    assert!(renders > 0, "the renderer made progress throughout");

    let snap = latency.snapshot();
    assert_eq!(
        snap.count(),
        THREADS * PER_THREAD,
        "every observation recorded despite the armed failpoint"
    );
    assert!(
        fired("obs.test.sync") >= 1,
        "the seeded schedule fired at least once"
    );
    assert_eq!(
        failures.get(),
        fired("obs.test.sync"),
        "each fired fault was counted exactly once"
    );
    drop(s);
}
