//! The write-ahead log: crash durability for the memtable.
//!
//! Every mutation is appended (and flushed) to the WAL before it is
//! applied to the memtable. On open, the WAL is replayed to rebuild
//! the memtable's state. When a memtable is flushed into an SSTable,
//! its WAL is deleted and a fresh one started.
//!
//! Frame format (little-endian):
//!
//! ```text
//! tag u8 (1 = put, 0 = delete) · key_len u32 · key
//!                              · [value_len u32 · value]   (puts only)
//!                              · crc32 u32 over all previous frame bytes
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use strata_chaos::{fsync_dir, ChaosFile};

use crate::error::{Error, Result};
use crate::options::SyncPolicy;

const TAG_DELETE: u8 = 0;
const TAG_PUT: u8 = 1;

/// Failpoint prefix for WAL I/O (`kv.wal.write`, `kv.wal.sync`).
const CHAOS_POINT: &str = "kv.wal";

/// Count of torn WAL tails truncated by [`Wal::recover`] since
/// process start (recovery observability; see also the pubsub
/// segment counter).
static TAILS_TRUNCATED: AtomicU64 = AtomicU64::new(0);

/// Times a torn WAL tail was truncated during recovery, process-wide.
#[must_use]
pub fn wal_tails_truncated() -> u64 {
    TAILS_TRUNCATED.load(Ordering::Relaxed)
}

/// Computes the IEEE CRC-32 checksum of `data` (same polynomial as
/// `strata-pubsub`'s wire format; duplicated here to keep substrate
/// crates independent).
fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// One recovered WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Set `key` to `value`.
    Put {
        /// The key written.
        key: Vec<u8>,
        /// The value written.
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// The key deleted.
        key: Vec<u8>,
    },
}

/// An append-only write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: ChaosFile,
    frame: Vec<u8>,
    policy: SyncPolicy,
    /// Operations logged since the last sync (for `EveryN`).
    unsynced: u32,
}

impl Wal {
    /// Creates (or appends to) the WAL at `path`, `fsync`ing per
    /// `policy`. Creating the file also `fsync`s its directory (when
    /// the policy asks for durability at all), so the WAL itself
    /// survives a crash right after open.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn open(path: impl Into<PathBuf>, policy: SyncPolicy) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let created = !path.exists();
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if created && policy != SyncPolicy::Never {
            if let Some(parent) = path.parent() {
                fsync_dir(parent)?;
            }
        }
        let file = ChaosFile::new(CHAOS_POINT, &path, file)?;
        Ok(Wal {
            path,
            file,
            frame: Vec::new(),
            policy,
            unsynced: 0,
        })
    }

    /// Appends a put and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn log_put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.frame.clear();
        self.frame.push(TAG_PUT);
        self.frame
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.frame.extend_from_slice(key);
        self.frame
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.frame.extend_from_slice(value);
        self.finish_frame()
    }

    /// Appends a deletion and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn log_delete(&mut self, key: &[u8]) -> Result<()> {
        self.frame.clear();
        self.frame.push(TAG_DELETE);
        self.frame
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.frame.extend_from_slice(key);
        self.finish_frame()
    }

    fn finish_frame(&mut self) -> Result<()> {
        let crc = crc32(&self.frame);
        self.frame.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.frame)?;
        self.file.flush()?;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces an `fsync` now, regardless of policy. On return every
    /// previously logged operation is durable.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Deletes the WAL file (after its memtable was flushed into an
    /// SSTable).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn remove(self) -> Result<()> {
        fs::remove_file(&self.path)?;
        Ok(())
    }

    /// Replays the WAL at `path` without modifying it, returning its
    /// operations in append order. A torn final frame (crash
    /// mid-write) is tolerated and ignored; corruption *before* the
    /// tail is an error.
    ///
    /// Returns an empty vector when the file does not exist.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] for mid-log corruption; I/O failures.
    pub fn replay(path: &Path) -> Result<Vec<WalOp>> {
        Self::scan(path).map(|(ops, _)| ops)
    }

    /// Replays the WAL at `path` *and truncates a torn tail away*, so
    /// that frames appended afterwards decode on the next replay
    /// (appending after torn bytes would strand them unreachable).
    /// Returns the operations and the number of torn bytes dropped.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] for mid-log corruption; I/O failures.
    pub fn recover(path: &Path) -> Result<(Vec<WalOp>, u64)> {
        let (ops, valid_len) = Self::scan(path)?;
        let file_len = match fs::metadata(path) {
            Ok(meta) => meta.len(),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok((ops, 0)),
            Err(err) => return Err(err.into()),
        };
        let torn = file_len.saturating_sub(valid_len);
        if torn > 0 {
            let file = fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len)?;
            file.sync_data()?;
            TAILS_TRUNCATED.fetch_add(1, Ordering::Relaxed);
        }
        Ok((ops, torn))
    }

    /// Decodes the valid frame prefix: the operations and the byte
    /// length they occupy.
    fn scan(path: &Path) -> Result<(Vec<WalOp>, u64)> {
        let data = match fs::read(path) {
            Ok(data) => data,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(err) => return Err(err.into()),
        };
        let mut ops = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            match Self::decode_op(&data[pos..]) {
                Ok((op, used)) => {
                    ops.push(op);
                    pos += used;
                }
                Err(_) if Self::is_torn_tail(&data[pos..]) => break,
                Err(err) => return Err(err),
            }
        }
        Ok((ops, pos as u64))
    }

    fn decode_op(data: &[u8]) -> Result<(WalOp, usize)> {
        let corrupt = |msg: &str| Error::Corrupt(format!("wal: {msg}"));
        if data.len() < 5 {
            return Err(corrupt("truncated header"));
        }
        let tag = data[0];
        let key_len = u32::from_le_bytes(data[1..5].try_into().expect("len 4")) as usize;
        let (body_len, value_range) = match tag {
            TAG_DELETE => (5 + key_len, None),
            TAG_PUT => {
                if data.len() < 5 + key_len + 4 {
                    return Err(corrupt("truncated put header"));
                }
                let value_len =
                    u32::from_le_bytes(data[5 + key_len..9 + key_len].try_into().expect("len 4"))
                        as usize;
                (
                    9 + key_len + value_len,
                    Some(9 + key_len..9 + key_len + value_len),
                )
            }
            other => return Err(corrupt(&format!("unknown tag {other}"))),
        };
        if data.len() < body_len + 4 {
            return Err(corrupt("truncated frame"));
        }
        let stored_crc =
            u32::from_le_bytes(data[body_len..body_len + 4].try_into().expect("len 4"));
        if stored_crc != crc32(&data[..body_len]) {
            return Err(corrupt("crc mismatch"));
        }
        let key = data[5..5 + key_len].to_vec();
        let op = match value_range {
            Some(range) => WalOp::Put {
                key,
                value: data[range].to_vec(),
            },
            None => WalOp::Delete { key },
        };
        Ok((op, body_len + 4))
    }

    /// A frame that fails to decode only because the data ran out is
    /// a torn tail from a crash mid-append — safe to discard.
    fn is_torn_tail(data: &[u8]) -> bool {
        if data.len() < 5 {
            return true;
        }
        let tag = data[0];
        if tag != TAG_PUT && tag != TAG_DELETE {
            return false;
        }
        let key_len = u32::from_le_bytes(data[1..5].try_into().expect("len 4")) as usize;
        let needed = match tag {
            TAG_DELETE => 5 + key_len + 4,
            _ => {
                if data.len() < 5 + key_len + 4 {
                    return true;
                }
                let value_len =
                    u32::from_le_bytes(data[5 + key_len..9 + key_len].try_into().expect("len 4"))
                        as usize;
                9 + key_len + value_len + 4
            }
        };
        data.len() < needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strata-kv-wal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn replay_restores_operations_in_order() {
        let path = temp_path("order");
        let _ = fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            wal.log_put(b"a", b"1").unwrap();
            wal.log_delete(b"a").unwrap();
            wal.log_put(b"b", b"2").unwrap();
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(
            ops,
            vec![
                WalOp::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec()
                },
                WalOp::Delete { key: b"a".to_vec() },
                WalOp::Put {
                    key: b"b".to_vec(),
                    value: b"2".to_vec()
                },
            ]
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_wal_is_empty() {
        assert!(Wal::replay(Path::new("/nonexistent/wal"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = temp_path("torn");
        let _ = fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            wal.log_put(b"ok", b"yes").unwrap();
            wal.log_put(b"torn", b"partial").unwrap();
        }
        // Chop bytes off the final frame to simulate a crash.
        let mut data = fs::read(&path).unwrap();
        data.truncate(data.len() - 5);
        fs::write(&path, data).unwrap();
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = temp_path("corrupt");
        let _ = fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            wal.log_put(b"first", b"1").unwrap();
            wal.log_put(b"second", b"2").unwrap();
        }
        let mut data = fs::read(&path).unwrap();
        data[7] ^= 0xFF; // inside the first frame
        fs::write(&path, data).unwrap();
        assert!(matches!(Wal::replay(&path), Err(Error::Corrupt(_))));
        fs::remove_file(&path).unwrap();
    }

    /// Exhaustive crash-point property: truncating the log at *every*
    /// byte boundary of the final frame must recover exactly the
    /// fully written prefix — never an error, never a partial op —
    /// and the truncated log must accept appends that survive the
    /// next replay.
    #[test]
    fn recovery_at_every_byte_boundary_of_the_final_frame() {
        let path = temp_path("boundary");
        let _ = fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.log_put(b"alpha", b"1").unwrap();
            wal.log_delete(b"alpha").unwrap();
            wal.log_put(b"gamma", b"333").unwrap();
        }
        let full = fs::read(&path).unwrap();
        // Final frame: tag + key_len + "gamma" + value_len + "333" + crc.
        let final_frame = 1 + 4 + 5 + 4 + 3 + 4;
        let prefix_len = full.len() - final_frame;
        for cut in prefix_len..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (ops, torn) = Wal::recover(&path).unwrap();
            if cut == full.len() {
                assert_eq!(ops.len(), 3, "intact log at cut {cut}");
                assert_eq!(torn, 0);
            } else {
                assert_eq!(ops.len(), 2, "torn tail at cut {cut}");
                assert_eq!(torn as usize, cut - prefix_len, "cut {cut}");
                assert_eq!(
                    fs::metadata(&path).unwrap().len() as usize,
                    prefix_len,
                    "file truncated back to the valid prefix at cut {cut}"
                );
            }
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            wal.log_put(b"post", b"crash").unwrap();
            drop(wal);
            let after = Wal::replay(&path).unwrap();
            assert_eq!(
                after.last(),
                Some(&WalOp::Put {
                    key: b"post".to_vec(),
                    value: b"crash".to_vec()
                }),
                "append after recovery must be replayable (cut {cut})"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_n_policy_counts_down_to_a_sync() {
        let path = temp_path("everyn");
        let _ = fs::remove_file(&path);
        let mut wal = Wal::open(&path, SyncPolicy::EveryN(3)).unwrap();
        for i in 0..7u8 {
            wal.log_put(&[i], b"v").unwrap();
        }
        // 7 ops under EveryN(3): synced at ops 3 and 6, one pending.
        assert_eq!(wal.unsynced, 1);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced, 0);
        drop(wal);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn remove_deletes_the_file() {
        let path = temp_path("remove");
        let wal = Wal::open(&path, SyncPolicy::Never).unwrap();
        assert!(path.exists());
        wal.remove().unwrap();
        assert!(!path.exists());
    }
}
