//! Store configuration.

use crate::error::{Error, Result};

/// When the store issues an `fsync` for its write-ahead log.
///
/// Durability is exactly what the policy paid for: after a crash, the
/// WAL replays every operation up to the last successful sync, and
/// possibly (but not guaranteed) operations after it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every logged operation. An acknowledged write is
    /// durable before the call returns.
    Always,
    /// `fsync` once every `n` logged operations: at most `n - 1`
    /// acknowledged writes can be lost to a crash.
    EveryN(u32),
    /// Never `fsync` explicitly; the OS writes back on its own
    /// schedule. Matches the historical behavior and is the default.
    #[default]
    Never,
}

/// Tuning knobs for a [`Db`](crate::Db), built in builder style.
///
/// ```
/// use strata_kv::DbOptions;
/// let opts = DbOptions::default()
///     .memtable_bytes(4 * 1024 * 1024)
///     .block_bytes(8 * 1024)
///     .bloom_bits_per_key(10)
///     .compaction_trigger(6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbOptions {
    memtable_bytes: usize,
    block_bytes: usize,
    bloom_bits_per_key: u32,
    compaction_trigger: usize,
    wal: bool,
    sync: SyncPolicy,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            memtable_bytes: 4 * 1024 * 1024,
            block_bytes: 4 * 1024,
            bloom_bits_per_key: 10,
            compaction_trigger: 4,
            wal: true,
            sync: SyncPolicy::Never,
        }
    }
}

impl DbOptions {
    /// Sets the memtable size that triggers a flush to an SSTable.
    pub fn memtable_bytes(mut self, bytes: usize) -> Self {
        self.memtable_bytes = bytes;
        self
    }

    /// Sets the target size of one SSTable data block.
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the bloom filter density; `0` disables bloom filters
    /// (used by the ablation benchmark).
    pub fn bloom_bits_per_key(mut self, bits: u32) -> Self {
        self.bloom_bits_per_key = bits;
        self
    }

    /// Sets how many SSTables may accumulate before a size-tiered
    /// compaction merges them.
    pub fn compaction_trigger(mut self, tables: usize) -> Self {
        self.compaction_trigger = tables;
        self
    }

    /// Enables or disables the write-ahead log (disk mode only).
    /// Disabling trades crash durability for write throughput.
    pub fn wal(mut self, enabled: bool) -> Self {
        self.wal = enabled;
        self
    }

    /// Sets when the WAL is `fsync`ed (disk mode only). See
    /// [`SyncPolicy`] for the durability each variant buys.
    pub fn sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync = policy;
        self
    }

    /// Validates the option set.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for zero sizes or a compaction
    /// trigger below 2.
    pub fn validate(&self) -> Result<()> {
        if self.memtable_bytes == 0 {
            return Err(Error::InvalidConfig("memtable_bytes must be > 0".into()));
        }
        if self.block_bytes == 0 {
            return Err(Error::InvalidConfig("block_bytes must be > 0".into()));
        }
        if self.compaction_trigger < 2 {
            return Err(Error::InvalidConfig(
                "compaction_trigger must be ≥ 2".into(),
            ));
        }
        if self.sync == SyncPolicy::EveryN(0) {
            return Err(Error::InvalidConfig(
                "SyncPolicy::EveryN requires n > 0".into(),
            ));
        }
        Ok(())
    }

    pub(crate) fn memtable_bytes_value(&self) -> usize {
        self.memtable_bytes
    }

    pub(crate) fn block_bytes_value(&self) -> usize {
        self.block_bytes
    }

    pub(crate) fn bloom_bits_per_key_value(&self) -> u32 {
        self.bloom_bits_per_key
    }

    pub(crate) fn compaction_trigger_value(&self) -> usize {
        self.compaction_trigger
    }

    pub(crate) fn wal_enabled(&self) -> bool {
        self.wal
    }

    pub(crate) fn sync_policy_value(&self) -> SyncPolicy {
        self.sync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(DbOptions::default().validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_options() {
        assert!(DbOptions::default().memtable_bytes(0).validate().is_err());
        assert!(DbOptions::default().block_bytes(0).validate().is_err());
        assert!(DbOptions::default()
            .compaction_trigger(1)
            .validate()
            .is_err());
        assert!(DbOptions::default()
            .sync_policy(SyncPolicy::EveryN(0))
            .validate()
            .is_err());
        assert!(DbOptions::default()
            .sync_policy(SyncPolicy::EveryN(1))
            .validate()
            .is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let opts = DbOptions::default()
            .memtable_bytes(1)
            .block_bytes(2)
            .bloom_bits_per_key(0)
            .compaction_trigger(9)
            .wal(false);
        assert_eq!(opts.memtable_bytes_value(), 1);
        assert_eq!(opts.block_bytes_value(), 2);
        assert_eq!(opts.bloom_bits_per_key_value(), 0);
        assert_eq!(opts.compaction_trigger_value(), 9);
        assert!(!opts.wal_enabled());
    }
}
