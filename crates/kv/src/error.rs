//! Error type for store operations.

use std::fmt;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the key-value store.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A stored file failed checksum or format validation.
    Corrupt(String),
    /// A configuration parameter is invalid.
    InvalidConfig(String),
    /// The operation needs a disk-backed store but the database was
    /// opened in memory (e.g. explicit flush to disk).
    MemoryMode,
    /// An underlying file operation failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt(msg) => write!(f, "corrupt store data: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::MemoryMode => write!(f, "operation requires a disk-backed store"),
            Error::Io(err) => write!(f, "i/o failure: {err}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("x"));
        assert!(e.to_string().contains("i/o"));
        assert!(e.source().is_some());
        assert!(Error::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
