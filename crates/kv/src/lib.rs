//! `strata-kv` — an embedded LSM-tree key-value store.
//!
//! This crate is the key-value substrate of the STRATA reproduction,
//! standing in for the RocksDB instance of the paper's prototype
//! (§4: "the key-value store runs in RocksDB"). STRATA persists
//! at-rest knowledge in it — e.g. the thermal-energy thresholds the
//! `detectEvent` operator reads, computed from historical jobs — and
//! every pipeline module may call `store`/`get` against it (Table 1).
//!
//! The design is a compact log-structured merge tree:
//!
//! * writes go to a write-ahead log ([`wal`]) and a sorted in-memory
//!   [`memtable`];
//! * a full memtable is flushed into an immutable **SSTable**
//!   ([`sstable`]): sorted blocks, a sparse block index, and a bloom
//!   filter ([`bloom`]) to skip tables on point lookups;
//! * reads consult the memtable, then SSTables newest-first;
//! * background-free, size-tiered [`compaction`](db) merges tables
//!   when their count passes a threshold, dropping shadowed versions
//!   and (on full merges) tombstones;
//! * range scans merge all sources with a [`MergeIterator`](crate::iterator::MergeIterator).
//!
//! # Example
//!
//! ```
//! use strata_kv::{Db, DbOptions};
//!
//! let db = Db::open_in_memory(DbOptions::default())?;
//! db.put(b"threshold/job-17/low", b"1200")?;
//! assert_eq!(db.get(b"threshold/job-17/low")?.as_deref(), Some(b"1200".as_ref()));
//! db.delete(b"threshold/job-17/low")?;
//! assert_eq!(db.get(b"threshold/job-17/low")?, None);
//! # Ok::<(), strata_kv::Error>(())
//! ```

pub mod batch;
pub mod bloom;
pub mod db;
pub mod error;
pub mod iterator;
pub mod memtable;
pub(crate) mod metrics;
pub mod options;
pub mod sstable;
pub mod wal;

pub use batch::WriteBatch;
pub use db::Db;
pub use error::{Error, Result};
pub use options::{DbOptions, SyncPolicy};
pub use wal::wal_tails_truncated;
