//! Atomic multi-key write batches.

/// A group of writes applied atomically by
/// [`Db::write`](crate::Db::write): either every operation becomes
/// visible or (on an I/O error) none do.
///
/// ```
/// use strata_kv::{Db, DbOptions, WriteBatch};
/// let db = Db::open_in_memory(DbOptions::default())?;
/// let mut batch = WriteBatch::new();
/// batch.put(b"threshold/low", b"1200");
/// batch.put(b"threshold/high", b"3800");
/// batch.delete(b"threshold/stale");
/// db.write(batch)?;
/// assert!(db.get(b"threshold/low")?.is_some());
/// # Ok::<(), strata_kv::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    pub(crate) ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queues a put.
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> &mut Self {
        self.ops
            .push((key.as_ref().to_vec(), Some(value.as_ref().to_vec())));
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) -> &mut Self {
        self.ops.push((key.as_ref().to_vec(), None));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_operations_in_order() {
        let mut batch = WriteBatch::new();
        assert!(batch.is_empty());
        batch.put("a", "1").delete("b").put("c", "3");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.ops[1], (b"b".to_vec(), None));
    }
}
