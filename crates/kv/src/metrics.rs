//! Store-level metrics: operation latency histograms and size gauges.
//!
//! Every [`Db`](crate::Db) records into its own handles whether or
//! not anything scrapes them; [`Db::register_metrics`] additionally
//! lands them in a shared `strata-obs` registry under `kv_*` names.

use strata_obs::{Gauge, Histogram, Registry};

pub(crate) struct KvMetrics {
    pub(crate) get_ns: Histogram,
    pub(crate) put_ns: Histogram,
    pub(crate) flush_ns: Histogram,
    pub(crate) compact_ns: Histogram,
    pub(crate) sstables: Gauge,
    pub(crate) memtable_bytes: Gauge,
}

impl KvMetrics {
    pub(crate) fn new() -> Self {
        KvMetrics {
            get_ns: Histogram::new(),
            put_ns: Histogram::new(),
            flush_ns: Histogram::new(),
            compact_ns: Histogram::new(),
            sstables: Gauge::new(),
            memtable_bytes: Gauge::new(),
        }
    }

    pub(crate) fn register_into(&self, registry: &Registry) {
        registry.register_histogram("kv_get_ns", "Point-lookup latency", &[], &self.get_ns);
        registry.register_histogram(
            "kv_put_ns",
            "Write latency including WAL append and any triggered flush",
            &[],
            &self.put_ns,
        );
        registry.register_histogram(
            "kv_flush_ns",
            "Memtable-to-SSTable flush latency",
            &[],
            &self.flush_ns,
        );
        registry.register_histogram(
            "kv_compact_ns",
            "Full compaction latency",
            &[],
            &self.compact_ns,
        );
        registry.register_gauge(
            "kv_sstables",
            "SSTables currently on disk",
            &[],
            &self.sstables,
        );
        registry.register_gauge(
            "kv_memtable_bytes",
            "Approximate bytes buffered in the memtable",
            &[],
            &self.memtable_bytes,
        );
    }
}
