//! Bloom filters for SSTable point lookups.
//!
//! A bloom filter lets a point lookup skip an SSTable without
//! touching its blocks when the key is definitely absent. False
//! positives cost one wasted block read; false negatives never
//! happen. Hashing is double hashing over two independent 64-bit
//! FNV-1a variants, the standard Kirsch–Mitzenmacher construction.

/// A fixed-size bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Final avalanche (splitmix64 tail) to decorrelate low bits.
    let mut z = hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BloomFilter {
    /// Creates a filter sized for `expected_keys` keys at
    /// `bits_per_key` bits each. The hash count is the optimal
    /// `0.69 · bits_per_key`, clamped to `[1, 30]`.
    pub fn new(expected_keys: usize, bits_per_key: u32) -> Self {
        let num_bits = (expected_keys.max(1) as u64 * bits_per_key.max(1) as u64).max(64);
        let num_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
            num_hashes,
        }
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &[u8]) {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// `false` means `key` was definitely never inserted; `true`
    /// means it probably was.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serializes the filter for an SSTable's bloom block.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        for word in &self.bits {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Deserializes a filter written by
    /// [`to_bytes`](BloomFilter::to_bytes).
    ///
    /// # Errors
    ///
    /// [`crate::Error::Corrupt`] on truncated or inconsistent data.
    pub fn from_bytes(data: &[u8]) -> crate::Result<Self> {
        if data.len() < 12 {
            return Err(crate::Error::Corrupt("bloom block too short".into()));
        }
        let num_bits = u64::from_le_bytes(data[0..8].try_into().expect("len 8"));
        let num_hashes = u32::from_le_bytes(data[8..12].try_into().expect("len 4"));
        let words = num_bits.div_ceil(64) as usize;
        if data.len() != 12 + words * 8 {
            return Err(crate::Error::Corrupt(format!(
                "bloom block length {} inconsistent with {num_bits} bits",
                data.len()
            )));
        }
        let bits = data[12..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("len 8")))
            .collect();
        Ok(BloomFilter {
            bits,
            num_bits,
            num_hashes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = BloomFilter::new(1_000, 10);
        for i in 0..1_000u32 {
            bloom.insert(&i.to_le_bytes());
        }
        for i in 0..1_000u32 {
            assert!(bloom.may_contain(&i.to_le_bytes()), "key {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bloom = BloomFilter::new(10_000, 10);
        for i in 0..10_000u32 {
            bloom.insert(&i.to_le_bytes());
        }
        let false_positives = (10_000..110_000u32)
            .filter(|i| bloom.may_contain(&i.to_le_bytes()))
            .count();
        // Theoretical rate at 10 bits/key ≈ 1%; allow generous slack.
        let rate = false_positives as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn serialization_round_trips() {
        let mut bloom = BloomFilter::new(100, 8);
        for w in [&b"alpha"[..], b"beta", b"gamma"] {
            bloom.insert(w);
        }
        let restored = BloomFilter::from_bytes(&bloom.to_bytes()).unwrap();
        assert_eq!(restored, bloom);
        assert!(restored.may_contain(b"alpha"));
        // "delta" was never inserted; may_contain may still say true
        // (false positive), so only the no-false-negative direction is
        // asserted above.
    }

    #[test]
    fn rejects_corrupt_bytes() {
        assert!(BloomFilter::from_bytes(&[1, 2, 3]).is_err());
        let mut good = BloomFilter::new(10, 8).to_bytes();
        good.pop();
        assert!(BloomFilter::from_bytes(&good).is_err());
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = BloomFilter::new(100, 10);
        let misses = (0..1000u32)
            .filter(|i| bloom.may_contain(&i.to_le_bytes()))
            .count();
        assert_eq!(misses, 0);
    }
}
