//! The in-memory write buffer of the LSM tree.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory buffer of recent writes.
///
/// Values are `Option<Vec<u8>>`: `None` is a **tombstone** recording
/// a deletion that must shadow older versions in SSTables until
/// compaction physically removes them.
#[derive(Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approximate_bytes: usize,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Records a put. Returns the previous in-memtable entry, if any.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Option<Option<Vec<u8>>> {
        self.approximate_bytes += key.len() + value.len() + 16;
        self.entries.insert(key.to_vec(), Some(value.to_vec()))
    }

    /// Records a deletion tombstone.
    pub fn delete(&mut self, key: &[u8]) -> Option<Option<Vec<u8>>> {
        self.approximate_bytes += key.len() + 16;
        self.entries.insert(key.to_vec(), None)
    }

    /// Looks up `key`.
    ///
    /// * `None` — the memtable knows nothing about the key; consult
    ///   older sources.
    /// * `Some(None)` — the key was deleted here; stop searching.
    /// * `Some(Some(v))` — the current value.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of entries, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rough memory footprint used to decide when to flush.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    /// Iterates all entries in key order (tombstones included).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Iterates entries with keys in `[start, end)` in key order
    /// (tombstones included). An empty `end` means "to the end".
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: &[u8],
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> + 'a {
        let upper: Bound<Vec<u8>> = if end.is_empty() {
            Bound::Unbounded
        } else {
            Bound::Excluded(end.to_vec())
        };
        self.entries
            .range((Bound::Included(start.to_vec()), upper))
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Drains the memtable for a flush, leaving it empty.
    pub fn take_entries(&mut self) -> BTreeMap<Vec<u8>, Option<Vec<u8>>> {
        self.approximate_bytes = 0;
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut mt = MemTable::new();
        assert_eq!(mt.get(b"k"), None);
        mt.put(b"k", b"v1");
        assert_eq!(mt.get(b"k"), Some(Some(b"v1".as_ref())));
        mt.put(b"k", b"v2");
        assert_eq!(mt.get(b"k"), Some(Some(b"v2".as_ref())));
        mt.delete(b"k");
        assert_eq!(mt.get(b"k"), Some(None));
        assert_eq!(mt.len(), 1, "tombstone still occupies the slot");
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut mt = MemTable::new();
        mt.put(b"c", b"3");
        mt.put(b"a", b"1");
        mt.put(b"b", b"2");
        let keys: Vec<&[u8]> = mt.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b", b"c"]);
    }

    #[test]
    fn range_bounds_are_half_open() {
        let mut mt = MemTable::new();
        for k in ["a", "b", "c", "d"] {
            mt.put(k.as_bytes(), b"v");
        }
        let keys: Vec<&[u8]> = mt.range(b"b", b"d").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"b".as_ref(), b"c"]);
        let keys: Vec<&[u8]> = mt.range(b"c", b"").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"c".as_ref(), b"d"]);
    }

    #[test]
    fn size_accounting_grows_and_resets() {
        let mut mt = MemTable::new();
        assert_eq!(mt.approximate_bytes(), 0);
        mt.put(b"key", b"value");
        assert!(mt.approximate_bytes() > 0);
        let drained = mt.take_entries();
        assert_eq!(drained.len(), 1);
        assert!(mt.is_empty());
        assert_eq!(mt.approximate_bytes(), 0);
    }
}
