//! SSTables: immutable, sorted, block-structured table files.
//!
//! File layout (little-endian):
//!
//! ```text
//! ┌─────────────┬─────────────┬─────────────┬────────────┐
//! │ data blocks │ index block │ bloom block │ footer     │
//! └─────────────┴─────────────┴─────────────┴────────────┘
//! data block  := entry* · crc32          (≈ block_bytes per block)
//! entry       := key_len u32 · key · tag u8 (1 = value, 0 = tombstone)
//!                · [value_len u32 · value]
//! index block := count u32 · (first_key_len u32 · first_key
//!                · offset u64 · len u32 · entries u32)* · crc32
//! footer      := index_off u64 · index_len u64
//!                · bloom_off u64 · bloom_len u64
//!                · entry_count u64 · magic u64
//! ```
//!
//! Entries must be added in strictly increasing key order; blocks are
//! CRC-protected; point lookups go through the bloom filter, a binary
//! search over the sparse index, and a scan of one block.

use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use strata_chaos::ChaosFile;

use crate::bloom::BloomFilter;
use crate::error::{Error, Result};

const MAGIC: u64 = 0x5354_5241_5441_4B56; // "STRATAKV"
const FOOTER_LEN: usize = 48;

fn crc32(data: &[u8]) -> u32 {
    // Same IEEE polynomial as the WAL; see wal.rs.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// One sparse-index entry describing a data block.
#[derive(Debug, Clone)]
struct BlockMeta {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
    entries: u32,
}

/// Streams sorted entries into a new SSTable file.
#[derive(Debug)]
pub struct SsTableWriter {
    path: PathBuf,
    file: ChaosFile,
    block_bytes: usize,
    block: Vec<u8>,
    block_first_key: Option<Vec<u8>>,
    block_entries: u32,
    last_key: Option<Vec<u8>>,
    index: Vec<BlockMeta>,
    bloom: Option<BloomFilter>,
    offset: u64,
    entry_count: u64,
}

impl SsTableWriter {
    /// Creates a writer for a new table at `path`.
    ///
    /// `expected_keys` sizes the bloom filter; `bloom_bits_per_key`
    /// of 0 disables it.
    ///
    /// # Errors
    ///
    /// I/O failures creating the file.
    pub fn create(
        path: impl Into<PathBuf>,
        block_bytes: usize,
        expected_keys: usize,
        bloom_bits_per_key: u32,
    ) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // Failpoints: `kv.sst.write` / `kv.sst.sync`.
        let file = ChaosFile::new("kv.sst", &path, fs::File::create(&path)?)?;
        Ok(SsTableWriter {
            path,
            file,
            block_bytes: block_bytes.max(64),
            block: Vec::new(),
            block_first_key: None,
            block_entries: 0,
            last_key: None,
            index: Vec::new(),
            bloom: (bloom_bits_per_key > 0)
                .then(|| BloomFilter::new(expected_keys, bloom_bits_per_key)),
            offset: 0,
            entry_count: 0,
        })
    }

    /// Appends one entry; `None` records a tombstone. Keys must be
    /// strictly increasing.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] on out-of-order keys; I/O failures.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(Error::InvalidConfig(
                    "sstable entries must be added in strictly increasing key order".into(),
                ));
            }
        }
        self.last_key = Some(key.to_vec());
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.to_vec());
        }
        self.block
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.block.extend_from_slice(key);
        match value {
            Some(value) => {
                self.block.push(1);
                self.block
                    .extend_from_slice(&(value.len() as u32).to_le_bytes());
                self.block.extend_from_slice(value);
            }
            None => self.block.push(0),
        }
        self.block_entries += 1;
        self.entry_count += 1;
        if let Some(bloom) = &mut self.bloom {
            bloom.insert(key);
        }
        if self.block.len() >= self.block_bytes {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let crc = crc32(&self.block);
        self.block.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.block)?;
        self.index.push(BlockMeta {
            first_key: self.block_first_key.take().expect("non-empty block"),
            offset: self.offset,
            len: self.block.len() as u32,
            entries: self.block_entries,
        });
        self.offset += self.block.len() as u64;
        self.block.clear();
        self.block_entries = 0;
        Ok(())
    }

    /// Finishes the table: writes the index, bloom filter and footer,
    /// flushes, and returns a reader over the new file.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn finish(mut self) -> Result<SsTable> {
        self.finish_block()?;
        // Index block.
        let mut index_block = Vec::new();
        index_block.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for meta in &self.index {
            index_block.extend_from_slice(&(meta.first_key.len() as u32).to_le_bytes());
            index_block.extend_from_slice(&meta.first_key);
            index_block.extend_from_slice(&meta.offset.to_le_bytes());
            index_block.extend_from_slice(&meta.len.to_le_bytes());
            index_block.extend_from_slice(&meta.entries.to_le_bytes());
        }
        let crc = crc32(&index_block);
        index_block.extend_from_slice(&crc.to_le_bytes());
        let index_off = self.offset;
        self.file.write_all(&index_block)?;

        // Bloom block.
        let bloom_bytes = self.bloom.as_ref().map(BloomFilter::to_bytes);
        let bloom_off = index_off + index_block.len() as u64;
        let bloom_len = bloom_bytes.as_ref().map_or(0, Vec::len) as u64;
        if let Some(bytes) = &bloom_bytes {
            self.file.write_all(bytes)?;
        }

        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index_block.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&bloom_len.to_le_bytes());
        footer.extend_from_slice(&self.entry_count.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        self.file.write_all(&footer)?;
        self.file.sync_all()?;
        drop(self.file);
        SsTable::open(&self.path)
    }
}

/// An open, immutable SSTable: in-memory index and bloom filter, data
/// blocks read on demand.
pub struct SsTable {
    path: PathBuf,
    file: Mutex<fs::File>,
    index: Vec<BlockMeta>,
    bloom: Option<BloomFilter>,
    entry_count: u64,
}

impl std::fmt::Debug for SsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTable")
            .field("path", &self.path)
            .field("blocks", &self.index.len())
            .field("entries", &self.entry_count)
            .finish()
    }
}

impl SsTable {
    /// Opens the table at `path`, loading its index and bloom filter.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on bad magic, checksum failures, or framing
    /// errors; I/O failures.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut file = fs::File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corrupt(format!("{path:?}: too short")));
        }
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact(&mut footer)?;
        let u64_at = |i: usize| u64::from_le_bytes(footer[i..i + 8].try_into().expect("len 8"));
        if u64_at(40) != MAGIC {
            return Err(Error::Corrupt(format!("{path:?}: bad magic")));
        }
        let (index_off, index_len) = (u64_at(0), u64_at(8));
        let (bloom_off, bloom_len) = (u64_at(16), u64_at(24));
        let entry_count = u64_at(32);

        // Index block.
        file.seek(SeekFrom::Start(index_off))?;
        let mut index_block = vec![0u8; index_len as usize];
        file.read_exact(&mut index_block)?;
        if index_block.len() < 8 {
            return Err(Error::Corrupt(format!("{path:?}: index too short")));
        }
        let (body, crc_bytes) = index_block.split_at(index_block.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("len 4"));
        if stored_crc != crc32(body) {
            return Err(Error::Corrupt(format!("{path:?}: index crc mismatch")));
        }
        let mut index = Vec::new();
        let count = u32::from_le_bytes(body[0..4].try_into().expect("len 4")) as usize;
        let mut pos = 4usize;
        for _ in 0..count {
            let need = |pos: usize, n: usize| -> Result<()> {
                if body.len() < pos + n {
                    Err(Error::Corrupt(format!("{path:?}: truncated index")))
                } else {
                    Ok(())
                }
            };
            need(pos, 4)?;
            let key_len =
                u32::from_le_bytes(body[pos..pos + 4].try_into().expect("len 4")) as usize;
            pos += 4;
            need(pos, key_len + 16)?;
            let first_key = body[pos..pos + key_len].to_vec();
            pos += key_len;
            let offset = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("len 8"));
            pos += 8;
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("len 4"));
            pos += 4;
            let entries = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("len 4"));
            pos += 4;
            index.push(BlockMeta {
                first_key,
                offset,
                len,
                entries,
            });
        }

        // Bloom block.
        let bloom = if bloom_len > 0 {
            file.seek(SeekFrom::Start(bloom_off))?;
            let mut bloom_bytes = vec![0u8; bloom_len as usize];
            file.read_exact(&mut bloom_bytes)?;
            Some(BloomFilter::from_bytes(&bloom_bytes)?)
        } else {
            None
        };

        Ok(SsTable {
            path,
            file: Mutex::new(file),
            index,
            bloom,
            entry_count,
        })
    }

    /// The file backing this table.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total number of entries (tombstones included).
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// `true` when a bloom filter is present.
    pub fn has_bloom(&self) -> bool {
        self.bloom.is_some()
    }

    fn read_block(&self, meta: &BlockMeta) -> Result<Vec<u8>> {
        let mut data = vec![0u8; meta.len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut data)?;
        }
        if data.len() < 4 {
            return Err(Error::Corrupt(format!("{:?}: block too short", self.path)));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("len 4"));
        if stored_crc != crc32(body) {
            return Err(Error::Corrupt(format!(
                "{:?}: block crc mismatch",
                self.path
            )));
        }
        data.truncate(data.len() - 4);
        Ok(data)
    }

    #[allow(clippy::type_complexity)]
    fn decode_block(block: &[u8], entries: u32) -> Result<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
        let mut out = Vec::with_capacity(entries as usize);
        let mut pos = 0usize;
        let corrupt = || Error::Corrupt("truncated block entry".into());
        while pos < block.len() {
            if block.len() < pos + 4 {
                return Err(corrupt());
            }
            let key_len =
                u32::from_le_bytes(block[pos..pos + 4].try_into().expect("len 4")) as usize;
            pos += 4;
            if block.len() < pos + key_len + 1 {
                return Err(corrupt());
            }
            let key = block[pos..pos + key_len].to_vec();
            pos += key_len;
            let tag = block[pos];
            pos += 1;
            let value = match tag {
                0 => None,
                1 => {
                    if block.len() < pos + 4 {
                        return Err(corrupt());
                    }
                    let value_len =
                        u32::from_le_bytes(block[pos..pos + 4].try_into().expect("len 4")) as usize;
                    pos += 4;
                    if block.len() < pos + value_len {
                        return Err(corrupt());
                    }
                    let value = block[pos..pos + value_len].to_vec();
                    pos += value_len;
                    Some(value)
                }
                other => {
                    return Err(Error::Corrupt(format!("unknown entry tag {other}")));
                }
            };
            out.push((key, value));
        }
        Ok(out)
    }

    /// Index of the block that may contain `key`, if any.
    fn candidate_block(&self, key: &[u8]) -> Option<usize> {
        if self.index.is_empty() || key < self.index[0].first_key.as_slice() {
            return None;
        }
        // Last block whose first key is ≤ key.
        let i = self
            .index
            .partition_point(|meta| meta.first_key.as_slice() <= key);
        Some(i - 1)
    }

    /// Point lookup.
    ///
    /// * `None` — this table knows nothing about `key`.
    /// * `Some(None)` — the key is tombstoned here.
    /// * `Some(Some(v))` — the stored value.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] or I/O failures.
    pub fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>> {
        if let Some(bloom) = &self.bloom {
            if !bloom.may_contain(key) {
                return Ok(None);
            }
        }
        let Some(block_idx) = self.candidate_block(key) else {
            return Ok(None);
        };
        let meta = &self.index[block_idx];
        let block = self.read_block(meta)?;
        let entries = Self::decode_block(&block, meta.entries)?;
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => Ok(Some(entries[i].1.clone())),
            Err(_) => Ok(None),
        }
    }

    /// All entries with keys in `[start, end)` (tombstones included),
    /// in key order. An empty `end` means "to the end of the table".
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] or I/O failures.
    #[allow(clippy::type_complexity)]
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
        let mut out = Vec::new();
        let first_block = self.candidate_block(start).unwrap_or(0);
        for meta in &self.index[first_block..] {
            if !end.is_empty() && meta.first_key.as_slice() >= end {
                break;
            }
            let block = self.read_block(meta)?;
            for (key, value) in Self::decode_block(&block, meta.entries)? {
                if key.as_slice() < start {
                    continue;
                }
                if !end.is_empty() && key.as_slice() >= end {
                    return Ok(out);
                }
                out.push((key, value));
            }
        }
        Ok(out)
    }

    /// All entries in the table (tombstones included), in key order.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] or I/O failures.
    #[allow(clippy::type_complexity)]
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
        self.range(&[], &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strata-kv-sst-{tag}-{}.sst", std::process::id()))
    }

    fn build_table(tag: &str, n: u32, block_bytes: usize, bloom_bits: u32) -> SsTable {
        let path = temp_path(tag);
        let mut writer = SsTableWriter::create(&path, block_bytes, n as usize, bloom_bits).unwrap();
        for i in 0..n {
            let key = format!("key-{i:06}");
            if i % 10 == 3 {
                writer.add(key.as_bytes(), None).unwrap(); // tombstone
            } else {
                writer
                    .add(key.as_bytes(), Some(format!("value-{i}").as_bytes()))
                    .unwrap();
            }
        }
        writer.finish().unwrap()
    }

    #[test]
    fn point_lookups_hit_values_and_tombstones() {
        let table = build_table("point", 1_000, 256, 10);
        assert_eq!(
            table.get(b"key-000005").unwrap(),
            Some(Some(b"value-5".to_vec()))
        );
        assert_eq!(table.get(b"key-000003").unwrap(), Some(None), "tombstone");
        assert_eq!(table.get(b"key-999999").unwrap(), None);
        assert_eq!(table.get(b"a-before-everything").unwrap(), None);
        assert_eq!(table.entry_count(), 1_000);
        fs::remove_file(table.path()).unwrap();
    }

    #[test]
    fn works_without_bloom_filter() {
        let table = build_table("nobloom", 100, 256, 0);
        assert!(!table.has_bloom());
        assert_eq!(
            table.get(b"key-000001").unwrap(),
            Some(Some(b"value-1".to_vec()))
        );
        assert_eq!(table.get(b"missing").unwrap(), None);
        fs::remove_file(table.path()).unwrap();
    }

    #[test]
    fn range_scans_are_ordered_and_bounded() {
        let table = build_table("range", 500, 128, 10);
        let got = table.range(b"key-000100", b"key-000110").unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"key-000100".to_vec());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        // Open end.
        let tail = table.range(b"key-000495", b"").unwrap();
        assert_eq!(tail.len(), 5);
        fs::remove_file(table.path()).unwrap();
    }

    #[test]
    fn scan_all_round_trips_every_entry() {
        let table = build_table("scanall", 777, 100, 10);
        let all = table.scan_all().unwrap();
        assert_eq!(all.len(), 777);
        assert_eq!(all.iter().filter(|(_, v)| v.is_none()).count(), 78);
        fs::remove_file(table.path()).unwrap();
    }

    #[test]
    fn rejects_out_of_order_keys() {
        let path = temp_path("order");
        let mut writer = SsTableWriter::create(&path, 256, 10, 10).unwrap();
        writer.add(b"b", Some(b"1")).unwrap();
        assert!(writer.add(b"a", Some(b"2")).is_err());
        assert!(writer.add(b"b", Some(b"2")).is_err(), "duplicates too");
        drop(writer);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_corruption() {
        let table = build_table("corrupt", 100, 128, 10);
        let path = table.path().to_path_buf();
        drop(table);
        let mut data = fs::read(&path).unwrap();
        data[10] ^= 0xFF; // inside the first data block
        fs::write(&path, &data).unwrap();
        let table = SsTable::open(&path).unwrap(); // index/footer intact
        assert!(matches!(table.get(b"key-000001"), Err(Error::Corrupt(_))));
        // Now break the magic.
        let len = data.len();
        data[len - 1] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        assert!(matches!(SsTable::open(&path), Err(Error::Corrupt(_))));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_table_is_valid() {
        let path = temp_path("empty");
        let writer = SsTableWriter::create(&path, 256, 0, 10).unwrap();
        let table = writer.finish().unwrap();
        assert_eq!(table.entry_count(), 0);
        assert_eq!(table.get(b"anything").unwrap(), None);
        assert!(table.scan_all().unwrap().is_empty());
        fs::remove_file(&path).unwrap();
    }
}
