//! K-way merging of sorted entry sources with version precedence.

use std::iter::Peekable;

/// An entry as produced by the memtable or an SSTable: key plus
/// either a live value or a tombstone.
pub type Entry = (Vec<u8>, Option<Vec<u8>>);

/// Merges several key-ordered entry iterators, yielding each key once
/// with the value from the **lowest-indexed** source that contains it
/// (sources are ordered newest-first, so index 0 wins).
///
/// Tombstones are yielded like values — callers that want only live
/// data filter them; compaction needs to see them.
pub struct MergeIterator<I: Iterator<Item = Entry>> {
    sources: Vec<Peekable<I>>,
}

impl<I: Iterator<Item = Entry>> std::fmt::Debug for MergeIterator<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeIterator")
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl<I: Iterator<Item = Entry>> MergeIterator<I> {
    /// Creates a merge over `sources`, ordered newest-first.
    pub fn new(sources: Vec<I>) -> Self {
        MergeIterator {
            sources: sources.into_iter().map(Iterator::peekable).collect(),
        }
    }
}

impl<I: Iterator<Item = Entry>> Iterator for MergeIterator<I> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        // Find the smallest key among the sources' heads; ties go to
        // the newest (lowest-indexed) source.
        let mut winner: Option<(usize, &[u8])> = None;
        for (i, source) in self.sources.iter_mut().enumerate() {
            if let Some((key, _)) = source.peek() {
                let better = match winner {
                    None => true,
                    Some((_, best)) => key.as_slice() < best,
                };
                if better {
                    winner = Some((i, key.as_slice()));
                }
            }
        }
        let (winner_idx, _) = winner?;
        // Temporarily detach the winning key to release the borrow.
        let (key, value) = self.sources[winner_idx].next().expect("peeked entry");
        // Skip shadowed versions of the same key in older sources.
        for source in self.sources.iter_mut().skip(winner_idx + 1) {
            while source
                .peek()
                .is_some_and(|(other, _)| other.as_slice() == key.as_slice())
            {
                source.next();
            }
        }
        // Also drop same-key duplicates in *newer* sources: cannot
        // happen (each source has unique keys and newer sources were
        // checked first), but guard in debug builds.
        debug_assert!(self.sources[..winner_idx].iter_mut().all(|s| s
            .peek()
            .is_none_or(|(other, _)| other.as_slice() != key.as_slice())));
        Some((key, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(spec: &[(&str, Option<&str>)]) -> Vec<Entry> {
        spec.iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.map(|v| v.as_bytes().to_vec())))
            .collect()
    }

    fn merge(sources: Vec<Vec<Entry>>) -> Vec<Entry> {
        MergeIterator::new(sources.into_iter().map(Vec::into_iter).collect()).collect()
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let got = merge(vec![
            entries(&[("b", Some("2"))]),
            entries(&[("a", Some("1")), ("c", Some("3"))]),
        ]);
        assert_eq!(
            got,
            entries(&[("a", Some("1")), ("b", Some("2")), ("c", Some("3"))])
        );
    }

    #[test]
    fn newest_source_wins_ties() {
        let got = merge(vec![
            entries(&[("k", Some("new"))]),
            entries(&[("k", Some("old"))]),
        ]);
        assert_eq!(got, entries(&[("k", Some("new"))]));
    }

    #[test]
    fn tombstones_shadow_older_values() {
        let got = merge(vec![
            entries(&[("k", None)]),
            entries(&[("k", Some("old")), ("z", Some("live"))]),
        ]);
        assert_eq!(got, entries(&[("k", None), ("z", Some("live"))]));
    }

    #[test]
    fn three_way_precedence() {
        let got = merge(vec![
            entries(&[("b", Some("newest-b"))]),
            entries(&[("a", Some("mid-a")), ("b", Some("mid-b"))]),
            entries(&[
                ("a", Some("old-a")),
                ("b", Some("old-b")),
                ("c", Some("old-c")),
            ]),
        ]);
        assert_eq!(
            got,
            entries(&[
                ("a", Some("mid-a")),
                ("b", Some("newest-b")),
                ("c", Some("old-c"))
            ])
        );
    }

    #[test]
    fn empty_sources_are_fine() {
        assert!(merge(vec![]).is_empty());
        assert!(merge(vec![vec![], vec![]]).is_empty());
        let got = merge(vec![vec![], entries(&[("a", Some("1"))])]);
        assert_eq!(got.len(), 1);
    }
}
