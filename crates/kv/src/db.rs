//! The database facade: memtable + WAL + SSTables + compaction.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::batch::WriteBatch;
use crate::error::{Error, Result};
use crate::iterator::MergeIterator;
use crate::memtable::MemTable;
use crate::metrics::KvMetrics;
use crate::options::DbOptions;
use crate::sstable::{SsTable, SsTableWriter};
use crate::wal::{Wal, WalOp};

const WAL_FILE: &str = "wal.log";

struct State {
    memtable: MemTable,
    wal: Option<Wal>,
    /// Flushed tables, newest first.
    tables: Vec<Arc<SsTable>>,
    next_table_id: u64,
}

struct DbInner {
    options: DbOptions,
    dir: Option<PathBuf>,
    state: RwLock<State>,
    metrics: KvMetrics,
}

/// An embedded LSM-tree key-value store.
///
/// `Db` is cheaply cloneable ([`Arc`]-backed) and safe to share
/// across threads: reads take a shared lock, writes an exclusive one.
/// See the [crate documentation](crate) for the storage design.
#[derive(Clone)]
pub struct Db {
    inner: Arc<DbInner>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.read();
        f.debug_struct("Db")
            .field("dir", &self.inner.dir)
            .field("memtable_entries", &state.memtable.len())
            .field("tables", &state.tables.len())
            .finish()
    }
}

impl Db {
    /// Opens (or creates) a disk-backed store under `dir`, replaying
    /// the write-ahead log and loading existing SSTables.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for invalid options,
    /// [`Error::Corrupt`] for damaged files, or I/O failures.
    pub fn open(dir: impl Into<PathBuf>, options: DbOptions) -> Result<Self> {
        options.validate()?;
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        // Load SSTables, newest (highest id) first.
        let mut ids: Vec<u64> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_some_and(|x| x == "sst") {
                    path.file_stem()?.to_str()?.parse::<u64>().ok()
                } else {
                    None
                }
            })
            .collect();
        ids.sort_unstable_by(|a, b| b.cmp(a));
        let mut tables = Vec::with_capacity(ids.len());
        for id in &ids {
            tables.push(Arc::new(SsTable::open(Self::table_path(&dir, *id))?));
        }
        let next_table_id = ids.first().map_or(1, |max| max + 1);

        // Replay the WAL into a fresh memtable. `recover` truncates a
        // torn tail (crash mid-append) so the appends below land
        // where the next replay will find them.
        let mut memtable = MemTable::new();
        let (ops, _torn) = Wal::recover(&dir.join(WAL_FILE))?;
        for op in ops {
            match op {
                WalOp::Put { key, value } => {
                    memtable.put(&key, &value);
                }
                WalOp::Delete { key } => {
                    memtable.delete(&key);
                }
            }
        }
        let wal = if options.wal_enabled() {
            Some(Wal::open(dir.join(WAL_FILE), options.sync_policy_value())?)
        } else {
            None
        };

        let db = Db {
            inner: Arc::new(DbInner {
                options,
                dir: Some(dir),
                state: RwLock::new(State {
                    memtable,
                    wal,
                    tables,
                    next_table_id,
                }),
                metrics: KvMetrics::new(),
            }),
        };
        db.update_gauges(&db.inner.state.read());
        Ok(db)
    }

    /// Opens a purely in-memory store: no WAL, no SSTables, contents
    /// lost on drop. The memtable grows without flushing.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for invalid options.
    pub fn open_in_memory(options: DbOptions) -> Result<Self> {
        options.validate()?;
        Ok(Db {
            inner: Arc::new(DbInner {
                options,
                dir: None,
                state: RwLock::new(State {
                    memtable: MemTable::new(),
                    wal: None,
                    tables: Vec::new(),
                    next_table_id: 1,
                }),
                metrics: KvMetrics::new(),
            }),
        })
    }

    /// Registers this store's latency histograms and size gauges into
    /// `registry` under the `kv_*` names. Recording stays on the same
    /// cells, so the registry renders current values from then on.
    pub fn register_metrics(&self, registry: &strata_obs::Registry) {
        self.inner.metrics.register_into(registry);
    }

    /// Refreshes the size gauges from the locked state.
    fn update_gauges(&self, state: &State) {
        self.inner.metrics.sstables.set(state.tables.len() as i64);
        self.inner
            .metrics
            .memtable_bytes
            .set(state.memtable.approximate_bytes() as i64);
    }

    fn table_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("{id:012}.sst"))
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// I/O failures (WAL append or a triggered flush/compaction).
    pub fn put(&self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> Result<()> {
        let started = Instant::now();
        let (key, value) = (key.as_ref(), value.as_ref());
        let mut state = self.inner.state.write();
        let result = (|| {
            if let Some(wal) = &mut state.wal {
                wal.log_put(key, value)?;
            }
            state.memtable.put(key, value);
            self.maybe_flush(&mut state)
        })();
        self.update_gauges(&state);
        drop(state);
        self.inner.metrics.put_ns.record_since(started);
        result
    }

    /// Deletes `key` (writing a tombstone).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn delete(&self, key: impl AsRef<[u8]>) -> Result<()> {
        let started = Instant::now();
        let key = key.as_ref();
        let mut state = self.inner.state.write();
        let result = (|| {
            if let Some(wal) = &mut state.wal {
                wal.log_delete(key)?;
            }
            state.memtable.delete(key);
            self.maybe_flush(&mut state)
        })();
        self.update_gauges(&state);
        drop(state);
        // Tombstone writes share the put latency series.
        self.inner.metrics.put_ns.record_since(started);
        result
    }

    /// Applies a [`WriteBatch`] atomically.
    ///
    /// # Errors
    ///
    /// I/O failures; on a WAL error no operation of the batch is
    /// applied.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        let started = Instant::now();
        let mut state = self.inner.state.write();
        let result = (|| {
            if let Some(wal) = &mut state.wal {
                for (key, value) in &batch.ops {
                    match value {
                        Some(value) => wal.log_put(key, value)?,
                        None => wal.log_delete(key)?,
                    }
                }
            }
            for (key, value) in &batch.ops {
                match value {
                    Some(value) => state.memtable.put(key, value),
                    None => state.memtable.delete(key),
                };
            }
            self.maybe_flush(&mut state)
        })();
        self.update_gauges(&state);
        drop(state);
        self.inner.metrics.put_ns.record_since(started);
        result
    }

    /// Looks up `key`, returning the most recent version across the
    /// memtable and all SSTables.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] or I/O failures while reading tables.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Vec<u8>>> {
        let started = Instant::now();
        let key = key.as_ref();
        let state = self.inner.state.read();
        let result = (|| {
            if let Some(hit) = state.memtable.get(key) {
                return Ok(hit.map(<[u8]>::to_vec));
            }
            for table in &state.tables {
                if let Some(hit) = table.get(key)? {
                    return Ok(hit);
                }
            }
            Ok(None)
        })();
        drop(state);
        self.inner.metrics.get_ns.record_since(started);
        result
    }

    /// All live `(key, value)` pairs with keys in `[start, end)`, in
    /// key order. An empty `end` scans to the end of the keyspace.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] or I/O failures.
    pub fn range(
        &self,
        start: impl AsRef<[u8]>,
        end: impl AsRef<[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let (start, end) = (start.as_ref(), end.as_ref());
        let state = self.inner.state.read();
        #[allow(clippy::type_complexity)]
        let mut sources: Vec<std::vec::IntoIter<(Vec<u8>, Option<Vec<u8>>)>> = Vec::new();
        let mem: Vec<_> = state
            .memtable
            .range(start, end)
            .map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec)))
            .collect();
        sources.push(mem.into_iter());
        for table in &state.tables {
            sources.push(table.range(start, end)?.into_iter());
        }
        Ok(MergeIterator::new(sources)
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// All live pairs whose key starts with `prefix`, in key order.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] or I/O failures.
    pub fn scan_prefix(&self, prefix: impl AsRef<[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let prefix = prefix.as_ref();
        let end = prefix_end(prefix);
        self.range(prefix, end.as_deref().unwrap_or(&[]))
    }

    /// Forces the memtable into a new SSTable regardless of size.
    /// No-op when the memtable is empty.
    ///
    /// # Errors
    ///
    /// [`Error::MemoryMode`] for in-memory stores; I/O failures.
    pub fn flush(&self) -> Result<()> {
        let mut state = self.inner.state.write();
        if self.inner.dir.is_none() {
            return Err(Error::MemoryMode);
        }
        self.flush_locked(&mut state)
    }

    /// Merges every SSTable into one, dropping shadowed versions and
    /// tombstones. No-op with fewer than two tables.
    ///
    /// # Errors
    ///
    /// [`Error::MemoryMode`] for in-memory stores; I/O failures.
    pub fn compact(&self) -> Result<()> {
        let mut state = self.inner.state.write();
        if self.inner.dir.is_none() {
            return Err(Error::MemoryMode);
        }
        self.compact_locked(&mut state)
    }

    /// Number of SSTables currently on disk.
    pub fn table_count(&self) -> usize {
        self.inner.state.read().tables.len()
    }

    /// Number of entries (tombstones included) in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.inner.state.read().memtable.len()
    }

    fn maybe_flush(&self, state: &mut State) -> Result<()> {
        if self.inner.dir.is_none() {
            return Ok(()); // Memory mode: the memtable is the store.
        }
        if state.memtable.approximate_bytes() < self.inner.options.memtable_bytes_value() {
            return Ok(());
        }
        self.flush_locked(state)?;
        if state.tables.len() > self.inner.options.compaction_trigger_value() {
            self.compact_locked(state)?;
        }
        Ok(())
    }

    fn flush_locked(&self, state: &mut State) -> Result<()> {
        if state.memtable.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let dir = self.inner.dir.as_ref().expect("disk mode checked");
        let entries = state.memtable.take_entries();
        let id = state.next_table_id;
        state.next_table_id += 1;
        let mut writer = SsTableWriter::create(
            Self::table_path(dir, id),
            self.inner.options.block_bytes_value(),
            entries.len(),
            self.inner.options.bloom_bits_per_key_value(),
        )?;
        for (key, value) in &entries {
            writer.add(key, value.as_deref())?;
        }
        let table = writer.finish()?;
        // Make the new table's directory entry durable before the WAL
        // holding its contents is retired.
        strata_chaos::fsync_dir(dir)?;
        state.tables.insert(0, Arc::new(table));
        if let Some(wal) = state.wal.take() {
            wal.remove()?;
            state.wal = Some(Wal::open(
                dir.join(WAL_FILE),
                self.inner.options.sync_policy_value(),
            )?);
        }
        self.update_gauges(state);
        self.inner.metrics.flush_ns.record_since(started);
        Ok(())
    }

    fn compact_locked(&self, state: &mut State) -> Result<()> {
        if state.tables.len() < 2 {
            return Ok(());
        }
        let started = Instant::now();
        let dir = self.inner.dir.as_ref().expect("disk mode checked");
        let mut sources = Vec::with_capacity(state.tables.len());
        let mut expected = 0usize;
        for table in &state.tables {
            let entries = table.scan_all()?;
            expected += entries.len();
            sources.push(entries.into_iter());
        }
        let id = state.next_table_id;
        state.next_table_id += 1;
        let mut writer = SsTableWriter::create(
            Self::table_path(dir, id),
            self.inner.options.block_bytes_value(),
            expected,
            self.inner.options.bloom_bits_per_key_value(),
        )?;
        // Full merge: every version of every key is present, so
        // tombstones can be dropped, not just applied.
        for (key, value) in MergeIterator::new(sources) {
            if let Some(value) = value {
                writer.add(&key, Some(&value))?;
            }
        }
        let merged = Arc::new(writer.finish()?);
        strata_chaos::fsync_dir(dir)?;
        let old = std::mem::replace(&mut state.tables, vec![merged]);
        for table in old {
            fs::remove_file(table.path())?;
        }
        // Persist the removals so a crash cannot resurrect stale
        // tables next to the merged one.
        strata_chaos::fsync_dir(dir)?;
        self.update_gauges(state);
        self.inner.metrics.compact_ns.record_since(started);
        Ok(())
    }
}

/// The smallest byte string greater than every string with `prefix`,
/// or `None` when the prefix is all `0xFF` (scan to the end).
fn prefix_end(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(&last) = end.last() {
        if last == 0xFF {
            end.pop();
        } else {
            *end.last_mut().expect("non-empty") += 1;
            return Some(end);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strata-kv-db-{tag}-{}", std::process::id()))
    }

    fn small_options() -> DbOptions {
        DbOptions::default()
            .memtable_bytes(512)
            .block_bytes(128)
            .compaction_trigger(3)
    }

    #[test]
    fn memory_mode_put_get_delete() {
        let db = Db::open_in_memory(DbOptions::default()).unwrap();
        db.put("a", "1").unwrap();
        assert_eq!(db.get("a").unwrap(), Some(b"1".to_vec()));
        db.delete("a").unwrap();
        assert_eq!(db.get("a").unwrap(), None);
        assert!(matches!(db.flush(), Err(Error::MemoryMode)));
        assert!(matches!(db.compact(), Err(Error::MemoryMode)));
    }

    #[test]
    fn disk_mode_survives_reopen() {
        let dir = temp_dir("reopen");
        let _ = fs::remove_dir_all(&dir);
        {
            let db = Db::open(&dir, small_options()).unwrap();
            db.put("persistent", "yes").unwrap();
            db.put("doomed", "soon").unwrap();
            db.delete("doomed").unwrap();
        } // Only the WAL holds the data at this point.
        let db = Db::open(&dir, small_options()).unwrap();
        assert_eq!(db.get("persistent").unwrap(), Some(b"yes".to_vec()));
        assert_eq!(db.get("doomed").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_moves_data_to_sstables_and_reopen_reads_them() {
        let dir = temp_dir("flush");
        let _ = fs::remove_dir_all(&dir);
        {
            let db = Db::open(&dir, small_options()).unwrap();
            for i in 0..100 {
                db.put(format!("key-{i:04}"), format!("value-{i}")).unwrap();
            }
            db.flush().unwrap();
            assert_eq!(db.memtable_len(), 0);
            assert!(db.table_count() >= 1);
        }
        let db = Db::open(&dir, small_options()).unwrap();
        assert_eq!(db.get("key-0042").unwrap(), Some(b"value-42".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_version_wins_across_tables_and_memtable() {
        let dir = temp_dir("versions");
        let _ = fs::remove_dir_all(&dir);
        let db = Db::open(&dir, small_options()).unwrap();
        db.put("k", "v1").unwrap();
        db.flush().unwrap();
        db.put("k", "v2").unwrap();
        db.flush().unwrap();
        db.put("k", "v3").unwrap(); // still in memtable
        assert_eq!(db.get("k").unwrap(), Some(b"v3".to_vec()));
        db.flush().unwrap();
        assert_eq!(db.get("k").unwrap(), Some(b"v3".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstones_shadow_flushed_values() {
        let dir = temp_dir("tombstone");
        let _ = fs::remove_dir_all(&dir);
        let db = Db::open(&dir, small_options()).unwrap();
        db.put("gone", "was-here").unwrap();
        db.flush().unwrap();
        db.delete("gone").unwrap();
        assert_eq!(db.get("gone").unwrap(), None);
        db.flush().unwrap();
        assert_eq!(db.get("gone").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_collapses_tables_and_drops_tombstones() {
        let dir = temp_dir("compact");
        let _ = fs::remove_dir_all(&dir);
        let db = Db::open(&dir, small_options()).unwrap();
        for round in 0..4 {
            for i in 0..20 {
                db.put(format!("key-{i:03}"), format!("round-{round}"))
                    .unwrap();
            }
            db.delete(format!("key-{round:03}")).unwrap();
            db.flush().unwrap();
        }
        assert!(db.table_count() >= 4);
        db.compact().unwrap();
        assert_eq!(db.table_count(), 1);
        // key-000 was deleted in round 0 but rewritten by rounds 1-3.
        assert_eq!(db.get("key-000").unwrap(), Some(b"round-3".to_vec()));
        // key-003 was deleted in round 3, after its round-3 write.
        assert_eq!(db.get("key-003").unwrap(), None);
        assert_eq!(db.get("key-010").unwrap(), Some(b"round-3".to_vec()));
        // Reopen still reads the merged table.
        drop(db);
        let db = Db::open(&dir, small_options()).unwrap();
        assert_eq!(db.get("key-010").unwrap(), Some(b"round-3".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn automatic_flush_and_compaction_under_load() {
        let dir = temp_dir("auto");
        let _ = fs::remove_dir_all(&dir);
        let db = Db::open(&dir, small_options()).unwrap();
        for i in 0..2_000u32 {
            db.put(format!("key-{:06}", i % 500), format!("v{i}"))
                .unwrap();
        }
        // Memtable limit is 512 bytes: flushes and compactions happened.
        assert!(db.table_count() >= 1);
        assert!(db.table_count() <= small_options().compaction_trigger_value() + 1);
        assert_eq!(
            db.get("key-000499").unwrap(),
            Some(b"v1999".to_vec()),
            "latest write of key 499"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_and_prefix_scans_merge_all_sources() {
        let dir = temp_dir("scan");
        let _ = fs::remove_dir_all(&dir);
        let db = Db::open(&dir, small_options()).unwrap();
        db.put("job/1/low", "100").unwrap();
        db.put("job/1/high", "900").unwrap();
        db.flush().unwrap();
        db.put("job/2/low", "150").unwrap();
        db.put("job/1/low", "120").unwrap(); // overwrite in memtable
        db.delete("job/1/high").unwrap();
        let got = db.scan_prefix("job/1/").unwrap();
        assert_eq!(got, vec![(b"job/1/low".to_vec(), b"120".to_vec())]);
        let all = db.scan_prefix("job/").unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_batch_is_atomic_and_ordered() {
        let db = Db::open_in_memory(DbOptions::default()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put("a", "1").put("a", "2").delete("b");
        db.put("b", "exists").unwrap();
        db.write(batch).unwrap();
        assert_eq!(db.get("a").unwrap(), Some(b"2".to_vec()), "last op wins");
        assert_eq!(db.get("b").unwrap(), None);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let db = Db::open_in_memory(DbOptions::default()).unwrap();
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        db.put(format!("t{t}/k{i}"), format!("{i}")).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for t in 0..4 {
            assert_eq!(db.scan_prefix(format!("t{t}/")).unwrap().len(), 500);
        }
    }

    #[test]
    fn metrics_register_and_track_operations() {
        let dir = temp_dir("metrics");
        let _ = fs::remove_dir_all(&dir);
        let db = Db::open(&dir, small_options()).unwrap();
        let registry = strata_obs::Registry::new();
        db.register_metrics(&registry);
        db.put("k", "v").unwrap();
        let _ = db.get("k").unwrap();
        let _ = db.get("missing").unwrap();
        db.flush().unwrap();
        let text = registry.render();
        assert!(text.contains("kv_put_ns_count 1"), "{text}");
        assert!(text.contains("kv_get_ns_count 2"), "{text}");
        assert!(text.contains("kv_flush_ns_count 1"), "{text}");
        assert!(text.contains("kv_sstables 1"), "{text}");
        assert!(text.contains("kv_memtable_bytes 0"), "{text}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefix_end_computation() {
        assert_eq!(prefix_end(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_end(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_end(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_end(b""), None);
    }
}
