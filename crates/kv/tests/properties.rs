//! Property-based tests: the store behaves like a sorted map under
//! arbitrary operation sequences, across flushes, compactions and
//! reopens.

use std::collections::BTreeMap;

use proptest::prelude::*;
use strata_kv::{Db, DbOptions, WriteBatch};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    Flush,
    Compact,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // A small key universe maximizes overwrite/delete interactions.
    proptest::collection::vec(0u8..8, 1..4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        1 => proptest::collection::vec(
                (key_strategy(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16))),
                1..5
            ).prop_map(Op::Batch),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn apply(db: &Db, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &Op, disk: bool) {
    match op {
        Op::Put(k, v) => {
            db.put(k, v).unwrap();
            model.insert(k.clone(), v.clone());
        }
        Op::Delete(k) => {
            db.delete(k).unwrap();
            model.remove(k);
        }
        Op::Batch(ops) => {
            let mut batch = WriteBatch::new();
            for (k, v) in ops {
                match v {
                    Some(v) => {
                        batch.put(k, v);
                        model.insert(k.clone(), v.clone());
                    }
                    None => {
                        batch.delete(k);
                        model.remove(k);
                    }
                }
            }
            db.write(batch).unwrap();
        }
        Op::Flush if disk => db.flush().unwrap(),
        Op::Compact if disk => db.compact().unwrap(),
        _ => {}
    }
}

fn check_against_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Point lookups.
    for (k, v) in model {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v), "key {k:?}");
    }
    // A key outside the model must be absent.
    assert_eq!(db.get(b"\xFF\xFF\xFF-absent").unwrap(), None);
    // Full range scan equals the model.
    let scanned = db.range(Vec::new(), Vec::new()).unwrap();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// In-memory mode equals the model map.
    #[test]
    fn memory_db_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let db = Db::open_in_memory(DbOptions::default()).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&db, &mut model, op, false);
        }
        check_against_model(&db, &model);
    }

    /// Disk mode equals the model map through flushes, compactions
    /// and a final reopen (WAL + SSTable recovery).
    #[test]
    fn disk_db_matches_model_across_reopen(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        case in 0u32..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "strata-kv-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let options = DbOptions::default().memtable_bytes(256).block_bytes(64);
        let mut model = BTreeMap::new();
        {
            let db = Db::open(&dir, options.clone()).unwrap();
            for op in &ops {
                apply(&db, &mut model, op, true);
            }
            check_against_model(&db, &model);
        }
        let db = Db::open(&dir, options).unwrap();
        check_against_model(&db, &model);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Prefix scans return exactly the model's matching entries.
    #[test]
    fn prefix_scans_match_model(
        entries in proptest::collection::btree_map(key_strategy(), proptest::collection::vec(any::<u8>(), 0..8), 0..40),
        prefix in proptest::collection::vec(0u8..8, 0..3),
    ) {
        let db = Db::open_in_memory(DbOptions::default()).unwrap();
        for (k, v) in &entries {
            db.put(k, v).unwrap();
        }
        let got = db.scan_prefix(&prefix).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
