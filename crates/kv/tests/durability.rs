//! Durability-focused integration tests: WAL on/off semantics, large
//! values, and byte-wise key ordering.

use strata_kv::{Db, DbOptions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("strata-kv-int-{tag}-{}", std::process::id()))
}

#[test]
fn without_wal_flushed_data_survives_but_memtable_does_not() {
    let dir = temp_dir("nowal");
    let _ = std::fs::remove_dir_all(&dir);
    let options = DbOptions::default().wal(false);
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        db.put("durable", "flushed").unwrap();
        db.flush().unwrap();
        db.put("volatile", "memtable-only").unwrap();
        // Dropped without flush: `volatile` was never persisted
        // anywhere (that is the documented no-WAL trade-off).
    }
    let db = Db::open(&dir, options).unwrap();
    assert_eq!(db.get("durable").unwrap(), Some(b"flushed".to_vec()));
    assert_eq!(db.get("volatile").unwrap(), None);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn with_wal_everything_survives() {
    let dir = temp_dir("wal");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put("a", "1").unwrap();
        db.flush().unwrap();
        db.put("b", "2").unwrap(); // only in WAL + memtable
    }
    let db = Db::open(&dir, DbOptions::default()).unwrap();
    assert_eq!(db.get("a").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get("b").unwrap(), Some(b"2".to_vec()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn megabyte_values_round_trip_through_sstables() {
    let dir = temp_dir("large");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::open(&dir, DbOptions::default().block_bytes(4096)).unwrap();
    let big: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
    db.put("ot-image/job-1/layer-0", &big).unwrap();
    db.flush().unwrap();
    assert_eq!(db.get("ot-image/job-1/layer-0").unwrap(), Some(big.clone()));
    drop(db);
    let db = Db::open(&dir, DbOptions::default()).unwrap();
    assert_eq!(db.get("ot-image/job-1/layer-0").unwrap(), Some(big));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn range_order_is_bytewise_across_sources() {
    let dir = temp_dir("order");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::open(&dir, DbOptions::default()).unwrap();
    // Mixed-length keys exercise byte-wise (not length-first) order.
    let keys: Vec<&[u8]> = vec![b"a", b"a\x00", b"a\xff", b"ab", b"b", b"\xff"];
    for (i, k) in keys.iter().enumerate() {
        db.put(k, [i as u8]).unwrap();
        if i % 2 == 0 {
            db.flush().unwrap(); // spread keys across tables
        }
    }
    let got: Vec<Vec<u8>> = db
        .range(Vec::new(), Vec::new())
        .unwrap()
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let mut expected: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
    expected.sort();
    assert_eq!(got, expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn overwrite_heavy_workload_compacts_away_garbage() {
    let dir = temp_dir("compactgc");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::open(
        &dir,
        DbOptions::default()
            .memtable_bytes(2 * 1024)
            .compaction_trigger(3),
    )
    .unwrap();
    // Write the same 10 keys 500 times each.
    for round in 0..500u32 {
        for k in 0..10 {
            db.put(format!("key-{k}"), format!("round-{round}"))
                .unwrap();
        }
    }
    db.flush().unwrap();
    db.compact().unwrap();
    assert_eq!(db.table_count(), 1);
    for k in 0..10 {
        assert_eq!(
            db.get(format!("key-{k}")).unwrap(),
            Some(b"round-499".to_vec())
        );
    }
    // The compacted table holds exactly the 10 live keys.
    let all = db.range(Vec::new(), Vec::new()).unwrap();
    assert_eq!(all.len(), 10);
    std::fs::remove_dir_all(&dir).unwrap();
}
