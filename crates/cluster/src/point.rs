//! Points in build-chamber space.

use std::fmt;

/// A point in 3-D build space: `x`/`y` within the layer plane and `z`
/// along the build direction (e.g. layer index × layer thickness).
/// Units are up to the caller, but all of `x`, `y`, `z` and the
/// clustering ε must share them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Position along the layer plane's first axis.
    pub x: f64,
    /// Position along the layer plane's second axis.
    pub y: f64,
    /// Position along the build direction.
    pub z: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point { x, y, z }
    }

    /// Creates an in-plane point (`z = 0`), convenient for
    /// single-layer clustering.
    pub const fn planar(x: f64, y: f64) -> Self {
        Point { x, y, z: 0.0 }
    }

    /// Squared Euclidean distance to `other` (avoids the square root
    /// on the clustering hot path).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn planar_points_have_zero_z() {
        assert_eq!(Point::planar(1.0, 2.0), Point::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, -2.0, 3.0);
        let b = Point::new(-4.0, 5.0, -6.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }
}
