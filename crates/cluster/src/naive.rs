//! Textbook O(n²) DBSCAN: the correctness oracle and ablation
//! baseline for the grid-accelerated implementation.

use std::collections::VecDeque;

use crate::dbscan::{DbscanParams, Label};
use crate::point::Point;

/// Runs DBSCAN with brute-force ε-neighborhood queries. Semantics are
/// identical to [`dbscan`](crate::dbscan::dbscan); only the neighbor
/// search differs (O(n) per query instead of O(local density)).
pub fn dbscan_naive(points: &[Point], params: &DbscanParams) -> Vec<Label> {
    let eps_sq = params.eps() * params.eps();
    let neighbors_of = |i: usize| -> Vec<u32> {
        points
            .iter()
            .enumerate()
            .filter(|(_, q)| q.distance_sq(&points[i]) <= eps_sq)
            .map(|(j, _)| j as u32)
            .collect()
    };

    let mut labels = vec![None::<Label>; points.len()];
    let mut next_cluster = 0u32;
    let mut queue = VecDeque::new();
    for seed in 0..points.len() {
        if labels[seed].is_some() {
            continue;
        }
        let neighbors = neighbors_of(seed);
        if neighbors.len() < params.min_pts() {
            labels[seed] = Some(Label::Noise);
            continue;
        }
        let cluster = Label::Cluster(next_cluster);
        next_cluster += 1;
        labels[seed] = Some(cluster);
        queue.extend(neighbors);
        while let Some(idx) = queue.pop_front() {
            let idx = idx as usize;
            match labels[idx] {
                Some(Label::Noise) => labels[idx] = Some(cluster),
                Some(_) => continue,
                None => {
                    labels[idx] = Some(cluster);
                    let reach = neighbors_of(idx);
                    if reach.len() >= params.min_pts() {
                        queue.extend(reach);
                    }
                }
            }
        }
    }
    labels
        .into_iter()
        .map(|l| l.expect("every point labeled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;

    /// Cluster labels up to renaming: map each label vector to
    /// "first-seen index" normal form.
    fn canonical(labels: &[Label]) -> Vec<i64> {
        let mut mapping = std::collections::HashMap::new();
        labels
            .iter()
            .map(|l| match l {
                Label::Noise => -1,
                Label::Cluster(id) => {
                    let next = mapping.len() as i64;
                    *mapping.entry(*id).or_insert(next)
                }
            })
            .collect()
    }

    #[test]
    fn grid_and_naive_agree_on_structured_data() {
        let mut points = Vec::new();
        for cx in [0.0, 7.0, 14.0] {
            for i in 0..25 {
                let a = i as f64 * 0.7;
                points.push(Point::new(cx + 0.8 * a.cos(), 0.8 * a.sin(), 0.0));
            }
        }
        points.push(Point::new(100.0, 100.0, 100.0));
        let params = DbscanParams::new(1.0, 3).unwrap();
        assert_eq!(
            canonical(&dbscan(&points, &params)),
            canonical(&dbscan_naive(&points, &params))
        );
    }

    #[test]
    fn grid_and_naive_agree_on_pseudorandom_data() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 500.0
        };
        for trial in 0..5 {
            let points: Vec<Point> = (0..400)
                .map(|_| Point::new(next(), next(), next() / 10.0))
                .collect();
            let params = DbscanParams::new(0.9, 4).unwrap();
            assert_eq!(
                canonical(&dbscan(&points, &params)),
                canonical(&dbscan_naive(&points, &params)),
                "trial {trial}"
            );
        }
    }
}
