//! A uniform grid index for ε-neighborhood queries.
//!
//! With cell edge = ε, all neighbors of a point lie in its own cell
//! or the 26 surrounding ones, turning the O(n) linear scan per query
//! into an O(local density) lookup — the standard acceleration for
//! DBSCAN on spatial data (cf. the grid/partitioning ideas in Lisco
//! and IP.LSH.DBSCAN cited by the paper).

use std::collections::HashMap;

use crate::point::Point;

/// Integer cell coordinates.
type Cell = (i64, i64, i64);

/// A uniform grid over a point set, with cell edge equal to the query
/// radius.
#[derive(Debug)]
pub struct GridIndex<'a> {
    points: &'a [Point],
    cells: HashMap<Cell, Vec<u32>>,
    eps: f64,
    eps_sq: f64,
}

impl<'a> GridIndex<'a> {
    /// Builds the index for `points` with query radius `eps`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `eps > 0`; the public constructors in
    /// [`dbscan()`](crate::dbscan()) validate it.
    pub fn build(points: &'a [Point], eps: f64) -> Self {
        debug_assert!(eps > 0.0);
        let mut cells: HashMap<Cell, Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells
                .entry(Self::cell_of(p, eps))
                .or_default()
                .push(i as u32);
        }
        GridIndex {
            points,
            cells,
            eps,
            eps_sq: eps * eps,
        }
    }

    fn cell_of(p: &Point, eps: f64) -> Cell {
        (
            (p.x / eps).floor() as i64,
            (p.y / eps).floor() as i64,
            (p.z / eps).floor() as i64,
        )
    }

    /// Indexes of all points within `eps` of `points[query]`,
    /// including `query` itself (DBSCAN counts the point toward its
    /// own neighborhood).
    pub fn neighbors_of(&self, query: usize) -> Vec<u32> {
        let p = &self.points[query];
        let (cx, cy, cz) = Self::cell_of(p, self.eps);
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &j in bucket {
                            if self.points[j as usize].distance_sq(p) <= self.eps_sq {
                                out.push(j);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of occupied grid cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_all_and_only_in_range_neighbors() {
        let points = vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(0.9, 0.0, 0.0),  // in range of 0 (d=0.9)
            Point::new(1.5, 0.0, 0.0),  // out of range of 0, in range of 1
            Point::new(10.0, 0.0, 0.0), // isolated
        ];
        let grid = GridIndex::build(&points, 1.0);
        let mut n0 = grid.neighbors_of(0);
        n0.sort_unstable();
        assert_eq!(n0, vec![0, 1]);
        let mut n1 = grid.neighbors_of(1);
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 1, 2]);
        assert_eq!(grid.neighbors_of(3), vec![3]);
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let points = vec![Point::new(-0.1, -0.1, 0.0), Point::new(0.1, 0.1, 0.0)];
        let grid = GridIndex::build(&points, 1.0);
        assert_eq!(grid.neighbors_of(0).len(), 2, "straddles cell boundary");
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        // Deterministic LCG so the test needs no rng dependency here.
        let mut seed = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0
        };
        let points: Vec<Point> = (0..300)
            .map(|_| Point::new(next(), next(), next()))
            .collect();
        let eps = 0.8;
        let grid = GridIndex::build(&points, eps);
        for i in 0..points.len() {
            let mut expected: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance_sq(&points[i]) <= eps * eps)
                .map(|(j, _)| j as u32)
                .collect();
            expected.sort_unstable();
            let mut got = grid.neighbors_of(i);
            got.sort_unstable();
            assert_eq!(got, expected, "point {i}");
        }
    }
}
