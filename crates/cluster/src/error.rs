//! Error type for clustering parameter validation.

use std::fmt;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced when configuring a clustering algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter is out of its valid range.
    InvalidParams(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams(msg) => write!(f, "invalid clustering parameters: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        assert!(Error::InvalidParams("eps must be positive".into())
            .to_string()
            .contains("eps"));
    }
}
