//! Grid-accelerated DBSCAN (Ester et al., KDD 1996).

use std::collections::VecDeque;

use crate::error::{Error, Result};
use crate::grid::GridIndex;
use crate::point::Point;

/// DBSCAN parameters: neighborhood radius ε and the core-point
/// density threshold `min_pts` (a point's ε-neighborhood, itself
/// included, must hold at least `min_pts` points for the point to be
/// *core*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    eps: f64,
    min_pts: usize,
}

impl DbscanParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParams`] unless `eps > 0` (and finite) and
    /// `min_pts ≥ 1`.
    pub fn new(eps: f64, min_pts: usize) -> Result<Self> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(Error::InvalidParams(format!(
                "eps must be positive and finite, got {eps}"
            )));
        }
        if min_pts == 0 {
            return Err(Error::InvalidParams("min_pts must be ≥ 1".into()));
        }
        Ok(DbscanParams { eps, min_pts })
    }

    /// The neighborhood radius ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The core-point density threshold.
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }
}

/// A point's cluster assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with the given dense id (0, 1, …, in
    /// discovery order).
    Cluster(u32),
}

impl Label {
    /// `true` for [`Label::Noise`].
    pub fn is_noise(&self) -> bool {
        matches!(self, Label::Noise)
    }

    /// The cluster id, if any.
    pub fn cluster(&self) -> Option<u32> {
        match self {
            Label::Cluster(id) => Some(*id),
            Label::Noise => None,
        }
    }
}

/// Runs DBSCAN over `points`, returning one [`Label`] per point (same
/// order as the input).
///
/// Semantics follow the original algorithm exactly: core points are
/// those with at least `min_pts` points within ε (themselves
/// included); clusters are maximal sets of density-connected points;
/// border points join the cluster of the first core point that
/// reaches them; the rest is noise. Runtime is O(n · density) thanks
/// to the uniform grid index.
pub fn dbscan(points: &[Point], params: &DbscanParams) -> Vec<Label> {
    let mut labels = vec![None::<Label>; points.len()];
    if points.is_empty() {
        return Vec::new();
    }
    let grid = GridIndex::build(points, params.eps);
    let mut next_cluster = 0u32;
    let mut queue = VecDeque::new();

    for seed in 0..points.len() {
        if labels[seed].is_some() {
            continue;
        }
        let neighbors = grid.neighbors_of(seed);
        if neighbors.len() < params.min_pts {
            labels[seed] = Some(Label::Noise);
            continue;
        }
        // `seed` is a core point: grow a new cluster from it.
        let cluster = Label::Cluster(next_cluster);
        next_cluster += 1;
        labels[seed] = Some(cluster);
        queue.extend(neighbors);
        while let Some(idx) = queue.pop_front() {
            let idx = idx as usize;
            match labels[idx] {
                Some(Label::Noise) => {
                    // Border point previously misjudged as noise.
                    labels[idx] = Some(cluster);
                }
                Some(_) => continue,
                None => {
                    labels[idx] = Some(cluster);
                    let reach = grid.neighbors_of(idx);
                    if reach.len() >= params.min_pts {
                        queue.extend(reach); // idx is core: expand through it.
                    }
                }
            }
        }
    }
    labels
        .into_iter()
        .map(|l| l.expect("every point labeled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.399963; // golden angle: deterministic spread
                let r = spread * (i as f64 / n as f64);
                Point::new(cx + r * angle.cos(), cy + r * angle.sin(), 0.0)
            })
            .collect()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(DbscanParams::new(0.0, 3).is_err());
        assert!(DbscanParams::new(-1.0, 3).is_err());
        assert!(DbscanParams::new(f64::NAN, 3).is_err());
        assert!(DbscanParams::new(1.0, 0).is_err());
        assert!(DbscanParams::new(1.0, 1).is_ok());
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(dbscan(&[], &DbscanParams::new(1.0, 3).unwrap()).is_empty());
    }

    #[test]
    fn two_blobs_and_noise() {
        let mut points = blob(0.0, 0.0, 30, 1.0);
        points.extend(blob(50.0, 50.0, 30, 1.0));
        points.push(Point::new(25.0, 25.0, 0.0)); // lone outlier
        let labels = dbscan(&points, &DbscanParams::new(1.0, 4).unwrap());
        let c0 = labels[0].cluster().expect("blob 1 clustered");
        let c1 = labels[30].cluster().expect("blob 2 clustered");
        assert_ne!(c0, c1);
        assert!(labels[..30].iter().all(|l| *l == Label::Cluster(c0)));
        assert!(labels[30..60].iter().all(|l| *l == Label::Cluster(c1)));
        assert!(labels[60].is_noise());
    }

    #[test]
    fn chain_connectivity_respects_eps() {
        // A chain with 0.9 spacing is one cluster at eps=1, but
        // splits when a 1.5 gap interrupts it.
        let mut points: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64 * 0.9, 0.0, 0.0))
            .collect();
        points.extend((0..10).map(|i| Point::new(9.0 * 0.9 + 1.5 + i as f64 * 0.9, 0.0, 0.0)));
        let labels = dbscan(&points, &DbscanParams::new(1.0, 2).unwrap());
        let first = labels[0].cluster().unwrap();
        let second = labels[10].cluster().unwrap();
        assert_ne!(first, second);
        assert!(labels[..10].iter().all(|l| l.cluster() == Some(first)));
        assert!(labels[10..].iter().all(|l| l.cluster() == Some(second)));
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let points = vec![Point::new(0.0, 0.0, 0.0), Point::new(100.0, 0.0, 0.0)];
        let labels = dbscan(&points, &DbscanParams::new(1.0, 1).unwrap());
        assert!(labels.iter().all(|l| !l.is_noise()));
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn clusters_span_the_z_axis() {
        // Same (x, y) across 5 consecutive layers 0.04 apart: one 3-D
        // cluster when eps covers the layer pitch.
        let points: Vec<Point> = (0..5)
            .map(|l| Point::new(1.0, 1.0, l as f64 * 0.04))
            .collect();
        let labels = dbscan(&points, &DbscanParams::new(0.05, 2).unwrap());
        assert!(labels.iter().all(|l| *l == Label::Cluster(0)));
    }

    #[test]
    fn cluster_ids_are_dense() {
        let mut points = blob(0.0, 0.0, 20, 0.5);
        points.extend(blob(10.0, 0.0, 20, 0.5));
        points.extend(blob(20.0, 0.0, 20, 0.5));
        let labels = dbscan(&points, &DbscanParams::new(1.0, 3).unwrap());
        let mut ids: Vec<u32> = labels.iter().filter_map(Label::cluster).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
