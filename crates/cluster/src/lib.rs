//! `strata-cluster` — clustering algorithms for AM defect detection.
//!
//! The STRATA use-case (paper §5) clusters specimen portions melted
//! with too-low or too-high thermal energy, *within and across
//! layers*, and reports clusters bigger than a volume threshold. The
//! paper chooses **DBSCAN** (Ester et al., KDD'96) over the k-means
//! of earlier defect-detection work because the number of clusters is
//! unknown in advance and defects have arbitrary shapes.
//!
//! This crate provides:
//!
//! * [`dbscan()`] — grid-accelerated DBSCAN over 3-D points (the grid
//!   index makes ε-neighborhood queries O(neighbors));
//! * [`naive`] — the textbook O(n²) DBSCAN, kept as the correctness
//!   oracle for property tests and as the ablation baseline;
//! * [`kmeans()`] — k-means++ (the paper's comparator from prior work
//!   on pore classification);
//! * [`layered`] — incremental cross-layer clustering over a sliding
//!   window of the most recent `L` layers, with stable cluster
//!   identities across window slides (the engine behind STRATA's
//!   `correlateEvents`);
//! * [`quality`] — silhouette and Davies–Bouldin metrics making the
//!   DBSCAN-vs-k-means accuracy comparison quantitative.
//!
//! # Example
//!
//! ```
//! use strata_cluster::{dbscan, DbscanParams, Point};
//!
//! let points = vec![
//!     Point::new(0.0, 0.0, 0.0),
//!     Point::new(0.5, 0.0, 0.0),
//!     Point::new(0.0, 0.5, 0.0),
//!     Point::new(100.0, 100.0, 0.0), // isolated → noise
//! ];
//! let labels = dbscan(&points, &DbscanParams::new(1.0, 3)?);
//! assert_eq!(labels[0], labels[1]);
//! assert!(labels[3].is_noise());
//! # Ok::<(), strata_cluster::Error>(())
//! ```

pub mod dbscan;
pub mod error;
pub mod grid;
pub mod kmeans;
pub mod layered;
pub mod naive;
pub mod point;
pub mod quality;
pub mod summary;

pub use dbscan::{dbscan, DbscanParams, Label};
pub use error::{Error, Result};
pub use kmeans::{kmeans, KmeansParams, KmeansResult};
pub use layered::{LayeredClusterer, LayeredParams};
pub use point::Point;
pub use quality::{davies_bouldin, silhouette};
pub use summary::ClusterSummary;
