//! k-means with k-means++ seeding: the baseline the paper's use-case
//! motivates DBSCAN against (prior pore-classification work used
//! k-means; see Snell et al. 2020, cited as reference 29 in the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};
use crate::point::Point;

/// k-means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansParams {
    k: usize,
    max_iterations: usize,
    tolerance: f64,
    seed: u64,
}

impl KmeansParams {
    /// Creates validated parameters for `k` clusters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParams`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParams("k must be ≥ 1".into()));
        }
        Ok(KmeansParams {
            k,
            max_iterations: 100,
            tolerance: 1e-6,
            seed: 0xC0FFEE,
        })
    }

    /// Caps Lloyd iterations (default 100).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Sets the convergence tolerance on centroid movement
    /// (default 1e-6).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol.max(0.0);
        self
    }

    /// Seeds the k-means++ initialization for reproducible runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// The output of [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Final cluster centroids (≤ k of them; fewer when there are
    /// fewer points than k).
    pub centroids: Vec<Point>,
    /// Per-point centroid index, same order as the input.
    pub assignments: Vec<u32>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations actually performed.
    pub iterations: usize,
}

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// Returns an empty result for an empty input. When `k` exceeds the
/// number of points, every point becomes its own centroid.
pub fn kmeans(points: &[Point], params: &KmeansParams) -> KmeansResult {
    if points.is_empty() {
        return KmeansResult {
            centroids: Vec::new(),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = params.k.min(points.len());
    let mut rng = StdRng::seed_from_u64(params.seed);

    // k-means++ seeding: first centroid uniform, then proportional to
    // squared distance from the nearest chosen centroid.
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())]);
    let mut dist_sq: Vec<f64> = points
        .iter()
        .map(|p| p.distance_sq(&centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= f64::EPSILON {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        let c = points[chosen];
        centroids.push(c);
        for (d, p) in dist_sq.iter_mut().zip(points) {
            *d = d.min(p.distance_sq(&c));
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0u32; points.len()];
    let mut iterations = 0;
    for _ in 0..params.max_iterations {
        iterations += 1;
        for (a, p) in assignments.iter_mut().zip(points) {
            let mut best = (f64::INFINITY, 0u32);
            for (ci, c) in centroids.iter().enumerate() {
                let d = p.distance_sq(c);
                if d < best.0 {
                    best = (d, ci as u32);
                }
            }
            *a = best.1;
        }
        let mut sums = vec![(0.0f64, 0.0f64, 0.0f64, 0usize); centroids.len()];
        for (a, p) in assignments.iter().zip(points) {
            let s = &mut sums[*a as usize];
            s.0 += p.x;
            s.1 += p.y;
            s.2 += p.z;
            s.3 += 1;
        }
        let mut movement = 0.0f64;
        for (c, (sx, sy, sz, n)) in centroids.iter_mut().zip(sums) {
            if n == 0 {
                continue; // Empty cluster keeps its centroid.
            }
            let updated = Point::new(sx / n as f64, sy / n as f64, sz / n as f64);
            movement = movement.max(c.distance(&updated));
            *c = updated;
        }
        if movement <= params.tolerance {
            break;
        }
    }

    let inertia = assignments
        .iter()
        .zip(points)
        .map(|(a, p)| p.distance_sq(&centroids[*a as usize]))
        .sum();
    KmeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Point> {
        let mut points = Vec::new();
        for i in 0..40 {
            let a = i as f64 * 0.7;
            points.push(Point::new(a.cos(), a.sin(), 0.0));
            points.push(Point::new(20.0 + a.cos(), 20.0 + a.sin(), 0.0));
        }
        points
    }

    #[test]
    fn rejects_zero_k() {
        assert!(KmeansParams::new(0).is_err());
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs();
        let result = kmeans(&points, &KmeansParams::new(2).unwrap());
        // Points alternate blob A / blob B: assignments must too.
        let a = result.assignments[0];
        let b = result.assignments[1];
        assert_ne!(a, b);
        for pair in result.assignments.chunks(2) {
            assert_eq!(pair[0], a);
            assert_eq!(pair[1], b);
        }
        assert!(result.inertia < points.len() as f64, "tight clusters");
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let points = two_blobs();
        let p = KmeansParams::new(2).unwrap().seed(7);
        assert_eq!(kmeans(&points, &p), kmeans(&points, &p));
    }

    #[test]
    fn handles_fewer_points_than_k() {
        let points = vec![Point::new(0.0, 0.0, 0.0), Point::new(1.0, 0.0, 0.0)];
        let result = kmeans(&points, &KmeansParams::new(5).unwrap());
        assert_eq!(result.centroids.len(), 2);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn empty_input() {
        let result = kmeans(&[], &KmeansParams::new(3).unwrap());
        assert!(result.centroids.is_empty());
        assert!(result.assignments.is_empty());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points = two_blobs();
        let i1 = kmeans(&points, &KmeansParams::new(1).unwrap()).inertia;
        let i2 = kmeans(&points, &KmeansParams::new(2).unwrap()).inertia;
        assert!(i2 < i1);
    }
}
