//! Cluster-quality metrics.
//!
//! The paper motivates DBSCAN over the k-means of earlier
//! defect-classification work partly on *accuracy* grounds (citing
//! pi-Lisco, IP.LSH.DBSCAN and Wang et al.). These metrics let the
//! repository make that comparison quantitative on synthetic defect
//! fields: the silhouette coefficient rewards tight, well-separated
//! clusters, and the Davies–Bouldin index penalizes overlapping ones
//! (lower is better).

use crate::point::Point;

/// Mean silhouette coefficient over all clustered points, in
/// `[-1, 1]` (higher is better). Points labeled `None` (noise) are
/// excluded, matching standard practice for density clusterings.
///
/// Returns `None` when fewer than 2 clusters have members (the
/// silhouette is undefined).
pub fn silhouette(points: &[Point], assignment: &[Option<u32>]) -> Option<f64> {
    assert_eq!(points.len(), assignment.len(), "one label per point");
    let mut clusters: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, label) in assignment.iter().enumerate() {
        if let Some(c) = label {
            clusters.entry(*c).or_default().push(i);
        }
    }
    if clusters.len() < 2 {
        return None;
    }
    let mean_dist = |i: usize, members: &[usize]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &j in members {
            if j != i {
                sum += points[i].distance(&points[j]);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };

    let mut total = 0.0;
    let mut count = 0usize;
    for (label, members) in &clusters {
        for &i in members {
            // a(i): mean intra-cluster distance.
            let a = mean_dist(i, members);
            // b(i): smallest mean distance to another cluster.
            let b = clusters
                .iter()
                .filter(|(other, _)| *other != label)
                .map(|(_, other_members)| mean_dist(i, other_members))
                .fold(f64::INFINITY, f64::min);
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
            count += 1;
        }
    }
    Some(total / count as f64)
}

/// Davies–Bouldin index (lower is better; 0 is ideal). Noise points
/// are excluded. Returns `None` with fewer than 2 clusters.
pub fn davies_bouldin(points: &[Point], assignment: &[Option<u32>]) -> Option<f64> {
    assert_eq!(points.len(), assignment.len(), "one label per point");
    let mut clusters: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, label) in assignment.iter().enumerate() {
        if let Some(c) = label {
            clusters.entry(*c).or_default().push(i);
        }
    }
    if clusters.len() < 2 {
        return None;
    }
    // Centroids and mean scatter per cluster.
    let stats: Vec<(Point, f64)> = clusters
        .values()
        .map(|members| {
            let n = members.len() as f64;
            let centroid = Point::new(
                members.iter().map(|&i| points[i].x).sum::<f64>() / n,
                members.iter().map(|&i| points[i].y).sum::<f64>() / n,
                members.iter().map(|&i| points[i].z).sum::<f64>() / n,
            );
            let scatter = members
                .iter()
                .map(|&i| points[i].distance(&centroid))
                .sum::<f64>()
                / n;
            (centroid, scatter)
        })
        .collect();

    let k = stats.len();
    let mut total = 0.0;
    for i in 0..k {
        let mut worst: f64 = 0.0;
        for j in 0..k {
            if i == j {
                continue;
            }
            let separation = stats[i].0.distance(&stats[j].0);
            if separation > 0.0 {
                worst = worst.max((stats[i].1 + stats[j].1) / separation);
            }
        }
        total += worst;
    }
    Some(total / k as f64)
}

/// Converts DBSCAN labels into the `Option<u32>` assignment these
/// metrics take (noise → `None`).
pub fn assignment_from_labels(labels: &[crate::dbscan::Label]) -> Vec<Option<u32>> {
    labels.iter().map(|l| l.cluster()).collect()
}

/// Converts k-means assignments (every point belongs to a centroid)
/// into the `Option<u32>` form.
pub fn assignment_from_kmeans(assignments: &[u32]) -> Vec<Option<u32>> {
    assignments.iter().map(|&a| Some(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{dbscan, DbscanParams};
    use crate::kmeans::{kmeans, KmeansParams};

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.399963;
                let r = spread * (i as f64 / n as f64);
                Point::new(cx + r * angle.cos(), cy + r * angle.sin(), 0.0)
            })
            .collect()
    }

    /// Two tight, well-separated blobs plus scattered noise.
    fn noisy_blobs() -> Vec<Point> {
        let mut points = blob(0.0, 0.0, 40, 1.0);
        points.extend(blob(30.0, 30.0, 40, 1.0));
        // A thin bridge of outliers k-means must absorb but DBSCAN
        // marks as noise.
        for i in 0..10 {
            points.push(Point::new(3.0 * i as f64, 15.0, 0.0));
        }
        points
    }

    #[test]
    fn silhouette_prefers_separated_blobs() {
        let points = noisy_blobs();
        // Perfect assignment: blob 0, blob 1, noise.
        let mut perfect = vec![Some(0u32); 40];
        perfect.extend(vec![Some(1u32); 40]);
        perfect.extend(vec![None; 10]);
        let good = silhouette(&points, &perfect).unwrap();
        assert!(good > 0.8, "separated blobs score high: {good}");

        // Broken assignment: split one blob in half.
        let mut broken = vec![Some(0u32); 20];
        broken.extend(vec![Some(2u32); 20]);
        broken.extend(vec![Some(1u32); 40]);
        broken.extend(vec![None; 10]);
        let bad = silhouette(&points, &broken).unwrap();
        assert!(bad < good, "splitting a blob must hurt: {bad} vs {good}");
    }

    #[test]
    fn davies_bouldin_prefers_separated_blobs() {
        let points = noisy_blobs();
        let mut perfect = vec![Some(0u32); 40];
        perfect.extend(vec![Some(1u32); 40]);
        perfect.extend(vec![None; 10]);
        let good = davies_bouldin(&points, &perfect).unwrap();
        let mut broken = vec![Some(0u32); 20];
        broken.extend(vec![Some(2u32); 20]);
        broken.extend(vec![Some(1u32); 40]);
        broken.extend(vec![None; 10]);
        let bad = davies_bouldin(&points, &broken).unwrap();
        assert!(good < bad, "lower is better: {good} vs {bad}");
    }

    #[test]
    fn undefined_with_fewer_than_two_clusters() {
        let points = blob(0.0, 0.0, 10, 1.0);
        let one = vec![Some(0u32); 10];
        assert!(silhouette(&points, &one).is_none());
        assert!(davies_bouldin(&points, &one).is_none());
        let none = vec![None; 10];
        assert!(silhouette(&points, &none).is_none());
    }

    #[test]
    fn dbscan_beats_kmeans_on_noisy_defect_fields() {
        // The paper's claim, made quantitative: on blob + noise data,
        // DBSCAN's noise handling yields a better silhouette than
        // k-means, which must assign the bridge outliers somewhere.
        let points = noisy_blobs();
        let db_labels = dbscan(&points, &DbscanParams::new(1.2, 4).unwrap());
        let db = silhouette(&points, &assignment_from_labels(&db_labels)).unwrap();
        let km_result = kmeans(&points, &KmeansParams::new(2).unwrap());
        let km = silhouette(&points, &assignment_from_kmeans(&km_result.assignments)).unwrap();
        assert!(
            db > km,
            "dbscan silhouette {db} should beat k-means {km} on noisy data"
        );
    }

    #[test]
    #[should_panic(expected = "one label per point")]
    fn mismatched_lengths_panic() {
        let _ = silhouette(&[Point::new(0.0, 0.0, 0.0)], &[]);
    }
}
