//! Cluster summaries: what `correlateEvents` reports to the expert.

use crate::point::Point;

/// Aggregate description of one cluster: size, extent, and the layer
/// span it covers — the paper's use-case reports clusters "bigger
/// than a certain volume" together with an image for inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Stable cluster identity (see
    /// [`LayeredClusterer`](crate::layered::LayeredClusterer)).
    pub id: u64,
    /// Number of member points.
    pub size: usize,
    /// Mean of the member points.
    pub centroid: Point,
    /// Axis-aligned bounding box, minimum corner.
    pub min: Point,
    /// Axis-aligned bounding box, maximum corner.
    pub max: Point,
}

impl ClusterSummary {
    /// Summarizes a non-empty set of member points under identity
    /// `id`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty; clusters are non-empty by
    /// construction.
    pub fn from_members(id: u64, members: &[Point]) -> Self {
        assert!(!members.is_empty(), "a cluster has at least one member");
        let mut min = members[0];
        let mut max = members[0];
        let mut sum = (0.0f64, 0.0f64, 0.0f64);
        for p in members {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            min.z = min.z.min(p.z);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
            max.z = max.z.max(p.z);
            sum.0 += p.x;
            sum.1 += p.y;
            sum.2 += p.z;
        }
        let n = members.len() as f64;
        ClusterSummary {
            id,
            size: members.len(),
            centroid: Point::new(sum.0 / n, sum.1 / n, sum.2 / n),
            min,
            max,
        }
    }

    /// Volume of the bounding box (zero for flat clusters).
    pub fn bbox_volume(&self) -> f64 {
        (self.max.x - self.min.x) * (self.max.y - self.min.y) * (self.max.z - self.min.z)
    }

    /// Whether the bounding boxes of `self` and `other` intersect
    /// (inclusive), used to carry identities across window slides.
    pub fn bbox_overlaps(&self, other: &ClusterSummary) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
            && self.min.z <= other.max.z
            && other.min.z <= self.max.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_members() {
        let members = vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(2.0, 2.0, 2.0),
            Point::new(1.0, 1.0, 1.0),
        ];
        let s = ClusterSummary::from_members(9, &members);
        assert_eq!(s.id, 9);
        assert_eq!(s.size, 3);
        assert_eq!(s.centroid, Point::new(1.0, 1.0, 1.0));
        assert_eq!(s.min, Point::new(0.0, 0.0, 0.0));
        assert_eq!(s.max, Point::new(2.0, 2.0, 2.0));
        assert_eq!(s.bbox_volume(), 8.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_clusters_are_rejected() {
        let _ = ClusterSummary::from_members(0, &[]);
    }

    #[test]
    fn overlap_detection() {
        let a = ClusterSummary::from_members(
            0,
            &[Point::new(0.0, 0.0, 0.0), Point::new(2.0, 2.0, 2.0)],
        );
        let b = ClusterSummary::from_members(
            1,
            &[Point::new(1.0, 1.0, 1.0), Point::new(3.0, 3.0, 3.0)],
        );
        let c = ClusterSummary::from_members(
            2,
            &[Point::new(5.0, 5.0, 5.0), Point::new(6.0, 6.0, 6.0)],
        );
        assert!(a.bbox_overlaps(&b));
        assert!(b.bbox_overlaps(&a));
        assert!(!a.bbox_overlaps(&c));
    }
}
