//! Property-based tests of the clustering invariants.
//!
//! DBSCAN's *noise set* and its partition of *core points* are
//! deterministic (independent of visit order); only border-point
//! assignment may legitimately differ between implementations. The
//! properties below compare exactly the deterministic parts between
//! the grid-accelerated implementation and the textbook oracle.

use std::collections::HashMap;

use proptest::prelude::*;
use strata_cluster::naive::dbscan_naive;
use strata_cluster::{dbscan, DbscanParams, Label, Point};

fn cloud_strategy() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0f64..50.0, 0.0f64..50.0, 0.0f64..2.0).prop_map(|(x, y, z)| Point::new(x, y, z)),
        0..250,
    )
}

/// Indexes of core points, brute force.
fn core_points(points: &[Point], params: &DbscanParams) -> Vec<usize> {
    let eps_sq = params.eps() * params.eps();
    (0..points.len())
        .filter(|&i| {
            points
                .iter()
                .filter(|q| q.distance_sq(&points[i]) <= eps_sq)
                .count()
                >= params.min_pts()
        })
        .collect()
}

/// The cluster partition restricted to `subset`, canonicalized to
/// first-seen ids.
fn canonical_partition(labels: &[Label], subset: &[usize]) -> Vec<i64> {
    let mut mapping: HashMap<u32, i64> = HashMap::new();
    subset
        .iter()
        .map(|&i| match labels[i] {
            Label::Noise => -1,
            Label::Cluster(id) => {
                let next = mapping.len() as i64;
                *mapping.entry(id).or_insert(next)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid DBSCAN and the O(n²) oracle agree on the noise set and on
    /// the core-point partition for arbitrary clouds.
    #[test]
    fn grid_matches_oracle(points in cloud_strategy(), eps in 0.2f64..3.0, min_pts in 1usize..6) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let fast = dbscan(&points, &params);
        let slow = dbscan_naive(&points, &params);
        prop_assert_eq!(fast.len(), points.len());

        // Noise sets are identical.
        for i in 0..points.len() {
            prop_assert_eq!(fast[i].is_noise(), slow[i].is_noise(), "point {}", i);
        }
        // Core-point partitions are identical up to renaming.
        let cores = core_points(&points, &params);
        prop_assert_eq!(
            canonical_partition(&fast, &cores),
            canonical_partition(&slow, &cores)
        );
    }

    /// Core points are never labeled noise; with min_pts = 1 nothing
    /// is noise.
    #[test]
    fn core_points_are_clustered(points in cloud_strategy(), eps in 0.2f64..3.0) {
        let params = DbscanParams::new(eps, 3).unwrap();
        let labels = dbscan(&points, &params);
        for &i in &core_points(&points, &params) {
            prop_assert!(!labels[i].is_noise(), "core point {} marked noise", i);
        }
        let all_core = DbscanParams::new(eps, 1).unwrap();
        prop_assert!(dbscan(&points, &all_core).iter().all(|l| !l.is_noise()));
    }

    /// Two core points within ε of each other always share a cluster.
    #[test]
    fn density_connectivity_is_transitive(points in cloud_strategy(), eps in 0.5f64..3.0) {
        let params = DbscanParams::new(eps, 4).unwrap();
        let labels = dbscan(&points, &params);
        let cores = core_points(&points, &params);
        let eps_sq = eps * eps;
        for (a_pos, &a) in cores.iter().enumerate() {
            for &b in &cores[a_pos + 1..] {
                if points[a].distance_sq(&points[b]) <= eps_sq {
                    prop_assert_eq!(
                        labels[a].cluster(),
                        labels[b].cluster(),
                        "ε-close core points {} and {} split",
                        a,
                        b
                    );
                }
            }
        }
    }

    /// Rigid translation of the whole cloud never changes the
    /// clustering structure.
    #[test]
    fn translation_invariance(
        points in cloud_strategy(),
        dx in -100.0f64..100.0,
        dy in -100.0f64..100.0,
    ) {
        let params = DbscanParams::new(1.0, 3).unwrap();
        let base = dbscan(&points, &params);
        let moved: Vec<Point> = points
            .iter()
            .map(|p| Point::new(p.x + dx, p.y + dy, p.z))
            .collect();
        let shifted = dbscan(&moved, &params);
        // Same noise set; same partition over all points (border
        // assignment is order-dependent but the visit order is the
        // input order, which translation preserves).
        let all: Vec<usize> = (0..points.len()).collect();
        prop_assert_eq!(
            canonical_partition(&base, &all),
            canonical_partition(&shifted, &all)
        );
    }
}
