//! MPMC channels with select, mirroring `crossbeam::channel`.
//!
//! A channel is a `Mutex<VecDeque>` plus two condition variables
//! (`not_empty`, `not_full`) and a list of registered select signals.
//! Bounded senders block while the queue is full; receivers block
//! while it is empty; dropping the last sender (receiver) disconnects
//! the other side. [`Select`] registers a shared signal with every
//! watched channel so a single waiter can block on "any of these
//! became ready" without polling.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
/// Carries the unsent message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The signal a [`Select`] registers with each watched channel: a
/// flag + condvar the channel fires whenever it may have become
/// ready (data arrived or the side disconnected).
struct SelectSignal {
    fired: Mutex<bool>,
    cond: Condvar,
}

impl SelectSignal {
    fn new() -> Self {
        SelectSignal {
            fired: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn fire(&self) {
        *self.fired.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.cond.notify_all();
    }

    /// Waits until fired (or a defensive timeout), then resets.
    fn wait_and_reset(&self) {
        let mut fired = self.fired.lock().unwrap_or_else(|p| p.into_inner());
        while !*fired {
            let (guard, _) = self
                .cond
                .wait_timeout(fired, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            fired = guard;
            // The defensive timeout bounds the cost of any missed
            // wakeup; correctness comes from re-checking readiness.
            if !*fired {
                break;
            }
        }
        *fired = false;
    }
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
    signals: Vec<Arc<SelectSignal>>,
}

struct Core<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Core<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fires every registered select signal. Called with data newly
    /// available or a side newly disconnected.
    fn fire_signals(state: &State<T>) {
        for signal in &state.signals {
            signal.fire();
        }
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects
/// when the last clone is dropped.
pub struct Sender<T> {
    core: Arc<Core<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); the channel
/// disconnects when the last clone is dropped.
pub struct Receiver<T> {
    core: Arc<Core<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel. A zero capacity is treated as one (the
/// shim has no rendezvous mode; nothing in the workspace uses it).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let core = Arc::new(Core {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
            signals: Vec::new(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            core: Arc::clone(&core),
        },
        Receiver { core },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.core.lock().senders += 1;
        Sender {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.core.lock();
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe the disconnect.
            self.core.not_empty.notify_all();
            Core::fire_signals(&state);
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the value back when every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.core.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = state
                .capacity
                .is_some_and(|capacity| state.queue.len() >= capacity);
            if !full {
                state.queue.push_back(value);
                self.core.not_empty.notify_one();
                Core::fire_signals(&state);
                return Ok(());
            }
            state = self
                .core
                .not_full
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Sends without blocking; fails when full or disconnected.
    ///
    /// # Errors
    ///
    /// [`SendError`] when full or when every receiver has been
    /// dropped (the shim does not distinguish the two).
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.core.lock();
        if state.receivers == 0
            || state
                .capacity
                .is_some_and(|capacity| state.queue.len() >= capacity)
        {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        self.core.not_empty.notify_one();
        Core::fire_signals(&state);
        Ok(())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.core.lock().receivers += 1;
        Receiver {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.core.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake senders so they observe the disconnect.
            self.core.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.core.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.core.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .core
                .not_empty
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Receives a message, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time;
    /// [`RecvTimeoutError::Disconnected`] when empty and
    /// disconnected.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.core.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.core.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .core
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.core.lock();
        if let Some(value) = state.queue.pop_front() {
            self.core.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.core.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.core.lock().queue.is_empty()
    }

    /// A blocking iterator: yields messages until the channel is
    /// empty and disconnected.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator: yields currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    fn register_signal(&self, signal: &Arc<SelectSignal>) {
        self.core.lock().signals.push(Arc::clone(signal));
    }

    fn unregister_signal(&self, signal: &Arc<SelectSignal>) {
        self.core.lock().signals.retain(|s| !Arc::ptr_eq(s, signal));
    }

    /// Ready for a select: has data or is disconnected.
    fn is_select_ready(&self) -> bool {
        let state = self.core.lock();
        !state.queue.is_empty() || state.senders == 0
    }
}

/// Blocking iterator over a receiver. See [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator over a receiver. See [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Owning blocking iterator. See [`IntoIterator`] on [`Receiver`].
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Object-safe view of a receiver that a [`Select`] can watch without
/// knowing its message type.
trait Selectable {
    fn ready(&self) -> bool;
    fn register(&self, signal: &Arc<SelectSignal>);
    fn unregister(&self, signal: &Arc<SelectSignal>);
}

impl<T> Selectable for Receiver<T> {
    fn ready(&self) -> bool {
        self.is_select_ready()
    }
    fn register(&self, signal: &Arc<SelectSignal>) {
        self.register_signal(signal);
    }
    fn unregister(&self, signal: &Arc<SelectSignal>) {
        self.unregister_signal(signal);
    }
}

/// Waits for any of several receivers — possibly of different message
/// types — to become ready (have data or be disconnected).
///
/// ```
/// use crossbeam::channel::{unbounded, Select};
/// let (tx, rx) = unbounded::<u32>();
/// tx.send(7).unwrap();
/// let mut sel = Select::new();
/// sel.recv(&rx);
/// let oper = sel.select();
/// assert_eq!(oper.index(), 0);
/// assert_eq!(oper.recv(&rx), Ok(7));
/// ```
pub struct Select<'a> {
    handles: Vec<&'a dyn Selectable>,
}

impl fmt::Debug for Select<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Select")
            .field("handles", &self.handles.len())
            .finish()
    }
}

impl Default for Select<'_> {
    fn default() -> Self {
        Select::new()
    }
}

impl<'a> Select<'a> {
    /// Creates an empty select set.
    pub fn new() -> Self {
        Select {
            handles: Vec::new(),
        }
    }

    /// Adds a receive operation; returns its index.
    pub fn recv<T>(&mut self, receiver: &'a Receiver<T>) -> usize {
        self.handles.push(receiver);
        self.handles.len() - 1
    }

    /// Blocks until some registered receiver is ready, round-robin
    /// scanning to avoid starving high-index channels.
    pub fn select(&mut self) -> SelectedOperation<'_> {
        assert!(!self.handles.is_empty(), "select on an empty set");
        // Fast path: something is already ready.
        if let Some(index) = self.find_ready(0) {
            return SelectedOperation {
                index,
                _marker: std::marker::PhantomData,
            };
        }
        // Slow path: register a shared signal, re-check (a message
        // may have raced in before registration), then wait.
        let signal = Arc::new(SelectSignal::new());
        for handle in &self.handles {
            handle.register(&signal);
        }
        let mut rotation = 0;
        let index = loop {
            if let Some(index) = self.find_ready(rotation) {
                break index;
            }
            rotation = rotation.wrapping_add(1);
            signal.wait_and_reset();
        };
        for handle in &self.handles {
            handle.unregister(&signal);
        }
        SelectedOperation {
            index,
            _marker: std::marker::PhantomData,
        }
    }

    fn find_ready(&self, rotation: usize) -> Option<usize> {
        let n = self.handles.len();
        (0..n)
            .map(|i| (i + rotation) % n)
            .find(|&i| self.handles[i].ready())
    }
}

/// A ready operation returned by [`Select::select`]. Complete it by
/// calling [`recv`](SelectedOperation::recv) with the receiver that
/// was registered at [`index`](SelectedOperation::index).
#[derive(Debug)]
pub struct SelectedOperation<'a> {
    index: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl SelectedOperation<'_> {
    /// Index of the ready operation (registration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the operation on `receiver`.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the receiver is disconnected.
    pub fn recv<T>(self, receiver: &Receiver<T>) -> Result<T, RecvError> {
        // Select observed readiness; if another consumer stole the
        // message since (not the case anywhere in this workspace —
        // every receiver has one consuming thread), fall back to a
        // blocking receive for correct semantics.
        match receiver.try_recv() {
            Ok(value) => Ok(value),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            Err(TryRecvError::Empty) => receiver.recv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_and_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the 1 is consumed
            true
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(handle.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn iterator_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn select_wakes_on_late_send() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (tx_b, rx_b) = unbounded::<String>();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx_b.send("late".to_string()).unwrap();
            drop(tx_a); // keep alive until here
        });
        let mut sel = Select::new();
        let a = sel.recv(&rx_a);
        let b = sel.recv(&rx_b);
        let oper = sel.select();
        let index = oper.index();
        assert!(index == a || index == b);
        if index == b {
            assert_eq!(oper.recv(&rx_b), Ok("late".to_string()));
        }
        handle.join().unwrap();
    }

    #[test]
    fn select_sees_disconnect_as_ready() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        let mut sel = Select::new();
        sel.recv(&rx);
        let oper = sel.select();
        assert_eq!(oper.recv(&rx), Err(RecvError));
    }
}
