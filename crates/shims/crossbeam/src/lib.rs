//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses — `crossbeam::channel` with
//! bounded/unbounded MPMC channels, blocking/timed/non-blocking
//! receive, iteration, and a heterogeneous [`channel::Select`] — all
//! implemented over `std::sync` primitives.

pub mod channel;
