//! Offline stand-in for the `parking_lot` crate, backed by the
//! standard library's synchronization primitives.
//!
//! The API shape matches the subset the workspace uses: infallible
//! `lock()`/`read()`/`write()` (no poisoning — a poisoned std lock is
//! recovered with `into_inner`, matching parking_lot's behavior of
//! not poisoning), and a [`Condvar`] whose `wait`/`wait_for` take
//! `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (std-backed, non-poisoning API).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait_for`] can
/// temporarily move the std guard out while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner()),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                guard: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Outcome of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait methods take `&mut MutexGuard`,
/// parking_lot style.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.guard = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_protects_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writers() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
