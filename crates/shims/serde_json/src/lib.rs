//! Offline stand-in for `serde_json`, over the `serde` shim's
//! JSON-only data model.

use std::fmt;

/// Serialization error. The shim's writer is infallible, so this is
//  never constructed; it exists to keep `?`/`expect` call sites
/// compiling unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible in the shim; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut serializer = serde::Serializer::new();
    value.serialize(&mut serializer);
    Ok(serializer.into_string())
}

/// Serializes `value` as compact JSON. The shim reuses the pretty
/// writer and strips newlines/indentation only where safe — which is
/// nowhere in general — so it simply returns the pretty form; all
/// call sites in this workspace only persist the output to files.
///
/// # Errors
///
/// Infallible in the shim; the `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_vectors() {
        let json = super::to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }
}
