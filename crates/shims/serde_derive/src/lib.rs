//! Offline stand-in for `serde_derive`.
//!
//! Supports `#[derive(Serialize)]` on plain, non-generic structs with
//! named fields — the only shape the workspace derives on. The input
//! token stream is parsed by hand (no `syn`/`quote`, which are not
//! available offline) and the impl is emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct, emitting one
/// JSON object member per field, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok((name, fields)) => {
            let mut body = String::new();
            for field in &fields {
                body.push_str(&format!("serializer.field({field:?}, &self.{field});\n"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self, serializer: &mut ::serde::Serializer) {{\n\
                         serializer.begin_object();\n\
                         {body}\
                         serializer.end_object();\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated impl parses")
        }
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("error token parses"),
    }
}

/// Extracts the struct name and its field names from a derive input.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    // Scan to `struct <Name>`, skipping attributes and visibility.
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Ident(ident)) if ident.to_string() == "struct" => match tokens.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                _ => return Err("expected a struct name".to_string()),
            },
            Some(TokenTree::Ident(ident)) if ident.to_string() == "enum" => {
                return Err("the offline serde shim cannot derive Serialize for enums".to_string());
            }
            Some(_) => continue,
            None => return Err("expected a struct".to_string()),
        }
    };
    // The next brace group holds the fields. Generics would appear
    // first as `<...>` punct runs; reject them explicitly.
    let fields_group = loop {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group;
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                return Err(
                    "the offline serde shim cannot derive Serialize for tuple structs".to_string(),
                );
            }
            Some(TokenTree::Punct(punct)) if punct.as_char() == '<' => {
                return Err(
                    "the offline serde shim cannot derive Serialize for generic structs"
                        .to_string(),
                );
            }
            Some(_) => continue,
            None => return Err("expected struct fields".to_string()),
        }
    };

    let mut fields = Vec::new();
    let mut inner = fields_group.stream().into_iter().peekable();
    loop {
        // Skip per-field attributes (`#[...]`, including doc comments).
        while matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            inner.next(); // '#'
            inner.next(); // the bracket group
        }
        // Optional visibility: `pub` or `pub(...)`.
        if matches!(inner.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            inner.next();
            if matches!(
                inner.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                inner.next();
            }
        }
        match inner.next() {
            Some(TokenTree::Ident(field)) => {
                fields.push(field.to_string());
                match inner.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    _ => return Err(format!("expected `:` after field `{field}`")),
                }
                // Skip the type: consume until a top-level `,`,
                // tracking `<`/`>` depth (token streams do not group
                // angle brackets).
                let mut angle_depth = 0i32;
                loop {
                    match inner.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                        Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                            break;
                        }
                        Some(_) => continue,
                        None => break, // last field without trailing comma
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
            None => break,
        }
    }
    Ok((name, fields))
}
