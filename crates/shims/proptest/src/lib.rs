//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range / `any` / tuple / string-pattern strategies,
//! [`collection::vec`], [`collection::btree_map`], [`option::of`],
//! weighted [`prop_oneof!`], [`Just`], and `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs
//!   (via `Debug`) and the RNG seed, but is not minimized.
//! * **Deterministic seeding.** Each test derives its seed from its
//!   own name, so failures reproduce across runs; there is no
//!   failure-persistence file.

use std::fmt::Debug;

pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Deterministic RNG handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut splitmix = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            splitmix = splitmix.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = splitmix;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if state.iter().all(|&w| w == 0) {
            state[0] = 1;
        }
        TestRng { state }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_index bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Test-runner types ([`ProptestConfig`], failure reporting).
pub mod test_runner {
    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// The failure explanation.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Per-test configuration. Only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Length specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.next_index(self.max_exclusive - self.min)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap`s.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Maps with *up to* the sampled number of entries (duplicate
    /// keys collapse, as in upstream proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `Option`s of the inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` half the time, `Some` of the inner value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs the body against `cases` sampled inputs; panics on the first
/// failing case, reporting the inputs and the derived seed.
#[doc(hidden)]
pub fn run_property<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<Option<String>, test_runner::TestCaseError>,
{
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    let seed = hasher.finish();
    let mut rng = TestRng::seed_from_u64(seed);
    for index in 0..config.cases {
        match case(&mut rng) {
            Ok(_) => {}
            Err(error) => panic!(
                "property `{name}` failed at case {index} (seed {seed:#x}): {}",
                error.message()
            ),
        }
    }
}

/// Helper so the macro can format sampled inputs lazily on failure.
#[doc(hidden)]
pub fn describe_inputs(parts: &[(&str, &dyn Debug)]) -> String {
    parts
        .iter()
        .map(|(name, value)| format!("{name} = {value:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The property-test entry point; see the crate docs for supported
/// syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&$strategy, rng);)*
                // Described before the body runs: the body may consume
                // the inputs by value.
                let detail = $crate::describe_inputs(&[
                    $((stringify!($arg), &$arg as &dyn ::std::fmt::Debug)),*
                ]);
                let run = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match run() {
                    Ok(()) => Ok(None),
                    Err(error) => {
                        Err($crate::test_runner::TestCaseError::fail(format!(
                            "{error}\n  inputs: {detail}",
                            error = error.message(),
                        )))
                    }
                }
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right,
                ),
            ));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), left),
            ));
        }
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms are boxed to a common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-z]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_picks_each_arm(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn maps_and_options(
            m in crate::collection::btree_map("[a-z]{1,4}", any::<u32>(), 0..4),
            o in crate::option::of(any::<bool>()),
        ) {
            prop_assert!(m.len() < 4);
            let _ = o;
        }
    }

    #[test]
    #[should_panic(expected = "property `fails` failed")]
    fn failures_panic_with_context() {
        crate::run_property("fails", &ProptestConfig::with_cases(1), |_rng| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
