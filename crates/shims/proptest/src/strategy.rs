//! Value-generation strategies for the offline proptest shim.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for sampling random values of one type.
///
/// Object safe: the combinator methods are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards samples failing `predicate` (resampling up to a
    /// bounded number of attempts).
    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.sample(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Always produces a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy, for [`any`].
pub trait Arbitrary {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps arbitrary chars debuggable.
        (b' ' + (rng.next_u64() % 95) as u8) as char
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyStrategy").finish()
    }
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

// ───────────────────────── range strategies ─────────────────────────

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ───────────────────────── tuple strategies ─────────────────────────

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ───────────────────────── string patterns ─────────────────────────

/// `&'static str` acts as a pattern strategy for the narrow regex
/// dialect the workspace uses: a single character class with an
/// optional `{min,max}` repetition, e.g. `"[a-z_]{1,12}"` or
/// `"[ -~]{0,24}"`. Anything else is produced literally.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((chars, min, max)) => {
                let len = min + rng.next_index(max - min + 1);
                (0..len)
                    .map(|_| chars[rng.next_index(chars.len())])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[class]{min,max}` into (expanded characters, min, max).
fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // A `-` between two characters is a range; elsewhere literal.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for code in lo as u32..=hi as u32 {
                chars.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((chars, 1, 1));
    }
    let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match quant.split_once(',') {
        Some((min, max)) => (min.trim().parse().ok()?, max.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    (min <= max).then_some((chars, min, max))
}

// ───────────────────────── union (oneof) ─────────────────────────

/// Weighted choice between boxed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights cover the sampled value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parsing_expands_ranges() {
        let (chars, min, max) = parse_pattern("[a-c_]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '_']);
        assert_eq!((min, max), (2, 5));
        let (chars, _, max) = parse_pattern("[ -~]{0,24}").unwrap();
        assert_eq!(chars.len(), 95); // all printable ASCII
        assert_eq!(max, 24);
    }

    #[test]
    fn union_respects_weights_roughly() {
        let union = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let mut rng = TestRng::seed_from_u64(5);
        let trues = (0..1_000).filter(|_| union.sample(&mut rng)).count();
        assert!(trues > 800, "got {trues} trues");
    }

    #[test]
    fn filter_resamples() {
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
    }
}
