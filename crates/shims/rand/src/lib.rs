//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`SeedableRng`] with
//! `seed_from_u64`, [`Rng::gen_range`] over integer and float ranges,
//! `gen`, `gen_bool`, and [`rngs::StdRng`] as a deterministic
//! xoshiro256\*\* generator (a different stream than upstream
//! `StdRng`, which is fine — everything seeding it only relies on
//! determinism, not on a specific stream).

use std::ops::Range;

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            splitmix = splitmix.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = splitmix;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling of a type from a generator, for [`Rng::gen`].
pub trait Standard {
    /// Samples a uniform value.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u8 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from(self, rng: &mut impl RngCore) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for the
                // simulation/clustering workloads this shim serves.
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (f64::sample(rng) as f32) * (self.end - self.start)
    }
}

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256\*\* generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut state = [0u64; 4];
            for (word, chunk) in state.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("len 8"));
            }
            // xoshiro must not start from the all-zero state.
            if state.iter().all(|&w| w == 0) {
                state[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias for contexts that ask for the small generator.
    pub type SmallRng = StdRng;
}

/// A non-cryptographic generator seeded from the system clock, for
/// `rand::thread_rng()`-style call sites.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 20))
        .unwrap_or(0x1234_5678);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn float_samples_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
