//! Offline stand-in for the `serde` crate.
//!
//! The workspace only ever serializes benchmark-result structs to
//! pretty-printed JSON, so this shim collapses serde's data model to
//! exactly that: a [`Serialize`] trait that writes into a JSON
//! [`Serializer`], plus a `#[derive(Serialize)]` macro (from the
//! sibling `serde_derive` shim) for plain structs with named fields.

pub use serde_derive::Serialize;

/// A pretty-printing JSON writer (2-space indent, `serde_json`
/// style).
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
    depth: usize,
    /// Number of items written at each open container level, to
    /// place commas and render empty containers as `{}` / `[]`.
    items: Vec<usize>,
}

impl Serializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        Serializer::default()
    }

    /// Consumes the serializer, returning the JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    /// Starts a container item: separating comma + indentation.
    fn begin_item(&mut self) {
        if let Some(count) = self.items.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
            self.newline_indent();
        }
    }

    /// Writes a raw JSON scalar token.
    pub fn scalar(&mut self, token: &str) {
        self.out.push_str(token);
    }

    /// Writes a JSON string with escaping.
    pub fn string(&mut self, value: &str) {
        self.out.push('"');
        for ch in value.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.items.push(0);
    }

    /// Writes one `"name": value` member of the open object.
    pub fn field(&mut self, name: &str, value: &dyn Serialize) {
        self.begin_item();
        self.string(name);
        self.out.push_str(": ");
        value.serialize(self);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let wrote = self.items.pop().unwrap_or(0);
        self.depth -= 1;
        if wrote > 0 {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.items.push(0);
    }

    /// Writes one element of the open array.
    pub fn element(&mut self, value: &dyn Serialize) {
        self.begin_item();
        value.serialize(self);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let wrote = self.items.pop().unwrap_or(0);
        self.depth -= 1;
        if wrote > 0 {
            self.newline_indent();
        }
        self.out.push(']');
    }
}

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Writes `self` into the serializer.
    fn serialize(&self, serializer: &mut Serializer);
}

macro_rules! serialize_display {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, serializer: &mut Serializer) {
                serializer.scalar(&self.to_string());
            }
        }
    )*};
}

serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn serialize(&self, serializer: &mut Serializer) {
        if self.is_finite() {
            serializer.scalar(&format!("{self:?}"));
        } else {
            serializer.scalar("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, serializer: &mut Serializer) {
        (*self as f64).serialize(serializer);
    }
}

impl Serialize for str {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, serializer: &mut Serializer) {
        (**self).serialize(serializer);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        (**self).serialize(serializer);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        match self {
            Some(value) => value.serialize(serializer),
            None => serializer.scalar("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_array();
        for item in self {
            serializer.element(item);
        }
        serializer.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        self.as_slice().serialize(serializer);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, serializer: &mut Serializer) {
        self.as_slice().serialize(serializer);
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        for (key, value) in self {
            serializer.field(key, value);
        }
        serializer.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        let mut s = Serializer::new();
        42u32.serialize(&mut s);
        assert_eq!(s.into_string(), "42");
        let mut s = Serializer::new();
        "a\"b\n".serialize(&mut s);
        assert_eq!(s.into_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn arrays_pretty_print() {
        let mut s = Serializer::new();
        vec![1u8, 2].serialize(&mut s);
        assert_eq!(s.into_string(), "[\n  1,\n  2\n]");
        let mut s = Serializer::new();
        Vec::<u8>::new().serialize(&mut s);
        assert_eq!(s.into_string(), "[]");
    }

    #[test]
    fn objects_pretty_print() {
        let mut s = Serializer::new();
        s.begin_object();
        s.field("a", &1u8);
        s.field("b", &"x");
        s.end_object();
        assert_eq!(s.into_string(), "{\n  \"a\": 1,\n  \"b\": \"x\"\n}");
    }
}
