//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, throughput annotation, `criterion_group!` /
//! `criterion_main!` — as a plain wall-clock harness: each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! mean / min / max per iteration (plus throughput when annotated).
//! There is no statistical analysis, HTML report, or baseline
//! comparison. `cargo bench` filters still work: a CLI argument
//! restricts runs to benchmark ids containing it.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample after a warm-up pass.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates throughput for the reports that follow.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time. Accepted for API
    /// compatibility; the shim sizes work by `sample_size` only.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full, &bencher.samples, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (separator line in the output).
    pub fn finish(&mut self) {
        println!();
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{id:<48} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}{rate}",);
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benchmarks run,
        // mirroring criterion's CLI behavior. Flags (`--bench`, etc.)
        // injected by cargo are ignored.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: 10,
            };
            f(&mut bencher);
            report(id, &bencher.samples, None);
        }
        self
    }
}

/// Declares a group of benchmark functions, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3).throughput(Throughput::Elements(1));
            group.bench_function("noop", |b| b.iter(|| ran += 1));
            group.finish();
        }
        // warm-up + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".to_string()),
        };
        let mut ran = false;
        c.benchmark_group("g").bench_function("x", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }
}
