//! Offline stand-in for the `bytes` crate.
//!
//! The container image this workspace builds in has no access to
//! crates.io, so the handful of external dependencies are provided as
//! local shims under `crates/shims/`. This one covers the subset of
//! `bytes::Bytes` the workspace uses: an immutable, cheaply cloneable
//! byte buffer backed by `Arc<[u8]>`.
//!
//! Shims reproduce the upstream crate's public API verbatim, even
//! where it trips clippy (e.g. an inherent `as_ref`).
#![allow(clippy::should_implement_trait)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1) and
/// shares the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wraps a static slice (copies; the shim has no zero-copy path).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A sub-buffer over `range` (copies the range).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// The bytes as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(data: Box<[u8]>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(bytes: Bytes) -> Self {
        bytes.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn conversions_round_trip() {
        let from_vec = Bytes::from(vec![1u8, 2, 3]);
        let from_str = Bytes::from("abc");
        assert_eq!(from_vec.len(), 3);
        assert_eq!(from_str.as_ref(), b"abc");
        assert_eq!(Vec::from(from_vec), vec![1, 2, 3]);
    }

    #[test]
    fn slice_and_eq() {
        let b = Bytes::from("abcdef");
        assert_eq!(b.slice(1..3).as_ref(), b"bc");
        assert!(b == b"abcdef"[..]);
    }
}
