//! Property-based tests of the connector codec: arbitrary tuples
//! survive the broker boundary bit-exactly.

use std::sync::Arc;

use proptest::prelude::*;
use strata::codec::{decode, encode, ConnectorMessage};
use strata::{AmTuple, Metadata, Payload, Value};
use strata_amsim::OtImage;
use strata_spe::Timestamp;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Totally ordered floats only (NaN breaks PartialEq round-trip checks).
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[ -~]{0,24}".prop_map(|s| Value::Str(Arc::from(s.as_str()))),
        proptest::collection::vec(any::<u8>(), 0..32)
            .prop_map(|b| Value::Bytes(Arc::from(b.as_slice()))),
        (1u32..12, 1u32..12).prop_map(|(w, h)| {
            Value::Image(Arc::new(OtImage::from_fn(w, h, |x, y| {
                (x * 7 + y * 13) as u8
            })))
        }),
        proptest::collection::vec(
            (
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>()
            ),
            0..5
        )
        .prop_map(|r| Value::Rects(Arc::new(r))),
        proptest::collection::vec((-1.0e6f64..1.0e6, -1.0e6f64..1.0e6), 0..8)
            .prop_map(|p| Value::Points(Arc::new(p))),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = AmTuple> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        proptest::option::of(any::<u32>().prop_map(|s| s % (u32::MAX - 1))),
        proptest::option::of(any::<u32>().prop_map(|p| p % (u32::MAX - 1))),
        any::<u64>(),
        proptest::collection::btree_map("[a-z_]{1,12}", value_strategy(), 0..6),
    )
        .prop_map(|(ts, job, layer, specimen, portion, ingest, entries)| {
            let mut payload = Payload::new();
            for (k, v) in entries {
                payload.set(k, v);
            }
            AmTuple::from_parts(
                Metadata {
                    timestamp: Timestamp::from_millis(ts),
                    job,
                    layer,
                    specimen,
                    portion,
                    ingest_ns: ingest,
                },
                payload,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tuples_round_trip(tuple in tuple_strategy()) {
        let encoded = encode(&ConnectorMessage::Tuple(tuple.clone()));
        let decoded = decode(&encoded).unwrap();
        prop_assert_eq!(decoded, ConnectorMessage::Tuple(tuple));
    }

    #[test]
    fn watermarks_round_trip(ts in any::<u64>()) {
        let msg = ConnectorMessage::Watermark(Timestamp::from_millis(ts));
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    /// Any truncation of a valid encoding is rejected, never
    /// mis-decoded (no panics, no silent corruption).
    #[test]
    fn truncations_error_cleanly(tuple in tuple_strategy(), frac in 0.0f64..1.0) {
        let encoded = encode(&ConnectorMessage::Tuple(tuple));
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(decode(&encoded[..cut]).is_err());
        }
    }
}
