//! Framework-level semantics tests: fuse windows, correlate windows
//! with layer gaps, direct-mode correlate, multi-delivery, and
//! offered-rate re-stamping.

use std::time::Duration;

use crossbeam::channel::Receiver;
use strata::collector::OfferedRateSource;
use strata::{AmTuple, ConnectorMode, ExpertReport, Strata, StrataConfig};
use strata_spe::{Source, SourceContext, Timestamp};

/// A source replaying explicit (tuple, watermark) scripts.
struct Scripted {
    steps: Vec<(AmTuple, u64)>,
}

impl Source for Scripted {
    type Out = AmTuple;
    fn run(&mut self, ctx: &mut SourceContext<AmTuple>) -> Result<(), String> {
        for (tuple, wm) in self.steps.drain(..) {
            if !ctx.emit(tuple) {
                break;
            }
            if !ctx.emit_watermark(Timestamp::from_millis(wm)) {
                break;
            }
        }
        Ok(())
    }
}

fn event(ts: u64, job: u32, layer: u32, x: f64) -> AmTuple {
    let mut t = AmTuple::new(Timestamp::from_millis(ts), job, layer);
    t.payload_mut().set_float("x", x);
    t
}

fn drain(rx: Receiver<ExpertReport>) -> Vec<AmTuple> {
    let mut out = Vec::new();
    while let Ok(report) = rx.recv_timeout(Duration::from_secs(30)) {
        out.push(report.tuple);
    }
    out
}

#[test]
fn correlate_window_spans_exactly_l_plus_one_layers() {
    // Remote mode runs the same pipeline with its connector topics on
    // a TCP broker server instead of the in-process broker.
    let mut server =
        strata_net::BrokerServer::bind("127.0.0.1:0", strata_pubsub::Broker::new()).unwrap();
    let remote = ConnectorMode::Remote {
        addr: server.local_addr().to_string(),
    };
    for mode in [ConnectorMode::PubSub, ConnectorMode::Direct, remote] {
        let strata = Strata::new(StrataConfig::default().connector_mode(mode.clone())).unwrap();
        let mut pipeline = strata.pipeline("span");
        // One event per layer 0..6, watermark after each layer.
        let steps: Vec<(AmTuple, u64)> = (0..6u32)
            .map(|l| (event(l as u64 * 100, 1, l, l as f64), l as u64 * 100 + 50))
            .collect();
        let src = pipeline.add_source("script", Scripted { steps });
        let events = pipeline.detect_event("ev", &src, |t: &AmTuple| Some(vec![t.clone()]));
        let out = pipeline.correlate_events("corr", &events, 2, |w| {
            let mut t = AmTuple::new(Timestamp::MIN, w.job, w.layer);
            t.payload_mut()
                .set_int("window_events", w.events.len() as i64)
                .set_int(
                    "oldest_layer",
                    w.events.iter().map(|e| e.metadata().layer).min().unwrap() as i64,
                );
            vec![t]
        });
        let rx = pipeline.deliver("expert", &out);
        let running = pipeline.deploy().unwrap();
        let got = drain(rx);
        running.join().unwrap();
        assert_eq!(got.len(), 6, "mode {mode:?}");
        for t in &got {
            let layer = t.metadata().layer;
            let expected = (layer.min(2) + 1) as i64; // L=2 → ≤ 3 layers
            assert_eq!(
                t.payload().int("window_events"),
                Some(expected),
                "layer {layer} ({mode:?})"
            );
            assert_eq!(
                t.payload().int("oldest_layer"),
                Some(layer.saturating_sub(2) as i64),
                "layer {layer} ({mode:?})"
            );
        }
    }
    server.shutdown();
}

#[test]
fn correlate_handles_layer_gaps() {
    // Events only on layers 0, 1 and 5: layer 5's window (L=2) must
    // not include the stale layer-0/1 events.
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("gaps");
    let steps = vec![
        (event(0, 1, 0, 0.0), 50),
        (event(100, 1, 1, 1.0), 150),
        (event(500, 1, 5, 5.0), 550),
    ];
    let src = pipeline.add_source("script", Scripted { steps });
    let events = pipeline.detect_event("ev", &src, |t: &AmTuple| Some(vec![t.clone()]));
    let out = pipeline.correlate_events("corr", &events, 2, |w| {
        let mut t = AmTuple::new(Timestamp::MIN, w.job, w.layer);
        t.payload_mut().set_int("n", w.events.len() as i64);
        vec![t]
    });
    let rx = pipeline.deliver("expert", &out);
    let running = pipeline.deploy().unwrap();
    let got = drain(rx);
    running.join().unwrap();
    let by_layer: std::collections::BTreeMap<u32, i64> = got
        .iter()
        .map(|t| (t.metadata().layer, t.payload().int("n").unwrap()))
        .collect();
    assert_eq!(by_layer[&0], 1);
    assert_eq!(by_layer[&1], 2);
    assert_eq!(by_layer[&5], 1, "layers 0-1 are outside [3, 5]");
}

#[test]
fn fuse_windowed_matches_within_the_band() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("band");
    // Left at t=100; right at t=100+Δ for Δ ∈ {0, 30, 80}; band 50.
    let left = pipeline.add_source(
        "left",
        Scripted {
            steps: vec![(event(100, 1, 0, -1.0), 200)],
        },
    );
    let right_steps = vec![
        (event(100, 1, 0, 0.0), 110),
        (event(130, 1, 0, 30.0), 140),
        (event(180, 1, 0, 80.0), 200),
    ];
    let right = pipeline.add_source("right", Scripted { steps: right_steps });
    let fused = pipeline.fuse_windowed("f", &left, &right, 50);
    let rx = pipeline.deliver("expert", &fused);
    let running = pipeline.deploy().unwrap();
    let got = drain(rx);
    running.join().unwrap();
    // Δ=0 and Δ=30 are within the 50 ms band; Δ=80 is not.
    assert_eq!(got.len(), 2);
}

#[test]
fn one_stream_can_be_delivered_to_many_experts() {
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("multi");
    let steps: Vec<(AmTuple, u64)> = (0..5u32)
        .map(|l| (event(l as u64, 1, l, 0.0), l as u64))
        .collect();
    let src = pipeline.add_source("script", Scripted { steps });
    let rx_a = pipeline.deliver("expert-a", &src);
    let rx_b = pipeline.deliver("expert-b", &src);
    let running = pipeline.deploy().unwrap();
    assert_eq!(drain(rx_a).len(), 5);
    assert_eq!(drain(rx_b).len(), 5);
    running.join().unwrap();
}

#[test]
fn offered_rate_source_restamps_ingest_time() {
    // Tuples built long before replay must not carry their stale
    // ingest instants into latency accounting.
    let stale = event(0, 1, 0, 0.0);
    std::thread::sleep(Duration::from_millis(30));
    let strata = Strata::new(StrataConfig::default()).unwrap();
    let mut pipeline = strata.pipeline("restamp");
    let src = pipeline.add_source("replay", OfferedRateSource::new(vec![stale], 0.0, 10));
    let rx = pipeline.deliver("expert", &src);
    let running = pipeline.deploy().unwrap();
    let report = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    running.join().unwrap();
    assert!(
        report.latency < Duration::from_millis(25),
        "latency {:?} includes pre-replay age",
        report.latency
    );
}
