//! What the expert receives: result tuples with latency accounting.

use std::time::Duration;

use crate::tuple::AmTuple;

/// One result delivered to the expert by
/// [`PipelineBuilder::deliver`](crate::pipeline::PipelineBuilder::deliver).
#[derive(Debug, Clone)]
pub struct ExpertReport {
    /// The result tuple.
    pub tuple: AmTuple,
    /// Time from "all contributing data available to the system" to
    /// this delivery — the paper's latency metric (§3).
    pub latency: Duration,
    /// Whether `latency` met the configured QoS threshold (the ~3 s
    /// recoat gap by default).
    pub qos_met: bool,
}

/// Five-number summary of a latency sample, matching the boxplots of
/// Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: Duration,
    /// First quartile.
    pub q1: Duration,
    /// Median.
    pub median: Duration,
    /// Third quartile.
    pub q3: Duration,
    /// Maximum.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl LatencySummary {
    /// Summarizes a non-empty latency sample.
    ///
    /// Returns `None` for an empty sample.
    pub fn from_samples(samples: &[Duration]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let quantile = |q: f64| -> Duration {
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = pos - lo as f64;
                let a = sorted[lo].as_secs_f64();
                let b = sorted[hi].as_secs_f64();
                Duration::from_secs_f64(a + (b - a) * frac)
            }
        };
        let total: Duration = sorted.iter().sum();
        Some(LatencySummary {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile(0.25),
            median: quantile(0.5),
            q3: quantile(0.75),
            max: *sorted.last().expect("non-empty"),
            mean: total / sorted.len() as u32,
        })
    }

    /// Renders as one boxplot row: `min/q1/median/q3/max (mean)` in
    /// milliseconds.
    pub fn to_row(&self) -> String {
        format!(
            "min={:.1}ms q1={:.1}ms median={:.1}ms q3={:.1}ms max={:.1}ms mean={:.1}ms n={}",
            self.min.as_secs_f64() * 1e3,
            self.q1.as_secs_f64() * 1e3,
            self.median.as_secs_f64() * 1e3,
            self.q3.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
            self.mean.as_secs_f64() * 1e3,
            self.count,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn five_number_summary() {
        let s = LatencySummary::from_samples(&[ms(10), ms(20), ms(30), ms(40), ms(50)]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, ms(10));
        assert_eq!(s.q1, ms(20));
        assert_eq!(s.median, ms(30));
        assert_eq!(s.q3, ms(40));
        assert_eq!(s.max, ms(50));
        assert_eq!(s.mean, ms(30));
    }

    #[test]
    fn quantiles_interpolate() {
        let s = LatencySummary::from_samples(&[ms(0), ms(100)]).unwrap();
        assert_eq!(s.median, ms(50));
        assert_eq!(s.q1, ms(25));
    }

    #[test]
    fn order_does_not_matter() {
        let a = LatencySummary::from_samples(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = LatencySummary::from_samples(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn row_rendering_mentions_the_median() {
        let s = LatencySummary::from_samples(&[ms(10)]).unwrap();
        assert!(s.to_row().contains("median=10.0ms"));
    }
}
