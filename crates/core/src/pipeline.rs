//! Pipeline composition and deployment: the STRATA API of Table 1.
//!
//! A [`PipelineBuilder`] mirrors the paper's Algorithm 1: the expert
//! declares sources (`addSource`), fuses them (`fuse`), partitions
//! layers into specimens and portions (`partition`), detects events
//! (`detectEvent`) and correlates them within and across layers
//! (`correlateEvents`). On [`deploy`](PipelineBuilder::deploy) the
//! builder compiles the declaration into up to three stream-engine
//! queries — Raw Data Collector, Event Monitor, Event Aggregator —
//! bridged by pub/sub connector topics (or fused into a single query
//! under [`ConnectorMode::Direct`]).
//!
//! Every method is a composition of *native* operators: `fuse` is a
//! Join, `partition` and `detectEvent` are FlatMaps, and
//! `correlateEvents` is a watermark-driven windowed aggregate over
//! the last `L + 1` layers.

use std::collections::{BTreeMap, HashMap};

use crossbeam::channel::{unbounded, Receiver};
use strata_kv::Db;
use strata_pubsub::{Broker, LogKind, TopicConfig};
use strata_spe::operator::UnaryOperator;
use strata_spe::operators::{FlatMap, RoutePolicy};
use strata_spe::{QueryBuilder, QueryMetrics, RunningQuery, Source, Stream, Timestamp};

use strata_net::{NetError, RemoteConsumer, RemoteProducer};
use strata_spe::Element;

use crate::config::{ConnectorMode, StrataConfig};
use crate::connector::{publisher, remote_publisher, RemoteTopicSource, TopicSource};
use crate::error::{Error, Result};
use crate::report::ExpertReport;
use crate::tuple::AmTuple;

/// Which architectural module a stream lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Module {
    Monitor,
    Aggregator,
}

/// What produced a stream — used to validate the composition rules
/// Table 1 states for each method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Source,
    Fused,
    Partitioned,
    Event,
    Correlated,
}

/// A typed handle to a STRATA stream under construction.
#[derive(Debug, Clone, Copy)]
pub struct AmStream {
    module: Module,
    stage: Stage,
    stream: Stream<AmTuple>,
}

/// The events of the current layer plus the previous `L` layers for
/// one `(job, specimen)` group — what a `correlateEvents` function
/// receives.
#[derive(Debug)]
pub struct CorrelationWindow<'a> {
    /// The printing job.
    pub job: u32,
    /// The specimen the events belong to.
    pub specimen: u32,
    /// The just-completed layer that triggered this evaluation.
    pub layer: u32,
    /// Events of layers `[layer − L, layer]`, oldest layer first,
    /// arrival order within a layer.
    pub events: Vec<&'a AmTuple>,
}

/// The `correlateEvents` operator: buffers detected events per
/// `(job, specimen)` and, whenever the watermark confirms a layer is
/// complete, evaluates the user function over that layer and the
/// previous `L` layers. Layers that produced no events trigger no
/// evaluation (there is nothing new to correlate).
struct Correlate<F> {
    depth: u32,
    f: F,
    groups: HashMap<(u32, u32), GroupState>,
}

#[derive(Default)]
struct GroupState {
    /// layer → (layer timestamp, events in arrival order).
    layers: BTreeMap<u32, (Timestamp, Vec<AmTuple>)>,
    emitted_up_to: Option<u32>,
}

impl<F> Correlate<F>
where
    F: for<'a> FnMut(&CorrelationWindow<'a>) -> Vec<AmTuple> + Send,
{
    fn new(depth: u32, f: F) -> Self {
        Correlate {
            depth,
            f,
            groups: HashMap::new(),
        }
    }

    fn emit_ready(&mut self, limit: Timestamp, out: &mut Vec<AmTuple>) {
        // Deterministic group order.
        let mut keys: Vec<(u32, u32)> = self.groups.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let group = self.groups.get_mut(&key).expect("known key");
            let ready: Vec<u32> = group
                .layers
                .iter()
                .filter(|(layer, (ts, _))| {
                    *ts < limit && group.emitted_up_to.is_none_or(|e| **layer > e)
                })
                .map(|(layer, _)| *layer)
                .collect();
            for layer in ready {
                let window_start = layer.saturating_sub(self.depth);
                let (ts, _) = group.layers[&layer];
                let mut events: Vec<&AmTuple> = Vec::new();
                let mut max_ingest = 0u64;
                for (_, (_, tuples)) in group.layers.range(window_start..=layer) {
                    for t in tuples {
                        max_ingest = max_ingest.max(t.metadata().ingest_ns);
                        events.push(t);
                    }
                }
                let window = CorrelationWindow {
                    job: key.0,
                    specimen: key.1,
                    layer,
                    events,
                };
                let results = (self.f)(&window);
                for mut result in results {
                    let m = result.metadata_mut();
                    m.timestamp = ts;
                    m.job = key.0;
                    m.layer = layer;
                    m.specimen = Some(key.1);
                    // Latency counts from the *latest* contributing
                    // data: the instant all window data was available.
                    m.ingest_ns = max_ingest;
                    out.push(result);
                }
                group.emitted_up_to = Some(layer);
                // Layers older than the next window's reach are done.
                let keep_from = (layer + 1).saturating_sub(self.depth);
                group.layers.retain(|l, _| *l >= keep_from);
            }
        }
    }
}

impl<F> UnaryOperator<AmTuple, AmTuple> for Correlate<F>
where
    F: for<'a> FnMut(&CorrelationWindow<'a>) -> Vec<AmTuple> + Send,
{
    fn on_item(&mut self, item: AmTuple, _out: &mut Vec<AmTuple>) {
        let m = item.metadata();
        let key = (m.job, m.specimen.unwrap_or(0));
        let group = self.groups.entry(key).or_default();
        if group.emitted_up_to.is_some_and(|e| m.layer <= e) {
            return; // Late event for an already-correlated layer.
        }
        let entry = group
            .layers
            .entry(m.layer)
            .or_insert_with(|| (m.timestamp, Vec::new()));
        entry.0 = entry.0.max(m.timestamp);
        entry.1.push(item);
    }

    fn on_watermark(&mut self, watermark: Timestamp, out: &mut Vec<AmTuple>) {
        self.emit_ready(watermark, out);
    }

    fn on_end(&mut self, out: &mut Vec<AmTuple>) {
        self.emit_ready(Timestamp::MAX, out);
    }
}

/// Builder for one expert pipeline. Created by
/// [`Strata::pipeline`](crate::Strata::pipeline); see the
/// [crate documentation](crate) for a complete example.
pub struct PipelineBuilder {
    name: String,
    topic_prefix: String,
    config: StrataConfig,
    broker: Broker,
    #[allow(dead_code)] // Reserved for store/get access from compiled operators.
    kv: Db,
    collector: QueryBuilder,
    monitor: QueryBuilder,
    aggregator: QueryBuilder,
    collector_nodes: usize,
    monitor_nodes: usize,
    aggregator_nodes: usize,
    monitor_sinks: usize,
    aggregator_sinks: usize,
    errors: Vec<Error>,
}

impl std::fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl PipelineBuilder {
    pub(crate) fn new(
        name: String,
        instance: u64,
        config: StrataConfig,
        broker: Broker,
        kv: Db,
    ) -> Self {
        let mut collector = QueryBuilder::new(format!("{name}.collector"));
        let mut monitor = QueryBuilder::new(format!("{name}.monitor"));
        let mut aggregator = QueryBuilder::new(format!("{name}.aggregator"));
        for qb in [&mut collector, &mut monitor, &mut aggregator] {
            qb.channel_capacity(config.channel_capacity_value());
            qb.batch_size(config.batch_size_value());
            qb.batch_timeout(config.batch_timeout_value());
        }
        // With a remote broker the topic namespace is shared by every
        // process pointed at the same server, so the per-instance
        // prefix also carries the process id.
        let topic_prefix = match config.connector_mode_value() {
            ConnectorMode::Remote { .. } => {
                format!("strata.{name}.p{}.{instance}", std::process::id())
            }
            _ => format!("strata.{name}.{instance}"),
        };
        PipelineBuilder {
            topic_prefix,
            name,
            config,
            broker,
            kv,
            collector,
            monitor,
            aggregator,
            collector_nodes: 0,
            monitor_nodes: 0,
            aggregator_nodes: 0,
            monitor_sinks: 0,
            aggregator_sinks: 0,
            errors: Vec::new(),
        }
    }

    /// The pipeline's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn fail(&mut self, message: impl Into<String>) {
        self.errors.push(Error::InvalidPipeline(message.into()));
    }

    /// Table 1 `addSource`: registers a raw-data collector whose
    /// stream carries `⟨τ, job, layer, payload⟩` tuples. In pub/sub
    /// mode the stream is published to a *Raw Data Connector* topic
    /// and re-consumed by the Event Monitor module.
    pub fn add_source<S>(&mut self, name: &str, source: S) -> AmStream
    where
        S: Source<Out = AmTuple> + 'static,
    {
        match self.config.connector_mode_value() {
            ConnectorMode::Direct => {
                let stream = self.monitor.source(name.to_string(), source);
                self.monitor_nodes += 1;
                AmStream {
                    module: Module::Monitor,
                    stage: Stage::Source,
                    stream,
                }
            }
            ConnectorMode::PubSub | ConnectorMode::Remote { .. } => {
                let raw = self.collector.source(name.to_string(), source);
                self.collector_nodes += 1;
                let stream = self.bridge(raw, &format!("raw.{name}"), Module::Monitor, true);
                AmStream {
                    module: Module::Monitor,
                    stage: Stage::Source,
                    stream,
                }
            }
        }
    }

    /// Publishes `upstream` into a connector topic and subscribes the
    /// target module to it. `from_collector` picks the upstream query
    /// and retention policy. In [`ConnectorMode::Remote`] the topic
    /// lives on the broker server and both ends cross the wire.
    fn bridge(
        &mut self,
        upstream: Stream<AmTuple>,
        label: &str,
        target: Module,
        from_collector: bool,
    ) -> Stream<AmTuple> {
        let topic = format!("{}.{label}", self.topic_prefix);
        let retention = if from_collector {
            self.config.raw_retention_value()
        } else {
            self.config.event_retention_value()
        };
        let mode = self.config.connector_mode_value();

        // Create the topic where it lives and build the publishing
        // half of the bridge.
        let publish: Box<dyn FnMut(Element<AmTuple>) + Send> = match &mode {
            ConnectorMode::Remote { addr } => match self.remote_producer(addr, &topic) {
                Ok(producer) => Box::new(remote_publisher(producer, topic.clone())),
                Err(err) => {
                    self.errors.push(err);
                    // Sink to nowhere; deploy fails with the error.
                    Box::new(|_| {})
                }
            },
            _ => {
                if let Err(err) = self.broker.create_topic(
                    &topic,
                    TopicConfig::new(1)
                        .with_log(LogKind::Memory)
                        .with_retention(retention),
                ) {
                    self.errors.push(err.into());
                }
                Box::new(publisher(self.broker.producer(), topic.clone()))
            }
        };
        if from_collector {
            self.collector
                .element_sink(format!("publish.{label}"), &upstream, publish);
            self.collector_nodes += 1;
        } else {
            self.monitor
                .element_sink(format!("publish.{label}"), &upstream, publish);
            self.monitor_nodes += 1;
            self.monitor_sinks += 1;
        }

        // Subscribe the target module.
        let group = format!("{}.{label}.sub", self.topic_prefix);
        match &mode {
            ConnectorMode::Remote { addr } => {
                match RemoteConsumer::connect(addr.clone(), group, &[&topic]) {
                    Ok(consumer) => {
                        let source =
                            RemoteTopicSource::new(consumer, self.config.poll_timeout_value());
                        self.attach_bridge_source(label, target, source)
                    }
                    Err(err) => {
                        self.errors.push(err.into());
                        let source = self.fallback_source(&topic);
                        self.attach_bridge_source(label, target, source)
                    }
                }
            }
            _ => {
                let source = match self.broker.consumer(group, &[&topic]) {
                    Ok(consumer) => TopicSource::new(consumer, self.config.poll_timeout_value()),
                    Err(err) => {
                        self.errors.push(err.into());
                        self.fallback_source(&topic)
                    }
                };
                self.attach_bridge_source(label, target, source)
            }
        }
    }

    /// Connects a producer to the remote broker and ensures `topic`
    /// exists there. `TopicExists` is fine: with several machine
    /// processes sharing one broker server, whoever binds first wins.
    /// (Remote topics keep the server's retention defaults — the
    /// per-pipeline retention config only governs in-process topics.)
    fn remote_producer(&self, addr: &str, topic: &str) -> Result<RemoteProducer> {
        let mut producer = RemoteProducer::connect(addr.to_string())?;
        match producer.client_mut().create_topic(topic, 1) {
            Ok(()) | Err(NetError::Broker(strata_pubsub::Error::TopicExists(_))) => Ok(producer),
            Err(err) => Err(err.into()),
        }
    }

    /// Placeholder consumer on a fresh local topic so building can
    /// continue after a connector error; deploy fails with the error
    /// recorded alongside.
    fn fallback_source(&mut self, topic: &str) -> TopicSource {
        let fallback = format!("{topic}.invalid");
        let _ = self.broker.create_topic(&fallback, TopicConfig::new(1));
        let consumer = self
            .broker
            .consumer(format!("{topic}.invalid.g"), &[&fallback])
            .expect("fresh fallback topic exists");
        TopicSource::new(consumer, self.config.poll_timeout_value())
    }

    fn attach_bridge_source<S>(&mut self, label: &str, target: Module, source: S) -> Stream<AmTuple>
    where
        S: Source<Out = AmTuple> + 'static,
    {
        match target {
            Module::Monitor => {
                let s = self.monitor.source(format!("subscribe.{label}"), source);
                self.monitor_nodes += 1;
                s
            }
            Module::Aggregator => {
                let s = self.aggregator.source(format!("subscribe.{label}"), source);
                self.aggregator_nodes += 1;
                s
            }
        }
    }

    fn monitor_qb(&mut self) -> &mut QueryBuilder {
        &mut self.monitor
    }

    fn expect_monitor(&mut self, s: &AmStream, method: &str, allowed: &[Stage]) {
        if s.module != Module::Monitor {
            self.fail(format!(
                "{method} operates in the Event Monitor module; got an Aggregator stream"
            ));
        }
        if !allowed.contains(&s.stage) {
            self.fail(format!(
                "{method} expects an input produced by one of {allowed:?}, got {:?}",
                s.stage
            ));
        }
    }

    /// Table 1 `fuse` without WS/WA: joins tuples of two streams that
    /// share the same `τ`, `job` and `layer`, concatenating their
    /// payloads (keys are assumed unique across the fused tuples).
    pub fn fuse(&mut self, name: &str, left: &AmStream, right: &AmStream) -> AmStream {
        self.fuse_windowed(name, left, right, 0)
    }

    /// Table 1 `fuse` with a window: joins tuples of the two streams
    /// with `|τ_L − τ_R| ≤ ws_millis` sharing `job` and `layer`.
    pub fn fuse_windowed(
        &mut self,
        name: &str,
        left: &AmStream,
        right: &AmStream,
        ws_millis: u64,
    ) -> AmStream {
        self.expect_monitor(left, "fuse", &[Stage::Source, Stage::Fused]);
        self.expect_monitor(right, "fuse", &[Stage::Source, Stage::Fused]);
        let stream = self.monitor_qb().join(
            name.to_string(),
            &left.stream,
            &right.stream,
            ws_millis,
            |t: &AmTuple| (t.metadata().job, t.metadata().layer),
            |t: &AmTuple| (t.metadata().job, t.metadata().layer),
            |l: &AmTuple, r: &AmTuple| {
                let mut fused = l.clone();
                fused.payload_mut().merge(r.payload());
                let m = fused.metadata_mut();
                m.timestamp = m.timestamp.max(r.metadata().timestamp);
                m.ingest_ns = m.ingest_ns.max(r.metadata().ingest_ns);
                Some(fused)
            },
        );
        self.monitor_nodes += 1;
        AmStream {
            module: Module::Monitor,
            stage: Stage::Fused,
            stream,
        }
    }

    fn normalize_partition(mut outputs: Vec<AmTuple>) -> Vec<AmTuple> {
        for t in &mut outputs {
            let m = t.metadata_mut();
            m.specimen.get_or_insert(0);
            m.portion.get_or_insert(0);
        }
        outputs
    }

    /// Table 1 `partition`: transforms each tuple into any number of
    /// tuples enriched with `specimen` and `portion` sub-attributes
    /// (defaults of 0 are filled in when `f` leaves them unset). The
    /// paper's use-case calls this twice: `isolateSpecimen()` then
    /// `isolateCell()`.
    pub fn partition<F>(&mut self, name: &str, input: &AmStream, f: F) -> AmStream
    where
        F: FnMut(&AmTuple) -> Vec<AmTuple> + Send + 'static,
    {
        self.expect_monitor(
            input,
            "partition",
            &[Stage::Source, Stage::Fused, Stage::Partitioned],
        );
        let mut f = f;
        let stream =
            self.monitor_qb()
                .flat_map(name.to_string(), &input.stream, move |t: AmTuple| {
                    Self::normalize_partition(f(&t))
                });
        self.monitor_nodes += 1;
        AmStream {
            module: Module::Monitor,
            stage: Stage::Partitioned,
            stream,
        }
    }

    /// [`partition`](Self::partition) with `parallelism` operator
    /// instances. Portions of a layer are independent (paper §4), so
    /// instances are fed round-robin.
    pub fn partition_parallel<F>(
        &mut self,
        name: &str,
        input: &AmStream,
        parallelism: usize,
        f: F,
    ) -> AmStream
    where
        F: FnMut(&AmTuple) -> Vec<AmTuple> + Clone + Send + 'static,
    {
        self.expect_monitor(
            input,
            "partition",
            &[Stage::Source, Stage::Fused, Stage::Partitioned],
        );
        let stream = self.monitor_qb().parallel_operator(
            name.to_string(),
            &input.stream,
            parallelism,
            RoutePolicy::RoundRobin,
            |_| {
                let mut f = f.clone();
                FlatMap::new(move |t: AmTuple| Self::normalize_partition(f(&t)))
            },
        );
        self.monitor_nodes += 1;
        AmStream {
            module: Module::Monitor,
            stage: Stage::Partitioned,
            stream,
        }
    }

    /// Table 1 `detectEvent`: transforms each tuple into any number
    /// of event tuples (`None` is shorthand for "no event"). The
    /// result is an *event stream*, ready for `correlateEvents`.
    pub fn detect_event<F>(&mut self, name: &str, input: &AmStream, f: F) -> AmStream
    where
        F: FnMut(&AmTuple) -> Option<Vec<AmTuple>> + Send + 'static,
    {
        self.expect_monitor(
            input,
            "detectEvent",
            &[Stage::Source, Stage::Fused, Stage::Partitioned],
        );
        let mut f = f;
        let stream =
            self.monitor_qb()
                .flat_map(name.to_string(), &input.stream, move |t: AmTuple| {
                    f(&t).unwrap_or_default()
                });
        self.monitor_nodes += 1;
        AmStream {
            module: Module::Monitor,
            stage: Stage::Event,
            stream,
        }
    }

    /// [`detect_event`](Self::detect_event) with `parallelism`
    /// operator instances fed round-robin.
    pub fn detect_event_parallel<F>(
        &mut self,
        name: &str,
        input: &AmStream,
        parallelism: usize,
        f: F,
    ) -> AmStream
    where
        F: FnMut(&AmTuple) -> Option<Vec<AmTuple>> + Clone + Send + 'static,
    {
        self.expect_monitor(
            input,
            "detectEvent",
            &[Stage::Source, Stage::Fused, Stage::Partitioned],
        );
        let stream = self.monitor_qb().parallel_operator(
            name.to_string(),
            &input.stream,
            parallelism,
            RoutePolicy::RoundRobin,
            |_| {
                let mut f = f.clone();
                FlatMap::new(move |t: AmTuple| f(&t).unwrap_or_default())
            },
        );
        self.monitor_nodes += 1;
        AmStream {
            module: Module::Monitor,
            stage: Stage::Event,
            stream,
        }
    }

    /// Table 1 `correlateEvents`: aggregates, per `(job, specimen)`,
    /// the events of each completed layer together with the events of
    /// the previous `L` layers, and applies `f` to every such window.
    /// Runs in the Event Aggregator module (bridged through the
    /// *Event Connector* in pub/sub mode).
    pub fn correlate_events<F>(
        &mut self,
        name: &str,
        input: &AmStream,
        depth_l: u32,
        f: F,
    ) -> AmStream
    where
        F: for<'a> FnMut(&CorrelationWindow<'a>) -> Vec<AmTuple> + Send + 'static,
    {
        if input.stage != Stage::Event {
            self.fail(format!(
                "correlateEvents expects a detectEvent stream, got {:?}",
                input.stage
            ));
        }
        let fused = matches!(self.config.connector_mode_value(), ConnectorMode::Direct);
        let bridged = if fused {
            input.stream
        } else {
            if input.module != Module::Monitor {
                self.fail("correlateEvents input must come from the Event Monitor");
            }
            self.bridge(
                input.stream,
                &format!("events.{name}"),
                Module::Aggregator,
                false,
            )
        };
        let op = Correlate::new(depth_l, f);
        let stream = if fused {
            let s = self.monitor.operator(name.to_string(), &bridged, op);
            self.monitor_nodes += 1;
            s
        } else {
            let s = self.aggregator.operator(name.to_string(), &bridged, op);
            self.aggregator_nodes += 1;
            s
        };
        AmStream {
            module: if fused {
                Module::Monitor
            } else {
                Module::Aggregator
            },
            stage: Stage::Correlated,
            stream,
        }
    }

    /// Delivers a stream to the expert: every tuple arrives on the
    /// returned channel as an [`ExpertReport`] with its measured
    /// latency and QoS verdict.
    pub fn deliver(&mut self, name: &str, input: &AmStream) -> Receiver<ExpertReport> {
        let (tx, rx) = unbounded();
        let qos = self.config.qos_threshold();
        let sink = move |tuple: AmTuple| {
            let latency = tuple.latency();
            let _ = tx.send(ExpertReport {
                qos_met: latency <= qos,
                latency,
                tuple,
            });
        };
        match input.module {
            Module::Monitor => {
                self.monitor.sink(name.to_string(), &input.stream, sink);
                self.monitor_nodes += 1;
                self.monitor_sinks += 1;
            }
            Module::Aggregator => {
                self.aggregator.sink(name.to_string(), &input.stream, sink);
                self.aggregator_nodes += 1;
                self.aggregator_sinks += 1;
            }
        }
        rx
    }

    /// Compiles and starts the pipeline's queries.
    ///
    /// # Errors
    ///
    /// The first composition error recorded by the builder methods,
    /// or [`Error::InvalidPipeline`] when no source or no delivery
    /// was declared.
    pub fn deploy(mut self) -> Result<DeployedPipeline> {
        if self.monitor_nodes == 0 && self.collector_nodes == 0 {
            self.fail("pipeline has no source");
        }
        if self.monitor_sinks == 0 && self.aggregator_sinks == 0 {
            self.fail("pipeline delivers nothing (call deliver on at least one stream)");
        }
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        // Downstream modules first, so subscribers exist before the
        // collector floods the connector topics.
        let mut running = Vec::new();
        if self.aggregator_nodes > 0 {
            running.push(self.aggregator.build()?.run());
        }
        if self.monitor_nodes > 0 {
            running.push(self.monitor.build()?.run());
        }
        if self.collector_nodes > 0 {
            running.push(self.collector.build()?.run());
        }
        // Land every module's operator metrics in the instance-wide
        // registry so `Strata::metrics_text` covers live pipelines.
        for query in &running {
            query.metrics().register_into(self.broker.registry());
        }
        Ok(DeployedPipeline { running })
    }
}

/// A deployed pipeline: one running query per active module.
pub struct DeployedPipeline {
    running: Vec<RunningQuery>,
}

impl std::fmt::Debug for DeployedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployedPipeline")
            .field("queries", &self.running.len())
            .finish()
    }
}

impl DeployedPipeline {
    /// Asks every module to stop (sources wind down, state flushes).
    pub fn stop(&self) {
        for query in &self.running {
            query.stop();
        }
    }

    /// Live metrics of every module query.
    pub fn metrics(&self) -> Vec<&QueryMetrics> {
        self.running.iter().map(RunningQuery::metrics).collect()
    }

    /// Waits for all module queries to finish (after their sources
    /// ended naturally, or after [`stop`](DeployedPipeline::stop)).
    ///
    /// # Errors
    ///
    /// The first worker panic or source failure across modules.
    pub fn join(self) -> Result<Vec<QueryMetrics>> {
        let mut metrics = Vec::with_capacity(self.running.len());
        for query in self.running {
            metrics.push(query.join()?);
        }
        Ok(metrics)
    }

    /// [`stop`](DeployedPipeline::stop) followed by
    /// [`join`](DeployedPipeline::join).
    ///
    /// # Errors
    ///
    /// See [`join`](DeployedPipeline::join).
    pub fn shutdown(self) -> Result<Vec<QueryMetrics>> {
        self.stop();
        self.join()
    }
}
