//! Error type aggregating the substrate errors.

use std::fmt;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the STRATA framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A pipeline was composed incorrectly (wrong module order,
    /// duplicate names, missing stages).
    InvalidPipeline(String),
    /// A tuple failed to decode at a connector boundary.
    Codec(String),
    /// The stream processing engine reported an error.
    Spe(strata_spe::Error),
    /// The pub/sub layer reported an error.
    PubSub(strata_pubsub::Error),
    /// The TCP transport to a remote broker reported an error.
    Net(strata_net::NetError),
    /// The key-value store reported an error.
    Kv(strata_kv::Error),
    /// The clustering library rejected its parameters.
    Cluster(strata_cluster::Error),
    /// The machine simulator rejected its configuration.
    Sim(strata_amsim::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPipeline(msg) => write!(f, "invalid pipeline: {msg}"),
            Error::Codec(msg) => write!(f, "tuple codec failure: {msg}"),
            Error::Spe(err) => write!(f, "stream engine: {err}"),
            Error::PubSub(err) => write!(f, "pub/sub: {err}"),
            Error::Net(err) => write!(f, "broker transport: {err}"),
            Error::Kv(err) => write!(f, "key-value store: {err}"),
            Error::Cluster(err) => write!(f, "clustering: {err}"),
            Error::Sim(err) => write!(f, "simulator: {err}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Spe(err) => Some(err),
            Error::PubSub(err) => Some(err),
            Error::Net(err) => Some(err),
            Error::Kv(err) => Some(err),
            Error::Cluster(err) => Some(err),
            Error::Sim(err) => Some(err),
            _ => None,
        }
    }
}

impl From<strata_spe::Error> for Error {
    fn from(err: strata_spe::Error) -> Self {
        Error::Spe(err)
    }
}

impl From<strata_pubsub::Error> for Error {
    fn from(err: strata_pubsub::Error) -> Self {
        Error::PubSub(err)
    }
}

impl From<strata_net::NetError> for Error {
    fn from(err: strata_net::NetError) -> Self {
        // A broker-side failure relayed over the wire is a pub/sub
        // error wherever it surfaces; only transport-layer failures
        // stay in the Net variant.
        match err {
            strata_net::NetError::Broker(inner) => Error::PubSub(inner),
            other => Error::Net(other),
        }
    }
}

impl From<strata_kv::Error> for Error {
    fn from(err: strata_kv::Error) -> Self {
        Error::Kv(err)
    }
}

impl From<strata_cluster::Error> for Error {
    fn from(err: strata_cluster::Error) -> Self {
        Error::Cluster(err)
    }
}

impl From<strata_amsim::Error> for Error {
    fn from(err: strata_amsim::Error) -> Self {
        Error::Sim(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors_with_sources() {
        use std::error::Error as _;
        let err = Error::from(strata_spe::Error::InvalidQuery("x".into()));
        assert!(err.to_string().contains("stream engine"));
        assert!(err.source().is_some());
        let err = Error::from(strata_kv::Error::MemoryMode);
        assert!(err.to_string().contains("key-value store"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
