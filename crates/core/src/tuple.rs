//! STRATA's tuple model (paper §2): metadata carrying the event time
//! `τ` and AM-specific identifiers, and a key-value payload.
//!
//! The combined notation of the paper is
//! `⟨τ, job, layer, [specimen, portion,] [k₁:v₁, k₂:v₂, …]⟩`:
//! `job` and `layer` are set by every source; `specimen` and
//! `portion` appear downstream of the `partition` method.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use strata_amsim::OtImage;
use strata_spe::{Timestamp, Timestamped};

/// Nanoseconds since the process-wide monotonic epoch; used to
/// measure end-to-end latency (time between "all data available to
/// the system" and "result delivered", §3 of the paper).
pub fn ingest_clock_ns() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A list of `(id, x, y, w, h)` rectangles in image pixels — the
/// shape of the specimen layout carried by the printing-parameters
/// source.
pub type RectList = Vec<(u32, u32, u32, u32, u32)>;

/// A payload value. Heavy variants ([`Value::Image`],
/// [`Value::Points`], …) are [`Arc`]-backed so that cloning a tuple
/// for operator fan-out never copies pixel data.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Arc<str>),
    /// Raw bytes.
    Bytes(Arc<[u8]>),
    /// A gray-scale OT image (or a crop of one).
    Image(Arc<OtImage>),
    /// Rectangles `(id, x, y, w, h)` in image pixels — e.g. the
    /// specimen layout from the printing-parameters source.
    Rects(Arc<RectList>),
    /// In-plane points `(x, y)` in mm — e.g. event locations.
    Points(Arc<Vec<(f64, f64)>>),
}

/// The key-value payload of a tuple.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Payload {
    entries: BTreeMap<String, Value>,
}

impl Payload {
    /// Creates an empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// Number of key-value pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the payload has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw value under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Sets `key` to an arbitrary [`Value`].
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut Self {
        self.entries.insert(key.into(), value);
        self
    }

    /// Sets an integer.
    pub fn set_int(&mut self, key: impl Into<String>, value: i64) -> &mut Self {
        self.set(key, Value::Int(value))
    }

    /// Sets a float.
    pub fn set_float(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.set(key, Value::Float(value))
    }

    /// Sets a boolean.
    pub fn set_bool(&mut self, key: impl Into<String>, value: bool) -> &mut Self {
        self.set(key, Value::Bool(value))
    }

    /// Sets a string.
    pub fn set_str(&mut self, key: impl Into<String>, value: impl AsRef<str>) -> &mut Self {
        self.set(key, Value::Str(Arc::from(value.as_ref())))
    }

    /// Sets an image (shared, not copied).
    pub fn set_image(&mut self, key: impl Into<String>, image: Arc<OtImage>) -> &mut Self {
        self.set(key, Value::Image(image))
    }

    /// Sets a rectangle list.
    pub fn set_rects(&mut self, key: impl Into<String>, rects: Arc<RectList>) -> &mut Self {
        self.set(key, Value::Rects(rects))
    }

    /// Sets a point list.
    pub fn set_points(
        &mut self,
        key: impl Into<String>,
        points: Arc<Vec<(f64, f64)>>,
    ) -> &mut Self {
        self.set(key, Value::Points(points))
    }

    /// Reads an integer.
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.get(key)? {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a float (integers widen).
    pub fn float(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Reads a boolean.
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Reads an image.
    pub fn image(&self, key: &str) -> Option<&Arc<OtImage>> {
        match self.get(key)? {
            Value::Image(v) => Some(v),
            _ => None,
        }
    }

    /// Reads a rectangle list.
    pub fn rects(&self, key: &str) -> Option<&Arc<RectList>> {
        match self.get(key)? {
            Value::Rects(v) => Some(v),
            _ => None,
        }
    }

    /// Reads a point list.
    pub fn points(&self, key: &str) -> Option<&Arc<Vec<(f64, f64)>>> {
        match self.get(key)? {
            Value::Points(v) => Some(v),
            _ => None,
        }
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorbs all entries of `other` (the `fuse` method's payload
    /// concatenation; the paper assumes keys are unique across fused
    /// tuples, so collisions simply keep the later value).
    pub fn merge(&mut self, other: &Payload) {
        for (k, v) in &other.entries {
            self.entries.insert(k.clone(), v.clone());
        }
    }
}

/// Tuple metadata: event time, job and layer identifiers, the
/// specimen/portion set by `partition`, and the ingestion instant
/// used for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Event time `τ`, set by the source on creation.
    pub timestamp: Timestamp,
    /// The printing job the data belongs to.
    pub job: u32,
    /// The layer the data refers to.
    pub layer: u32,
    /// The specimen, once `partition` isolated one.
    pub specimen: Option<u32>,
    /// The layer portion (e.g. cell), once `partition` isolated one.
    pub portion: Option<u32>,
    /// [`ingest_clock_ns`] at the moment the originating raw data
    /// entered STRATA; carried through the pipeline, maximized by
    /// fusing/aggregating operators.
    pub ingest_ns: u64,
}

/// The unit of data flowing through STRATA pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct AmTuple {
    metadata: Metadata,
    payload: Payload,
}

impl AmTuple {
    /// Creates a tuple with the given event time, job and layer, an
    /// unset specimen/portion, and the current ingest instant.
    pub fn new(timestamp: Timestamp, job: u32, layer: u32) -> Self {
        AmTuple {
            metadata: Metadata {
                timestamp,
                job,
                layer,
                specimen: None,
                portion: None,
                ingest_ns: ingest_clock_ns(),
            },
            payload: Payload::new(),
        }
    }

    /// Creates a tuple from explicit metadata (codec and tests).
    pub fn from_parts(metadata: Metadata, payload: Payload) -> Self {
        AmTuple { metadata, payload }
    }

    /// A new tuple inheriting this tuple's metadata (including the
    /// ingest instant) with an empty payload — the usual way operator
    /// functions build their outputs.
    pub fn derive(&self) -> AmTuple {
        AmTuple {
            metadata: self.metadata,
            payload: Payload::new(),
        }
    }

    /// The metadata.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// Mutable metadata access.
    pub fn metadata_mut(&mut self) -> &mut Metadata {
        &mut self.metadata
    }

    /// The payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut Payload {
        &mut self.payload
    }

    /// Sets the specimen (builder style).
    pub fn with_specimen(mut self, specimen: u32) -> Self {
        self.metadata.specimen = Some(specimen);
        self
    }

    /// Sets the portion (builder style).
    pub fn with_portion(mut self, portion: u32) -> Self {
        self.metadata.portion = Some(portion);
        self
    }

    /// Latency from this tuple's ingest instant to now.
    pub fn latency(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(ingest_clock_ns().saturating_sub(self.metadata.ingest_ns))
    }
}

impl Timestamped for AmTuple {
    fn timestamp(&self) -> Timestamp {
        self.metadata.timestamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let mut t = AmTuple::new(Timestamp::from_millis(5), 7, 3);
        assert_eq!(t.timestamp(), Timestamp::from_millis(5));
        assert_eq!(t.metadata().job, 7);
        assert_eq!(t.metadata().layer, 3);
        assert_eq!(t.metadata().specimen, None);
        t.payload_mut().set_int("count", 42).set_str("unit", "px");
        assert_eq!(t.payload().int("count"), Some(42));
        assert_eq!(t.payload().str("unit"), Some("px"));
        assert_eq!(t.payload().int("unit"), None, "type-checked access");
        assert_eq!(t.payload().float("count"), Some(42.0), "int widens");
    }

    #[test]
    fn derive_keeps_metadata_not_payload() {
        let mut t = AmTuple::new(Timestamp::from_millis(1), 1, 2).with_specimen(4);
        t.payload_mut().set_int("x", 1);
        let d = t.derive();
        assert_eq!(d.metadata(), t.metadata());
        assert!(d.payload().is_empty());
    }

    #[test]
    fn merge_concatenates_payloads() {
        let mut a = Payload::new();
        a.set_int("a", 1);
        let mut b = Payload::new();
        b.set_int("b", 2);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.int("b"), Some(2));
    }

    #[test]
    fn image_payloads_share_not_copy() {
        let img = Arc::new(OtImage::new(10, 10));
        let mut t = AmTuple::new(Timestamp::MIN, 0, 0);
        t.payload_mut().set_image("image", Arc::clone(&img));
        let t2 = t.clone();
        assert!(Arc::ptr_eq(
            t.payload().image("image").unwrap(),
            t2.payload().image("image").unwrap()
        ));
    }

    #[test]
    fn ingest_clock_is_monotone() {
        let a = ingest_clock_ns();
        let b = ingest_clock_ns();
        assert!(b >= a);
        let t = AmTuple::new(Timestamp::MIN, 0, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.latency() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn payload_iterates_in_key_order() {
        let mut p = Payload::new();
        p.set_int("zz", 1).set_int("aa", 2);
        let keys: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["aa", "zz"]);
    }
}
