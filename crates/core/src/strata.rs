//! The framework facade: shared broker, key-value store, and
//! pipeline creation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use strata_kv::{Db, DbOptions};
use strata_pubsub::Broker;

use crate::config::StrataConfig;
use crate::error::Result;
use crate::pipeline::PipelineBuilder;

/// A STRATA instance: one broker (the connector substrate), one
/// key-value store (the at-rest substrate), and any number of expert
/// pipelines on top. Cheap to clone; clones share everything.
#[derive(Clone)]
pub struct Strata {
    config: StrataConfig,
    broker: Broker,
    kv: Db,
    pipeline_seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for Strata {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Strata")
            .field("broker", &self.broker)
            .field("kv", &self.kv)
            .finish()
    }
}

impl Strata {
    /// Creates an instance with the given configuration. The
    /// key-value store lives in memory unless
    /// [`StrataConfig::kv_dir`] points somewhere.
    ///
    /// # Errors
    ///
    /// Key-value store open failures.
    pub fn new(config: StrataConfig) -> Result<Self> {
        let kv = match config.kv_dir_value() {
            Some(dir) => Db::open(dir, DbOptions::default())?,
            None => Db::open_in_memory(DbOptions::default())?,
        };
        let broker = Broker::new();
        // The broker's registry is the instance-wide one: the store
        // (here), the pipelines (at deploy), and any net front-end (at
        // bind) all land their metrics in it.
        kv.register_metrics(broker.registry());
        Ok(Strata {
            config,
            broker,
            kv,
            pipeline_seq: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Table 1 `store(k, v)`: persists a value in the key-value
    /// store. Reachable from every module and every user function.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn store(&self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> Result<()> {
        Ok(self.kv.put(key, value)?)
    }

    /// Table 1 `get(k)`: retrieves a value from the key-value store.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Vec<u8>>> {
        Ok(self.kv.get(key)?)
    }

    /// Convenience: stores a float as its decimal representation
    /// (thresholds, calibration constants).
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn store_float(&self, key: impl AsRef<[u8]>, value: f64) -> Result<()> {
        self.store(key, value.to_string())
    }

    /// Convenience: reads a float stored by
    /// [`store_float`](Strata::store_float).
    ///
    /// # Errors
    ///
    /// Storage failures; an unparsable value reads as `None`.
    pub fn get_float(&self, key: impl AsRef<[u8]>) -> Result<Option<f64>> {
        Ok(self
            .get(key)?
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|s| s.parse().ok()))
    }

    /// Direct access to the key-value store (for user functions that
    /// need scans or batches).
    pub fn kv(&self) -> &Db {
        &self.kv
    }

    /// Direct access to the connector broker (e.g. for external
    /// subscribers replaying a connector topic).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The instance configuration.
    pub fn config(&self) -> &StrataConfig {
        &self.config
    }

    /// The instance-wide metrics registry: broker, store, deployed
    /// pipelines, and any net front-end bound on this broker.
    pub fn registry(&self) -> &strata_obs::Registry {
        self.broker.registry()
    }

    /// One Prometheus text dump covering the whole instance: pipeline
    /// operators (`spe_*`), connector topics (`pubsub_*`), the
    /// key-value store (`kv_*`), and — once a server is bound — the
    /// transport (`net_*`).
    pub fn metrics_text(&self) -> String {
        self.broker.registry().render()
    }

    /// Starts composing a new pipeline. Pipeline names may repeat;
    /// connector topics are disambiguated per instance.
    ///
    /// The pipeline's queries run on the instance's micro-batched
    /// data plane, sized by [`StrataConfig::batch_size`] and
    /// [`StrataConfig::batch_timeout`]; batching changes throughput
    /// and latency only, never results (DESIGN.md §4e).
    pub fn pipeline(&self, name: impl Into<String>) -> PipelineBuilder {
        let instance = self.pipeline_seq.fetch_add(1, Ordering::Relaxed);
        PipelineBuilder::new(
            name.into(),
            instance,
            self.config.clone(),
            self.broker.clone(),
            self.kv.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_get_round_trip() {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        strata.store("threshold/low", "100").unwrap();
        assert_eq!(strata.get("threshold/low").unwrap(), Some(b"100".to_vec()));
        assert_eq!(strata.get("missing").unwrap(), None);
    }

    #[test]
    fn float_helpers_round_trip() {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        strata.store_float("pi", 3.25).unwrap();
        assert_eq!(strata.get_float("pi").unwrap(), Some(3.25));
        strata.store("junk", "not-a-number").unwrap();
        assert_eq!(strata.get_float("junk").unwrap(), None);
    }

    #[test]
    fn clones_share_the_store() {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        let clone = strata.clone();
        strata.store("k", "v").unwrap();
        assert_eq!(clone.get("k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn metrics_text_covers_store_operations() {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        strata.store("k", "v").unwrap();
        let _ = strata.get("k").unwrap();
        let text = strata.metrics_text();
        assert!(text.contains("kv_put_ns_count 1"), "{text}");
        assert!(text.contains("kv_get_ns_count 1"), "{text}");
        assert!(text.contains("chaos_faults_total"), "{text}");
    }

    #[test]
    fn pipelines_get_distinct_instances() {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        let a = strata.pipeline("same-name");
        let b = strata.pipeline("same-name");
        assert_eq!(a.name(), b.name());
    }
}
