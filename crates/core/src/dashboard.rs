//! A textual build-status dashboard for the expert.
//!
//! The paper's Figure 1B puts "live info" in front of the expert so
//! they can decide on the running process. [`Dashboard`] is the
//! minimal such surface: it folds the report stream into per-specimen
//! status rows — layers seen, events, clusters, the largest cluster,
//! latency and QoS health — and renders them as a table for a
//! terminal or a log file. It consumes the same channel as the
//! decision policies in [`expert`](crate::expert), so it composes
//! with them.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::report::ExpertReport;

/// Per-specimen accumulated status.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecimenStatus {
    /// Last layer a report was seen for.
    pub last_layer: u32,
    /// Window evaluations (summary reports) seen.
    pub windows: u64,
    /// Total events across all evaluated windows.
    pub events: i64,
    /// Cluster reports seen.
    pub cluster_reports: u64,
    /// Largest cluster size ever reported.
    pub peak_cluster_size: i64,
    /// Deepest cluster (mm of build height) ever reported.
    pub peak_cluster_depth_mm: f64,
    /// Latency of the most recent report.
    pub last_latency: Duration,
    /// Reports that violated the QoS threshold.
    pub qos_misses: u64,
}

/// Folds [`ExpertReport`]s into a per-specimen status board.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    specimens: BTreeMap<u32, SpecimenStatus>,
    reports: u64,
}

impl Dashboard {
    /// Creates an empty dashboard.
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Ingests one report.
    pub fn observe(&mut self, report: &ExpertReport) {
        self.reports += 1;
        let meta = report.tuple.metadata();
        let status = self
            .specimens
            .entry(meta.specimen.unwrap_or(0))
            .or_default();
        status.last_layer = status.last_layer.max(meta.layer);
        status.last_latency = report.latency;
        if !report.qos_met {
            status.qos_misses += 1;
        }
        match report.tuple.payload().str("report") {
            Some("summary") => {
                status.windows += 1;
                status.events += report.tuple.payload().int("event_count").unwrap_or(0);
            }
            Some("cluster") => {
                status.cluster_reports += 1;
                status.peak_cluster_size = status
                    .peak_cluster_size
                    .max(report.tuple.payload().int("size").unwrap_or(0));
                status.peak_cluster_depth_mm = status
                    .peak_cluster_depth_mm
                    .max(report.tuple.payload().float("depth_mm").unwrap_or(0.0));
            }
            _ => {}
        }
    }

    /// Total reports ingested.
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// The status of one specimen, if any report mentioned it.
    pub fn specimen(&self, id: u32) -> Option<&SpecimenStatus> {
        self.specimens.get(&id)
    }

    /// All specimen statuses, ordered by id.
    pub fn specimens(&self) -> impl Iterator<Item = (u32, &SpecimenStatus)> {
        self.specimens.iter().map(|(id, s)| (*id, s))
    }

    /// Renders the board as a fixed-width table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "spec | layer | windows |  events | clusters | peak size | depth mm | last lat | qos miss\n",
        );
        out.push_str(
            "-----+-------+---------+---------+----------+-----------+----------+----------+---------\n",
        );
        for (id, s) in &self.specimens {
            out.push_str(&format!(
                "{id:>4} | {:>5} | {:>7} | {:>7} | {:>8} | {:>9} | {:>8.2} | {:>7.1?} | {:>8}\n",
                s.last_layer,
                s.windows,
                s.events,
                s.cluster_reports,
                s.peak_cluster_size,
                s.peak_cluster_depth_mm,
                s.last_latency,
                s.qos_misses,
            ));
        }
        if self.specimens.is_empty() {
            out.push_str("(no reports yet)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::AmTuple;
    use strata_spe::Timestamp;

    fn report(kind: &str, specimen: u32, layer: u32, size: i64, qos_met: bool) -> ExpertReport {
        let mut t =
            AmTuple::new(Timestamp::from_millis(layer as u64), 1, layer).with_specimen(specimen);
        t.payload_mut().set_str("report", kind);
        if kind == "cluster" {
            t.payload_mut()
                .set_int("size", size)
                .set_float("depth_mm", size as f64 / 100.0);
        } else {
            t.payload_mut().set_int("event_count", size);
        }
        ExpertReport {
            tuple: t,
            latency: Duration::from_millis(7),
            qos_met,
        }
    }

    #[test]
    fn accumulates_per_specimen() {
        let mut d = Dashboard::new();
        d.observe(&report("summary", 3, 0, 12, true));
        d.observe(&report("cluster", 3, 1, 40, true));
        d.observe(&report("cluster", 3, 2, 25, false));
        d.observe(&report("summary", 5, 2, 7, true));
        assert_eq!(d.report_count(), 4);
        let s3 = d.specimen(3).unwrap();
        assert_eq!(s3.windows, 1);
        assert_eq!(s3.events, 12);
        assert_eq!(s3.cluster_reports, 2);
        assert_eq!(s3.peak_cluster_size, 40);
        assert_eq!(s3.qos_misses, 1);
        assert_eq!(s3.last_layer, 2);
        assert!(d.specimen(5).is_some());
        assert!(d.specimen(9).is_none());
        assert_eq!(d.specimens().count(), 2);
    }

    #[test]
    fn renders_a_table() {
        let mut d = Dashboard::new();
        assert!(d.render().contains("no reports yet"));
        d.observe(&report("cluster", 0, 4, 99, true));
        let table = d.render();
        assert!(table.contains("spec | layer"));
        assert!(table.contains("99"), "{table}");
        assert!(!table.contains("no reports yet"));
    }

    #[test]
    fn peak_depth_tracks_maximum() {
        let mut d = Dashboard::new();
        d.observe(&report("cluster", 1, 0, 50, true)); // depth 0.5
        d.observe(&report("cluster", 1, 1, 20, true)); // depth 0.2
        assert!((d.specimen(1).unwrap().peak_cluster_depth_mm - 0.5).abs() < 1e-9);
    }
}
