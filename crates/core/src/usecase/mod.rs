//! Ready-made pipeline building blocks for PBF-LB monitoring
//! use-cases.
//!
//! [`thermal`] implements the paper's real-world use-case (§5,
//! Algorithm 1): detecting specimen portions melted with too-low or
//! too-high thermal energy from OT images, and clustering them within
//! and across layers with DBSCAN.

pub mod geometry;
pub mod thermal;
