//! A second monitoring use-case, extending the portfolio along the
//! paper's future-work axis ("the shape of the object being printed,
//! or the type of monitored defect"): **melted-footprint geometry
//! monitoring** with recoater-streak detection.
//!
//! Two event detectors over the fused OT + printing-parameters
//! stream:
//!
//! * [`footprint_monitor`] — per specimen, the fraction of the
//!   footprint that actually melted (pixels above a "melted"
//!   threshold). An under-melted footprint means lack of powder or
//!   energy somewhere in the specimen; an event is raised when the
//!   fraction drops below a tolerance.
//! * [`streak_detector`] — recoater short-feed streaks run along the
//!   recoating direction and darken a whole vertical band of the
//!   plate. The detector profiles per-column mean emission across all
//!   specimen footprints of the full image and raises one event per
//!   contiguous band of abnormally dark columns.
//!
//! Both compile to `detectEvent` (FlatMap) over STRATA's native
//! operators, exactly like the thermal use-case, demonstrating that
//! new defect types are *pipeline definitions*, not framework
//! changes.

use crate::tuple::AmTuple;

/// Parameters of the geometry monitors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryOptions {
    /// Pixels above this gray level count as melted (between powder
    /// background and nominal melt emission).
    pub melted_threshold: u8,
    /// Raise a footprint event when the melted fraction of a
    /// specimen drops below this.
    pub min_melted_fraction: f64,
    /// A column is streak-suspect when its mean emission falls below
    /// this multiple of the overall footprint mean.
    pub streak_column_factor: f64,
    /// Minimum streak width, in columns, to be reported.
    pub min_streak_columns: u32,
}

impl Default for GeometryOptions {
    fn default() -> Self {
        GeometryOptions {
            melted_threshold: 60,
            min_melted_fraction: 0.97,
            streak_column_factor: 0.75,
            min_streak_columns: 2,
        }
    }
}

/// `detectEvent` function: per-specimen melted-footprint check.
/// Expects tuples shaped like the output of the thermal use-case's
/// `isolate_specimen` (a specimen image plus origin metadata).
pub fn footprint_monitor(
    options: GeometryOptions,
) -> impl FnMut(&AmTuple) -> Option<Vec<AmTuple>> + Clone {
    move |tuple: &AmTuple| {
        let image = tuple.payload().image("image")?;
        let total = image.pixels().len().max(1);
        let melted = image
            .pixels()
            .iter()
            .filter(|&&p| p >= options.melted_threshold)
            .count();
        let fraction = melted as f64 / total as f64;
        if fraction >= options.min_melted_fraction {
            return None;
        }
        let mut event = tuple.derive();
        event
            .payload_mut()
            .set_str("class", "under_melted_footprint")
            .set_float("melted_fraction", fraction)
            .set_float("expected_fraction", options.min_melted_fraction);
        Some(vec![event])
    }
}

/// One detected streak band, in image columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreakBand {
    /// First affected column (full-image pixel coordinates).
    pub start_col: u32,
    /// Number of affected columns.
    pub width_cols: u32,
}

/// Analyzes a full OT image for dark vertical bands across the
/// specimen footprints. Exposed separately so it can be unit-tested
/// without a pipeline.
pub fn find_streak_bands(
    image: &strata_amsim::OtImage,
    rects: &[(u32, u32, u32, u32, u32)],
    options: &GeometryOptions,
) -> Vec<StreakBand> {
    let width = image.width() as usize;
    let mut column_sum = vec![0u64; width];
    let mut column_count = vec![0u64; width];
    for &(_, x, y, w, h) in rects {
        for yy in y..(y + h).min(image.height()) {
            for xx in x..(x + w).min(image.width()) {
                column_sum[xx as usize] += image.get(xx, yy) as u64;
                column_count[xx as usize] += 1;
            }
        }
    }
    let covered: Vec<(usize, f64)> = column_sum
        .iter()
        .zip(&column_count)
        .enumerate()
        .filter(|(_, (_, &count))| count > 0)
        .map(|(i, (&sum, &count))| (i, sum as f64 / count as f64))
        .collect();
    if covered.is_empty() {
        return Vec::new();
    }
    let overall = covered.iter().map(|(_, m)| m).sum::<f64>() / covered.len() as f64;
    let cutoff = overall * options.streak_column_factor;

    let mut bands = Vec::new();
    let mut current: Option<(u32, u32)> = None; // (start, width)
    let mut last_col: Option<usize> = None;
    for (col, mean) in covered {
        let dark = mean < cutoff;
        let contiguous = last_col.is_some_and(|l| col == l + 1);
        match (&mut current, dark) {
            (Some((_, width)), true) if contiguous => *width += 1,
            (_, true) => {
                if let Some((start, width)) = current.take() {
                    if width >= options.min_streak_columns {
                        bands.push(StreakBand {
                            start_col: start,
                            width_cols: width,
                        });
                    }
                }
                current = Some((col as u32, 1));
            }
            (Some((start, width)), false) => {
                if *width >= options.min_streak_columns {
                    bands.push(StreakBand {
                        start_col: *start,
                        width_cols: *width,
                    });
                }
                current = None;
            }
            (None, false) => {}
        }
        last_col = Some(col);
    }
    if let Some((start, width)) = current {
        if width >= options.min_streak_columns {
            bands.push(StreakBand {
                start_col: start,
                width_cols: width,
            });
        }
    }
    bands
}

/// `detectEvent` function: recoater-streak detection over the fused
/// full-image stream (image + `specimen_px` layout). Emits one event
/// per detected band with its plate coordinates.
pub fn streak_detector(
    plate_mm: f64,
    options: GeometryOptions,
) -> impl FnMut(&AmTuple) -> Option<Vec<AmTuple>> + Clone {
    move |tuple: &AmTuple| {
        let image = tuple.payload().image("image")?;
        let rects = tuple.payload().rects("specimen_px")?;
        let bands = find_streak_bands(image, rects, &options);
        if bands.is_empty() {
            return None;
        }
        let mm_per_px = plate_mm / image.width().max(1) as f64;
        Some(
            bands
                .into_iter()
                .map(|band| {
                    let mut event = tuple.derive();
                    event
                        .payload_mut()
                        .set_str("class", "recoater_streak")
                        .set_float("x_mm", band.start_col as f64 * mm_per_px)
                        .set_float("width_mm", band.width_cols as f64 * mm_per_px);
                    event
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use strata_amsim::OtImage;
    use strata_spe::Timestamp;

    fn specimen_tuple(image: OtImage) -> AmTuple {
        let mut t = AmTuple::new(Timestamp::from_millis(1), 1, 0).with_specimen(0);
        t.payload_mut().set_image("image", Arc::new(image));
        t
    }

    #[test]
    fn healthy_footprint_raises_nothing() {
        let image = OtImage::from_fn(50, 100, |_, _| 140);
        let mut f = footprint_monitor(GeometryOptions::default());
        assert!(f(&specimen_tuple(image)).is_none());
    }

    #[test]
    fn under_melted_footprint_raises_an_event() {
        // 10 % of the footprint stayed powder-dark.
        let image = OtImage::from_fn(50, 100, |x, _| if x < 5 { 10 } else { 140 });
        let mut f = footprint_monitor(GeometryOptions::default());
        let events = f(&specimen_tuple(image)).expect("event raised");
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].payload().str("class"),
            Some("under_melted_footprint")
        );
        let fraction = events[0].payload().float("melted_fraction").unwrap();
        assert!((fraction - 0.9).abs() < 1e-9);
    }

    #[test]
    fn streak_bands_are_located() {
        // Two specimens side by side; a dark band crosses the second.
        let image = OtImage::from_fn(100, 40, |x, _| if (60..66).contains(&x) { 40 } else { 140 });
        let rects = vec![(0u32, 0u32, 0u32, 40u32, 40u32), (1, 50, 0, 40, 40)];
        let bands = find_streak_bands(&image, &rects, &GeometryOptions::default());
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].start_col, 60);
        assert_eq!(bands[0].width_cols, 6);
    }

    #[test]
    fn clean_images_have_no_bands() {
        let image = OtImage::from_fn(100, 40, |_, _| 140);
        let rects = vec![(0u32, 0u32, 0u32, 100u32, 40u32)];
        assert!(find_streak_bands(&image, &rects, &GeometryOptions::default()).is_empty());
    }

    #[test]
    fn narrow_dips_are_ignored() {
        let image = OtImage::from_fn(100, 40, |x, _| if x == 30 { 40 } else { 140 });
        let rects = vec![(0u32, 0u32, 0u32, 100u32, 40u32)];
        let options = GeometryOptions {
            min_streak_columns: 2,
            ..GeometryOptions::default()
        };
        assert!(find_streak_bands(&image, &rects, &options).is_empty());
    }

    #[test]
    fn streak_detector_emits_plate_coordinates() {
        let image = OtImage::from_fn(
            200,
            200,
            |x, _| if (100..110).contains(&x) { 40 } else { 140 },
        );
        let mut t = AmTuple::new(Timestamp::from_millis(1), 1, 0);
        t.payload_mut()
            .set_image("image", Arc::new(image))
            .set_rects("specimen_px", Arc::new(vec![(0, 0, 0, 200, 200)]));
        let mut f = streak_detector(250.0, GeometryOptions::default());
        let events = f(&t).expect("streak found");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].payload().str("class"), Some("recoater_streak"));
        // 100 px of 200 over a 250 mm plate → 125 mm.
        assert!((events[0].payload().float("x_mm").unwrap() - 125.0).abs() < 2.0);
        assert!((events[0].payload().float("width_mm").unwrap() - 12.5).abs() < 2.0);
    }
}
