//! The paper's use-case (Algorithm 1): thermal-energy monitoring.
//!
//! ```text
//! 1  addSource(new PrintingParameterCollector(), pp)
//! 2  addSource(new OTImageCollector(), OT)
//! 3  fuse(OT, pp, OT&pp)
//! 4  partition(OT&pp, spec, isolateSpecimen())
//! 5  partition(spec, cell, isolateCell())
//! 6  detectEvent(cell, cellLabel, labelCell())
//! 7  correlateEvents(cellLabel, out, L, DBSCAN())
//! ```
//!
//! `isolateSpecimen` crops each OT image into per-specimen images
//! using the layout carried by the printing-parameters source;
//! `isolateCell` splits a specimen into square cells and computes
//! per-cell emission statistics; `labelCell` classifies each cell as
//! *very cold / cold / regular / warm / very warm* against thresholds
//! held in the key-value store (computed from historical jobs) and
//! forwards only the two extreme classes; the DBSCAN correlator
//! clusters events within and across the last `L` layers and reports
//! clusters above a volume threshold, together with a rendered
//! cluster image for the expert.

use std::ops::Range;
use std::sync::Arc;

use crossbeam::channel::Receiver;
use strata_amsim::{OtImage, PbfLbMachine, ThermalModel};
use strata_cluster::{dbscan, DbscanParams, Point};

use crate::collector::{OfferedRateSource, OtImageCollector, PrintingParameterCollector};
use crate::error::{Error, Result};
use crate::pipeline::{CorrelationWindow, DeployedPipeline};
use crate::report::ExpertReport;
use crate::strata::Strata;
use crate::tuple::AmTuple;

/// Key-value store keys holding the classification thresholds.
pub mod keys {
    /// Pixel gray level below which a pixel is *very cold*.
    pub const PIXEL_VERY_COLD: &str = "thermal/pixel/very_cold";
    /// Pixel gray level below which a pixel is *cold*.
    pub const PIXEL_COLD: &str = "thermal/pixel/cold";
    /// Pixel gray level above which a pixel is *warm*.
    pub const PIXEL_WARM: &str = "thermal/pixel/warm";
    /// Pixel gray level above which a pixel is *very warm*.
    pub const PIXEL_VERY_WARM: &str = "thermal/pixel/very_warm";
    /// Minimum fraction of extreme pixels for a cell to take an
    /// extreme class.
    pub const CELL_MIN_FRACTION: &str = "thermal/cell/min_fraction";
}

/// Classification thresholds used by `isolateCell`/`labelCell`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Pixel level below which a pixel counts as very cold.
    pub pixel_very_cold: f64,
    /// Pixel level below which a pixel counts as cold.
    pub pixel_cold: f64,
    /// Pixel level above which a pixel counts as warm.
    pub pixel_warm: f64,
    /// Pixel level above which a pixel counts as very warm.
    pub pixel_very_warm: f64,
    /// Minimum extreme-pixel fraction for a cell to be classified
    /// into an extreme class.
    pub cell_min_fraction: f64,
}

/// Persists `thresholds` into the key-value store — in production
/// these come from historical jobs; benchmarks and examples seed them
/// from the simulator's [`ThermalModel`].
///
/// # Errors
///
/// Storage failures.
pub fn seed_thresholds(strata: &Strata, thresholds: Thresholds) -> Result<()> {
    strata.store_float(keys::PIXEL_VERY_COLD, thresholds.pixel_very_cold)?;
    strata.store_float(keys::PIXEL_COLD, thresholds.pixel_cold)?;
    strata.store_float(keys::PIXEL_WARM, thresholds.pixel_warm)?;
    strata.store_float(keys::PIXEL_VERY_WARM, thresholds.pixel_very_warm)?;
    strata.store_float(keys::CELL_MIN_FRACTION, thresholds.cell_min_fraction)?;
    Ok(())
}

/// Thresholds an expert would derive from historical jobs of a
/// machine with the given thermal behaviour.
pub fn reference_thresholds(model: &ThermalModel) -> Thresholds {
    let px = model.reference_thresholds();
    Thresholds {
        pixel_very_cold: px.very_cold,
        pixel_cold: px.cold,
        pixel_warm: px.warm,
        pixel_very_warm: px.very_warm,
        cell_min_fraction: 0.10,
    }
}

/// Loads the thresholds back from the key-value store.
///
/// # Errors
///
/// [`Error::InvalidPipeline`] when the thresholds were never seeded;
/// storage failures.
pub fn load_thresholds(strata: &Strata) -> Result<Thresholds> {
    let read = |key: &str| -> Result<f64> {
        strata.get_float(key)?.ok_or_else(|| {
            Error::InvalidPipeline(format!(
                "threshold `{key}` missing from the key-value store; call seed_thresholds first"
            ))
        })
    };
    Ok(Thresholds {
        pixel_very_cold: read(keys::PIXEL_VERY_COLD)?,
        pixel_cold: read(keys::PIXEL_COLD)?,
        pixel_warm: read(keys::PIXEL_WARM)?,
        pixel_very_warm: read(keys::PIXEL_VERY_WARM)?,
        cell_min_fraction: read(keys::CELL_MIN_FRACTION)?,
    })
}

/// `isolateSpecimen()`: crops the fused OT image into one image per
/// specimen, using the pixel layout provided by the
/// printing-parameters source. `plate_mm` maps pixels back to plate
/// coordinates downstream.
pub fn isolate_specimen(plate_mm: f64) -> impl FnMut(&AmTuple) -> Vec<AmTuple> + Clone {
    move |tuple: &AmTuple| {
        let Some(image) = tuple.payload().image("image") else {
            return Vec::new();
        };
        let Some(rects) = tuple.payload().rects("specimen_px") else {
            return Vec::new();
        };
        let mm_per_px = plate_mm / image.width().max(1) as f64;
        rects
            .iter()
            .map(|&(id, x, y, w, h)| {
                let crop = Arc::new(image.crop(x, y, w, h));
                let mut out = tuple.derive().with_specimen(id);
                out.payload_mut()
                    .set_image("image", crop)
                    .set_int("origin_x_px", x as i64)
                    .set_int("origin_y_px", y as i64)
                    .set_float("mm_per_px", mm_per_px);
                out
            })
            .collect()
    }
}

/// `isolateCell()`: splits a specimen image into square cells of
/// `cell_px` pixels and computes per-cell statistics against the
/// pixel thresholds from the key-value store: mean emission and the
/// fraction of pixels beyond each threshold.
pub fn isolate_cell(strata: &Strata, cell_px: u32) -> impl FnMut(&AmTuple) -> Vec<AmTuple> + Clone {
    let strata = strata.clone();
    let mut cached: Option<Thresholds> = None;
    move |tuple: &AmTuple| {
        let thresholds =
            *cached.get_or_insert_with(|| load_thresholds(&strata).expect("thresholds seeded"));
        let Some(image) = tuple.payload().image("image") else {
            return Vec::new();
        };
        let origin_x = tuple.payload().int("origin_x_px").unwrap_or(0) as f64;
        let origin_y = tuple.payload().int("origin_y_px").unwrap_or(0) as f64;
        let mm_per_px = tuple.payload().float("mm_per_px").unwrap_or(0.125);
        let cell = cell_px.max(1);
        let cols = image.width().div_ceil(cell);
        let rows = image.height().div_ceil(cell);
        let mut out = Vec::with_capacity((cols * rows) as usize);
        for row in 0..rows {
            for col in 0..cols {
                let x0 = col * cell;
                let y0 = row * cell;
                let x1 = (x0 + cell).min(image.width());
                let y1 = (y0 + cell).min(image.height());
                let mut sum = 0u64;
                let mut n_very_cold = 0u32;
                let mut n_cold = 0u32;
                let mut n_warm = 0u32;
                let mut n_very_warm = 0u32;
                for y in y0..y1 {
                    for x in x0..x1 {
                        let v = image.get(x, y) as f64;
                        sum += v as u64;
                        if v < thresholds.pixel_very_cold {
                            n_very_cold += 1;
                        }
                        if v < thresholds.pixel_cold {
                            n_cold += 1;
                        }
                        if v > thresholds.pixel_warm {
                            n_warm += 1;
                        }
                        if v > thresholds.pixel_very_warm {
                            n_very_warm += 1;
                        }
                    }
                }
                let count = ((x1 - x0) * (y1 - y0)).max(1) as f64;
                let center_x_mm = (origin_x + (x0 + x1) as f64 / 2.0) * mm_per_px;
                let center_y_mm = (origin_y + (y0 + y1) as f64 / 2.0) * mm_per_px;
                let mut cell_tuple = tuple.derive().with_portion(row * cols + col);
                cell_tuple
                    .payload_mut()
                    .set_float("mean", sum as f64 / count)
                    .set_float("frac_very_cold", n_very_cold as f64 / count)
                    .set_float("frac_cold", n_cold as f64 / count)
                    .set_float("frac_warm", n_warm as f64 / count)
                    .set_float("frac_very_warm", n_very_warm as f64 / count)
                    .set_float("x_mm", center_x_mm)
                    .set_float("y_mm", center_y_mm)
                    .set_float("cell_mm", cell as f64 * mm_per_px);
                out.push(cell_tuple);
            }
        }
        out
    }
}

/// The five thermal classes of the use-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellClass {
    /// Far too little thermal energy.
    VeryCold,
    /// Slightly too little thermal energy.
    Cold,
    /// Nominal.
    Regular,
    /// Slightly too much thermal energy.
    Warm,
    /// Far too much thermal energy.
    VeryWarm,
}

impl CellClass {
    /// The class name used in event payloads.
    pub fn as_str(&self) -> &'static str {
        match self {
            CellClass::VeryCold => "very_cold",
            CellClass::Cold => "cold",
            CellClass::Regular => "regular",
            CellClass::Warm => "warm",
            CellClass::VeryWarm => "very_warm",
        }
    }
}

/// Classifies one cell tuple from its fraction statistics.
pub fn classify_cell(tuple: &AmTuple, min_fraction: f64) -> CellClass {
    let frac = |key: &str| tuple.payload().float(key).unwrap_or(0.0);
    if frac("frac_very_cold") >= min_fraction {
        CellClass::VeryCold
    } else if frac("frac_very_warm") >= min_fraction {
        CellClass::VeryWarm
    } else if frac("frac_cold") >= min_fraction {
        CellClass::Cold
    } else if frac("frac_warm") >= min_fraction {
        CellClass::Warm
    } else {
        CellClass::Regular
    }
}

/// `labelCell()`: classifies each cell as very cold / cold / regular
/// / warm / very warm and forwards an event tuple **only** for the
/// two extreme classes (Algorithm 1, line 6).
pub fn label_cell(strata: &Strata) -> impl FnMut(&AmTuple) -> Option<Vec<AmTuple>> + Clone {
    let strata = strata.clone();
    let mut cached: Option<f64> = None;
    move |tuple: &AmTuple| {
        let min_fraction = *cached.get_or_insert_with(|| {
            load_thresholds(&strata)
                .expect("thresholds seeded")
                .cell_min_fraction
        });
        let class = classify_cell(tuple, min_fraction);
        if !matches!(class, CellClass::VeryCold | CellClass::VeryWarm) {
            return None;
        }
        let severity = match class {
            CellClass::VeryCold => tuple.payload().float("frac_very_cold").unwrap_or(0.0),
            _ => tuple.payload().float("frac_very_warm").unwrap_or(0.0),
        };
        let mut event = tuple.derive();
        event
            .payload_mut()
            .set_str("class", class.as_str())
            .set_float("severity", severity)
            .set_float("x_mm", tuple.payload().float("x_mm").unwrap_or(0.0))
            .set_float("y_mm", tuple.payload().float("y_mm").unwrap_or(0.0))
            .set_float("cell_mm", tuple.payload().float("cell_mm").unwrap_or(0.0));
        Some(vec![event])
    }
}

/// Configuration of the DBSCAN correlator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatorOptions {
    /// ε in mm; pick ≥ 1.5 × the cell edge so adjacent event cells
    /// (diagonals included) connect.
    pub eps_mm: f64,
    /// DBSCAN core-point threshold.
    pub min_pts: usize,
    /// Only report clusters with at least this many member events
    /// (the "bigger than a certain volume" filter).
    pub min_cluster_size: usize,
    /// Layer thickness in mm (z pitch of the 3-D point cloud).
    pub layer_pitch_mm: f64,
    /// Render a cluster image into the summary tuple (Figure 4).
    pub render_image: bool,
}

impl CorrelatorOptions {
    /// Sensible defaults for a given cell edge length in mm.
    pub fn for_cell_mm(cell_mm: f64) -> Self {
        CorrelatorOptions {
            eps_mm: (1.6 * cell_mm).max(0.5),
            min_pts: 3,
            min_cluster_size: 4,
            layer_pitch_mm: 0.04,
            render_image: false,
        }
    }
}

/// `DBSCAN()`: the `correlateEvents` function — clusters the window's
/// events (current layer + previous `L` layers) in 3-D and emits one
/// tuple per cluster above the volume threshold, plus a per-window
/// summary tuple (optionally carrying a rendered cluster image).
pub fn dbscan_correlator(
    options: CorrelatorOptions,
) -> impl for<'a> FnMut(&CorrelationWindow<'a>) -> Vec<AmTuple> + Send {
    move |window: &CorrelationWindow<'_>| {
        let params = DbscanParams::new(options.eps_mm, options.min_pts)
            .expect("validated CorrelatorOptions");
        let points: Vec<Point> = window
            .events
            .iter()
            .map(|e| {
                Point::new(
                    e.payload().float("x_mm").unwrap_or(0.0),
                    e.payload().float("y_mm").unwrap_or(0.0),
                    e.metadata().layer as f64 * options.layer_pitch_mm,
                )
            })
            .collect();
        let labels = dbscan(&points, &params);

        // Collect members per cluster.
        let mut members: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (idx, label) in labels.iter().enumerate() {
            if let Some(cluster) = label.cluster() {
                members.entry(cluster).or_default().push(idx);
            }
        }
        members.retain(|_, m| m.len() >= options.min_cluster_size);

        let template = window
            .events
            .first()
            .map(|e| e.derive())
            .unwrap_or_default_tuple(window);
        let mut out = Vec::with_capacity(members.len() + 1);
        for (cluster_id, idxs) in &members {
            let mut min = points[idxs[0]];
            let mut max = points[idxs[0]];
            let mut sum = (0.0, 0.0, 0.0);
            let mut hot = 0usize;
            for &i in idxs {
                let p = points[i];
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                min.z = min.z.min(p.z);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
                max.z = max.z.max(p.z);
                sum.0 += p.x;
                sum.1 += p.y;
                sum.2 += p.z;
                if window.events[i].payload().str("class") == Some("very_warm") {
                    hot += 1;
                }
            }
            let n = idxs.len() as f64;
            let mut t = template.clone();
            t.payload_mut()
                .set_str("report", "cluster")
                .set_int("cluster_id", *cluster_id as i64)
                .set_int("size", idxs.len() as i64)
                .set_int("hot_members", hot as i64)
                .set_float("centroid_x_mm", sum.0 / n)
                .set_float("centroid_y_mm", sum.1 / n)
                .set_float("centroid_z_mm", sum.2 / n)
                .set_float("bbox_min_x_mm", min.x)
                .set_float("bbox_min_y_mm", min.y)
                .set_float("bbox_max_x_mm", max.x)
                .set_float("bbox_max_y_mm", max.y)
                .set_float("depth_mm", max.z - min.z);
            out.push(t);
        }

        // Per-window summary.
        let mut summary = template.clone();
        summary
            .payload_mut()
            .set_str("report", "summary")
            .set_int("cluster_count", members.len() as i64)
            .set_int("event_count", window.events.len() as i64)
            .set_int("window_layer", window.layer as i64);
        if options.render_image {
            summary.payload_mut().set_image(
                "clusters_image",
                Arc::new(render_clusters(&points, &labels, &members)),
            );
        }
        out.push(summary);
        out
    }
}

/// A `correlateEvents` function with **stable cluster identities**:
/// like [`dbscan_correlator`], but clusters keep their id from layer
/// to layer (matched by bounding-box overlap through
/// [`strata_cluster::LayeredClusterer`]), so the expert can watch
/// defect *n* grow instead of re-identifying clusters per window.
///
/// Emits one tuple per reported cluster with the same payload schema
/// as [`dbscan_correlator`] plus a persistent `"tracked_id"`.
///
/// `depth_l` must equal the `L` passed to `correlateEvents` so the
/// tracker's sliding window matches the correlation window.
pub fn tracked_correlator(
    options: CorrelatorOptions,
    depth_l: u32,
) -> impl for<'a> FnMut(&CorrelationWindow<'a>) -> Vec<AmTuple> + Send {
    use strata_cluster::{LayeredClusterer, LayeredParams};
    // One clusterer per (job, specimen) group, created on first use.
    let mut clusterers: std::collections::HashMap<(u32, u32), LayeredClusterer> =
        std::collections::HashMap::new();
    move |window: &CorrelationWindow<'_>| {
        let clusterer = clusterers
            .entry((window.job, window.specimen))
            .or_insert_with(|| {
                let params = LayeredParams::new(
                    // The correlate window spans the current layer plus
                    // L previous ones.
                    depth_l as usize + 1,
                    DbscanParams::new(options.eps_mm, options.min_pts)
                        .expect("validated CorrelatorOptions"),
                    options.layer_pitch_mm,
                )
                .expect("validated CorrelatorOptions")
                .min_cluster_size(options.min_cluster_size);
                LayeredClusterer::new(params)
            });
        // Only the window's newest layer is new to the tracker.
        let new_events: Vec<(f64, f64)> = window
            .events
            .iter()
            .filter(|e| e.metadata().layer == window.layer)
            .map(|e| {
                (
                    e.payload().float("x_mm").unwrap_or(0.0),
                    e.payload().float("y_mm").unwrap_or(0.0),
                )
            })
            .collect();
        let summaries = clusterer.push_layer(window.layer, new_events);

        let template = window
            .events
            .first()
            .map(|e| e.derive())
            .unwrap_or_default_tuple(window);
        let mut out = Vec::with_capacity(summaries.len() + 1);
        for s in &summaries {
            let mut t = template.clone();
            t.payload_mut()
                .set_str("report", "cluster")
                .set_int("tracked_id", s.id as i64)
                .set_int("cluster_id", s.id as i64)
                .set_int("size", s.size as i64)
                .set_float("centroid_x_mm", s.centroid.x)
                .set_float("centroid_y_mm", s.centroid.y)
                .set_float("centroid_z_mm", s.centroid.z)
                .set_float("bbox_min_x_mm", s.min.x)
                .set_float("bbox_min_y_mm", s.min.y)
                .set_float("bbox_max_x_mm", s.max.x)
                .set_float("bbox_max_y_mm", s.max.y)
                .set_float("depth_mm", s.max.z - s.min.z);
            out.push(t);
        }
        let mut summary = template;
        summary
            .payload_mut()
            .set_str("report", "summary")
            .set_int("cluster_count", summaries.len() as i64)
            .set_int("event_count", window.events.len() as i64)
            .set_int("window_layer", window.layer as i64);
        out.push(summary);
        out
    }
}

/// Renders the window's events with their cluster assignment into a
/// gray-scale image (8 px/mm): noise dim, each cluster in its own
/// gray band — the inspection artifact of Figure 4.
fn render_clusters(
    points: &[Point],
    labels: &[strata_cluster::Label],
    members: &std::collections::BTreeMap<u32, Vec<usize>>,
) -> OtImage {
    const PX_PER_MM: f64 = 8.0;
    if points.is_empty() {
        return OtImage::new(1, 1);
    }
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let margin = 1.0;
    let width = (((max_x - min_x) + 2.0 * margin) * PX_PER_MM)
        .ceil()
        .max(1.0) as u32;
    let height = (((max_y - min_y) + 2.0 * margin) * PX_PER_MM)
        .ceil()
        .max(1.0) as u32;
    let mut image = OtImage::new(width.min(4000), height.min(4000));
    for (i, p) in points.iter().enumerate() {
        let x = (((p.x - min_x) + margin) * PX_PER_MM) as u32;
        let y = (((p.y - min_y) + margin) * PX_PER_MM) as u32;
        if x >= image.width() || y >= image.height() {
            continue;
        }
        let value = match labels[i].cluster() {
            Some(id) if members.contains_key(&id) => 80 + ((id * 37) % 176) as u8,
            _ => 30, // noise or sub-threshold cluster
        };
        image.set(x, y, value.max(image.get(x, y)));
    }
    image
}

/// Fallback template construction for windows whose event list is
/// empty (cannot happen through the pipeline, which only evaluates
/// layers with events, but keeps the correlator total).
trait TemplateFallback {
    fn unwrap_or_default_tuple(self, window: &CorrelationWindow<'_>) -> AmTuple;
}

impl TemplateFallback for Option<AmTuple> {
    fn unwrap_or_default_tuple(self, window: &CorrelationWindow<'_>) -> AmTuple {
        self.unwrap_or_else(|| {
            AmTuple::new(strata_spe::Timestamp::MIN, window.job, window.layer)
                .with_specimen(window.specimen)
        })
    }
}

/// Options for [`deploy_pipeline`]: the full Algorithm-1 pipeline in
/// one call, as used by the examples and every figure benchmark.
#[derive(Debug, Clone)]
pub struct ThermalPipelineOptions {
    /// Cell edge in pixels (Figure 5 varies 40 → 2).
    pub cell_px: u32,
    /// `correlateEvents` depth `L` (Figure 6 varies 5 → 80).
    pub depth_l: u32,
    /// Layer range to process.
    pub layers: Range<u32>,
    /// Wall-clock pacing factor for the collectors (1.0 = live,
    /// 0.0 = as fast as possible).
    pub pace: f64,
    /// Parallel instances for the cell-splitting and labeling stages.
    pub parallelism: usize,
    /// Render cluster images into the summary tuples.
    pub render_images: bool,
    /// When set, bypass the live collectors and replay pre-fused
    /// layer tuples at this offered rate (images/s; 0 = as fast as
    /// possible) — the Figure 7 workload.
    pub offered_rate: Option<f64>,
    /// Use [`tracked_correlator`] instead of [`dbscan_correlator`]:
    /// cluster reports keep a persistent `"tracked_id"` across
    /// layers, at the cost of no rendered cluster image.
    pub stable_ids: bool,
}

impl Default for ThermalPipelineOptions {
    fn default() -> Self {
        ThermalPipelineOptions {
            cell_px: 20,
            depth_l: 20,
            layers: 0..50,
            pace: 0.0,
            parallelism: 1,
            render_images: false,
            offered_rate: None,
            stable_ids: false,
        }
    }
}

/// Builds and deploys the complete use-case pipeline (Algorithm 1)
/// against a simulated machine, returning the deployed pipeline and
/// the expert's report channel.
///
/// # Errors
///
/// Pipeline composition or storage failures.
pub fn deploy_pipeline(
    strata: &Strata,
    machine: Arc<PbfLbMachine>,
    options: ThermalPipelineOptions,
) -> Result<(DeployedPipeline, Receiver<ExpertReport>)> {
    // Thresholds "from historical jobs".
    seed_thresholds(strata, reference_thresholds(&ThermalModel::default()))?;

    let plate_mm = machine.plan().plate_mm();
    let mut pipeline = strata.pipeline("thermal");
    let fused = match options.offered_rate {
        None => {
            // Alg. 1 lines 1–3.
            let pp = pipeline.add_source(
                "pp",
                PrintingParameterCollector::new(Arc::clone(&machine))
                    .layers(options.layers.clone())
                    .paced(options.pace),
            );
            let ot = pipeline.add_source(
                "OT",
                OtImageCollector::new(Arc::clone(&machine))
                    .layers(options.layers.clone())
                    .paced(options.pace),
            );
            pipeline.fuse("OT&pp", &ot, &pp)
        }
        Some(rate) => {
            // Figure 7 workload: pre-fused tuples at an offered rate.
            let tuples: Vec<AmTuple> = options
                .layers
                .clone()
                .map(|layer| {
                    let mut t = OtImageCollector::layer_tuple(&machine, layer);
                    t.payload_mut()
                        .merge(PrintingParameterCollector::layer_tuple(&machine, layer).payload());
                    t
                })
                .collect();
            pipeline.add_source(
                "replay",
                OfferedRateSource::new(tuples, rate, machine.recoat_ms()),
            )
        }
    };

    // Alg. 1 lines 4–6.
    let spec = pipeline.partition("spec", &fused, isolate_specimen(plate_mm));
    let cells = if options.parallelism > 1 {
        pipeline.partition_parallel(
            "cell",
            &spec,
            options.parallelism,
            isolate_cell(strata, options.cell_px),
        )
    } else {
        pipeline.partition("cell", &spec, isolate_cell(strata, options.cell_px))
    };
    let events = if options.parallelism > 1 {
        pipeline.detect_event_parallel("cellLabel", &cells, options.parallelism, label_cell(strata))
    } else {
        pipeline.detect_event("cellLabel", &cells, label_cell(strata))
    };

    // Alg. 1 line 7. Recover mm/px from the machine's layout to size ε.
    let mm_per_px = {
        let params = machine.printing_parameters(0);
        let widest = params
            .specimen_px
            .iter()
            .map(|&(_, _, _, w, _)| w)
            .max()
            .unwrap_or(1);
        let specimen_w_mm = machine.plan().specimens()[0].rect.w;
        specimen_w_mm / widest as f64
    };
    let cell_mm = options.cell_px as f64 * mm_per_px;
    let mut correlator_options = CorrelatorOptions::for_cell_mm(cell_mm);
    correlator_options.layer_pitch_mm = machine.plan().layer_thickness_mm();
    correlator_options.render_image = options.render_images;
    let out = if options.stable_ids {
        pipeline.correlate_events(
            "out",
            &events,
            options.depth_l,
            tracked_correlator(correlator_options, options.depth_l),
        )
    } else {
        pipeline.correlate_events(
            "out",
            &events,
            options.depth_l,
            dbscan_correlator(correlator_options),
        )
    };
    let reports = pipeline.deliver("expert", &out);
    let deployed = pipeline.deploy()?;
    Ok((deployed, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrataConfig;
    use strata_spe::{Timestamp, Timestamped};

    fn strata_with_thresholds() -> Strata {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        seed_thresholds(&strata, reference_thresholds(&ThermalModel::default())).unwrap();
        strata
    }

    fn fused_tuple(image: OtImage, rects: Vec<(u32, u32, u32, u32, u32)>) -> AmTuple {
        let mut t = AmTuple::new(Timestamp::from_millis(100), 1, 0);
        t.payload_mut()
            .set_image("image", Arc::new(image))
            .set_rects("specimen_px", Arc::new(rects));
        t
    }

    #[test]
    fn thresholds_round_trip_through_the_store() {
        let strata = strata_with_thresholds();
        let loaded = load_thresholds(&strata).unwrap();
        assert_eq!(loaded, reference_thresholds(&ThermalModel::default()));
    }

    #[test]
    fn load_thresholds_requires_seeding() {
        let strata = Strata::new(StrataConfig::default()).unwrap();
        assert!(matches!(
            load_thresholds(&strata),
            Err(Error::InvalidPipeline(_))
        ));
    }

    #[test]
    fn isolate_specimen_crops_and_tags() {
        let image = OtImage::from_fn(100, 100, |x, _| if x < 50 { 10 } else { 200 });
        let tuple = fused_tuple(image, vec![(0, 0, 0, 50, 100), (1, 50, 0, 50, 100)]);
        let mut f = isolate_specimen(250.0);
        let out = f(&tuple);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].metadata().specimen, Some(0));
        assert_eq!(out[1].metadata().specimen, Some(1));
        let img0 = out[0].payload().image("image").unwrap();
        assert_eq!(img0.width(), 50);
        assert_eq!(img0.get(0, 0), 10);
        let img1 = out[1].payload().image("image").unwrap();
        assert_eq!(img1.get(0, 0), 200);
        assert_eq!(out[1].payload().int("origin_x_px"), Some(50));
    }

    #[test]
    fn isolate_cell_computes_fractions() {
        let strata = strata_with_thresholds();
        let thresholds = load_thresholds(&strata).unwrap();
        // A 4×4 specimen image: left half very cold, right half normal.
        let cold = (thresholds.pixel_very_cold - 10.0) as u8;
        let normal = 140u8;
        let image = OtImage::from_fn(4, 4, |x, _| if x < 2 { cold } else { normal });
        let mut spec_tuple = AmTuple::new(Timestamp::from_millis(1), 1, 0).with_specimen(0);
        spec_tuple
            .payload_mut()
            .set_image("image", Arc::new(image))
            .set_int("origin_x_px", 0)
            .set_int("origin_y_px", 0)
            .set_float("mm_per_px", 0.125);
        let mut f = isolate_cell(&strata, 2);
        let out = f(&spec_tuple);
        assert_eq!(out.len(), 4, "4×4 image in 2×2 cells");
        // Left cells fully very-cold, right cells clean.
        assert_eq!(out[0].payload().float("frac_very_cold"), Some(1.0));
        assert_eq!(out[1].payload().float("frac_very_cold"), Some(0.0));
        assert_eq!(out[0].metadata().portion, Some(0));
        assert!(out[0].payload().float("x_mm").unwrap() < out[1].payload().float("x_mm").unwrap());
    }

    #[test]
    fn classify_and_label_cells() {
        let strata = strata_with_thresholds();
        let mut cell = AmTuple::new(Timestamp::from_millis(1), 1, 0)
            .with_specimen(0)
            .with_portion(7);
        cell.payload_mut()
            .set_float("frac_very_cold", 0.5)
            .set_float("frac_cold", 0.6)
            .set_float("frac_warm", 0.0)
            .set_float("frac_very_warm", 0.0)
            .set_float("x_mm", 1.0)
            .set_float("y_mm", 2.0)
            .set_float("cell_mm", 0.25);
        assert_eq!(classify_cell(&cell, 0.1), CellClass::VeryCold);
        let mut f = label_cell(&strata);
        let events = f(&cell).expect("very cold cell is an event");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].payload().str("class"), Some("very_cold"));
        assert_eq!(events[0].metadata().portion, Some(7));

        // A merely cold cell is classified but NOT forwarded.
        cell.payload_mut()
            .set_float("frac_very_cold", 0.0)
            .set_float("frac_cold", 0.5);
        assert_eq!(classify_cell(&cell, 0.1), CellClass::Cold);
        assert!(f(&cell).is_none());

        // Regular cell.
        cell.payload_mut().set_float("frac_cold", 0.0);
        assert_eq!(classify_cell(&cell, 0.1), CellClass::Regular);
    }

    #[test]
    fn correlator_reports_clusters_above_threshold() {
        let mut events = Vec::new();
        // A 3×3 patch of very-warm events 0.25 mm apart + one stray.
        for i in 0..3 {
            for j in 0..3 {
                let mut e = AmTuple::new(Timestamp::from_millis(100), 1, 5).with_specimen(2);
                e.payload_mut()
                    .set_str("class", "very_warm")
                    .set_float("x_mm", 10.0 + i as f64 * 0.25)
                    .set_float("y_mm", 20.0 + j as f64 * 0.25);
                events.push(e);
            }
        }
        let mut stray = AmTuple::new(Timestamp::from_millis(100), 1, 5).with_specimen(2);
        stray
            .payload_mut()
            .set_str("class", "very_cold")
            .set_float("x_mm", 0.0)
            .set_float("y_mm", 0.0);
        events.push(stray);

        let window = CorrelationWindow {
            job: 1,
            specimen: 2,
            layer: 5,
            events: events.iter().collect(),
        };
        let mut f = dbscan_correlator(CorrelatorOptions {
            eps_mm: 0.4,
            min_pts: 3,
            min_cluster_size: 5,
            layer_pitch_mm: 0.04,
            render_image: true,
        });
        let out = f(&window);
        // One cluster report + one summary.
        assert_eq!(out.len(), 2);
        let cluster = &out[0];
        assert_eq!(cluster.payload().str("report"), Some("cluster"));
        assert_eq!(cluster.payload().int("size"), Some(9));
        assert_eq!(cluster.payload().int("hot_members"), Some(9));
        assert!((cluster.payload().float("centroid_x_mm").unwrap() - 10.25).abs() < 1e-9);
        let summary = &out[1];
        assert_eq!(summary.payload().str("report"), Some("summary"));
        assert_eq!(summary.payload().int("cluster_count"), Some(1));
        assert_eq!(summary.payload().int("event_count"), Some(10));
        assert!(summary.payload().image("clusters_image").is_some());
    }

    #[test]
    fn correlator_spans_layers() {
        // Two events per layer over 4 layers at the same (x, y):
        // a single vertical cluster.
        let mut events = Vec::new();
        for layer in 0..4u32 {
            for dx in [0.0, 0.25] {
                let mut e = AmTuple::new(Timestamp::from_millis(layer as u64 * 100), 1, layer)
                    .with_specimen(0);
                e.payload_mut()
                    .set_str("class", "very_cold")
                    .set_float("x_mm", 5.0 + dx)
                    .set_float("y_mm", 5.0);
                events.push(e);
            }
        }
        let window = CorrelationWindow {
            job: 1,
            specimen: 0,
            layer: 3,
            events: events.iter().collect(),
        };
        let mut f = dbscan_correlator(CorrelatorOptions {
            eps_mm: 0.4,
            min_pts: 3,
            min_cluster_size: 6,
            layer_pitch_mm: 0.04,
            render_image: false,
        });
        let out = f(&window);
        assert_eq!(out.len(), 2, "one cluster + summary");
        assert_eq!(out[0].payload().int("size"), Some(8));
        let depth = out[0].payload().float("depth_mm").unwrap();
        assert!((depth - 0.12).abs() < 1e-9, "3 layer gaps × 40 µm");
    }

    #[test]
    fn tracked_correlator_keeps_cluster_identity() {
        let options = CorrelatorOptions {
            eps_mm: 0.4,
            min_pts: 3,
            min_cluster_size: 5,
            layer_pitch_mm: 0.04,
            render_image: false,
        };
        let mut f = tracked_correlator(options, 10);
        let make_window = |layer: u32, events: &mut Vec<AmTuple>| {
            // A persistent 3×3 patch on every layer up to `layer`.
            for i in 0..3 {
                for j in 0..3 {
                    let mut e = AmTuple::new(Timestamp::from_millis(layer as u64 * 100), 1, layer)
                        .with_specimen(0);
                    e.payload_mut()
                        .set_str("class", "very_warm")
                        .set_float("x_mm", 5.0 + i as f64 * 0.25)
                        .set_float("y_mm", 5.0 + j as f64 * 0.25);
                    events.push(e);
                }
            }
        };
        let mut all_events = Vec::new();
        let mut ids = Vec::new();
        for layer in 0..4u32 {
            make_window(layer, &mut all_events);
            let window = CorrelationWindow {
                job: 1,
                specimen: 0,
                layer,
                events: all_events.iter().collect(),
            };
            let out = f(&window);
            let cluster = out
                .iter()
                .find(|t| t.payload().str("report") == Some("cluster"));
            if let Some(c) = cluster {
                ids.push(c.payload().int("tracked_id").unwrap());
                // Size grows by 9 per layer.
                assert_eq!(
                    c.payload().int("size"),
                    Some(9 * (layer as i64 + 1)),
                    "layer {layer}"
                );
            }
        }
        assert!(ids.len() >= 3, "cluster reported on most layers");
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "identity must be stable: {ids:?}"
        );
    }

    #[test]
    fn end_to_end_pipeline_detects_seeded_defects() {
        use strata_amsim::{MachineConfig, PbfLbMachine};
        let machine = Arc::new(
            PbfLbMachine::new(
                MachineConfig::paper_build(9)
                    .image_px(400)
                    .timing(40, 5)
                    .defect_rate(2.0),
            )
            .unwrap(),
        );
        let strata = Strata::new(StrataConfig::default()).unwrap();
        let (deployed, reports) = deploy_pipeline(
            &strata,
            Arc::clone(&machine),
            ThermalPipelineOptions {
                cell_px: 4,
                depth_l: 10,
                layers: 0..8,
                ..ThermalPipelineOptions::default()
            },
        )
        .unwrap();
        let mut summaries = 0;
        let mut clusters = 0;
        while let Ok(report) = reports.recv_timeout(std::time::Duration::from_secs(30)) {
            assert!(report.tuple.timestamp() > Timestamp::MIN);
            match report.tuple.payload().str("report") {
                Some("summary") => summaries += 1,
                Some("cluster") => clusters += 1,
                other => panic!("unexpected report kind {other:?}"),
            }
            if summaries >= 8 {
                break;
            }
        }
        deployed.shutdown().unwrap();
        assert!(summaries > 0, "windows were evaluated");
        assert!(
            clusters > 0,
            "a defect-rate-2.0 build must produce reportable clusters"
        );
    }
}
