//! The expert's side of the loop: turning pipeline reports into
//! process decisions.
//!
//! The paper's introduction frames the goal as *timely decisions*: "a
//! printing process showing signs of defects is re-configured or
//! terminated as soon as possible", with the expert (or "the
//! scripts/tools (s)he uses") deciding whether to **continue,
//! re-adjust, or terminate** an ongoing process — "eventually
//! enabling feedback loop control" (§1, §3).
//!
//! This module provides that script layer: a declarative
//! [`DecisionPolicy`] evaluated over the stream of
//! [`ExpertReport`]s, producing [`Decision`]s an automation hook can
//! act on. It is intentionally independent of the pipeline machinery:
//! policies consume the same channel a human dashboard would.

use std::collections::HashMap;
use std::time::Duration;

use crate::report::ExpertReport;

/// What the expert decides after seeing a report (§3, Figure 1B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Everything nominal: keep printing.
    Continue,
    /// Quality is degrading: adjust process parameters (the hook
    /// receives which rule fired).
    Adjust,
    /// Defects exceed tolerances: abort the job to save material,
    /// energy and machine time.
    Terminate,
}

/// One observed rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: String,
    /// The layer whose report triggered it.
    pub layer: u32,
    /// The specimen involved, when applicable.
    pub specimen: Option<u32>,
    /// What the rule decided.
    pub decision: Decision,
}

/// A declarative decision policy over the use-case's cluster
/// reports, built in builder style:
///
/// ```
/// use strata::expert::DecisionPolicy;
/// use std::time::Duration;
/// let policy = DecisionPolicy::new()
///     .adjust_on_cluster_size(50)
///     .terminate_on_cluster_size(400)
///     .terminate_on_cluster_depth_mm(1.0)
///     .terminate_on_qos_misses(3);
/// # let _ = policy;
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecisionPolicy {
    adjust_cluster_size: Option<i64>,
    terminate_cluster_size: Option<i64>,
    terminate_cluster_depth_mm: Option<f64>,
    terminate_qos_misses: Option<u32>,
    adjust_latency: Option<Duration>,
}

impl DecisionPolicy {
    /// A policy with no rules (always [`Decision::Continue`]).
    pub fn new() -> Self {
        DecisionPolicy::default()
    }

    /// Request a parameter adjustment when any cluster reaches
    /// `cells` members.
    pub fn adjust_on_cluster_size(mut self, cells: i64) -> Self {
        self.adjust_cluster_size = Some(cells);
        self
    }

    /// Terminate when any cluster reaches `cells` members.
    pub fn terminate_on_cluster_size(mut self, cells: i64) -> Self {
        self.terminate_cluster_size = Some(cells);
        self
    }

    /// Terminate when a defect cluster spans at least `mm` of build
    /// height (it survived that much re-melting: a structural flaw).
    pub fn terminate_on_cluster_depth_mm(mut self, mm: f64) -> Self {
        self.terminate_cluster_depth_mm = Some(mm);
        self
    }

    /// Terminate after `misses` reports violated the QoS deadline —
    /// the monitoring itself can no longer keep up with the machine.
    pub fn terminate_on_qos_misses(mut self, misses: u32) -> Self {
        self.terminate_qos_misses = Some(misses);
        self
    }

    /// Request adjustment when a report's latency exceeds `limit`
    /// (early warning before hard QoS misses accumulate).
    pub fn adjust_on_latency(mut self, limit: Duration) -> Self {
        self.adjust_latency = Some(limit);
        self
    }

    /// Binds the policy to mutable evaluation state.
    pub fn into_monitor(self) -> DecisionMonitor {
        DecisionMonitor {
            policy: self,
            qos_misses: 0,
            violations: Vec::new(),
            peak_cluster_size: HashMap::new(),
        }
    }
}

/// Evaluates a [`DecisionPolicy`] over a report stream, keeping the
/// running state (QoS miss count, per-cluster peaks, violations).
#[derive(Debug)]
pub struct DecisionMonitor {
    policy: DecisionPolicy,
    qos_misses: u32,
    violations: Vec<Violation>,
    /// (specimen, cluster id) → largest size seen.
    peak_cluster_size: HashMap<(u32, i64), i64>,
}

impl DecisionMonitor {
    /// Feeds one report; returns the decision it warrants. Decisions
    /// never downgrade within one call: `Terminate` wins over
    /// `Adjust` wins over `Continue`.
    pub fn observe(&mut self, report: &ExpertReport) -> Decision {
        let mut decision = Decision::Continue;
        let raise = |d: Decision,
                     rule: String,
                     layer: u32,
                     specimen: Option<u32>,
                     violations: &mut Vec<Violation>| {
            violations.push(Violation {
                rule,
                layer,
                specimen,
                decision: d,
            });
        };
        let meta = report.tuple.metadata();

        if !report.qos_met {
            self.qos_misses += 1;
            if let Some(limit) = self.policy.terminate_qos_misses {
                if self.qos_misses >= limit {
                    raise(
                        Decision::Terminate,
                        format!("qos_misses≥{limit}"),
                        meta.layer,
                        meta.specimen,
                        &mut self.violations,
                    );
                    decision = Decision::Terminate;
                }
            }
        }
        if let Some(limit) = self.policy.adjust_latency {
            if report.latency > limit && decision == Decision::Continue {
                raise(
                    Decision::Adjust,
                    format!("latency>{limit:?}"),
                    meta.layer,
                    meta.specimen,
                    &mut self.violations,
                );
                decision = Decision::Adjust;
            }
        }

        if report.tuple.payload().str("report") == Some("cluster") {
            let size = report.tuple.payload().int("size").unwrap_or(0);
            let cluster_id = report.tuple.payload().int("cluster_id").unwrap_or(-1);
            let specimen = meta.specimen.unwrap_or(0);
            let peak = self
                .peak_cluster_size
                .entry((specimen, cluster_id))
                .or_insert(0);
            *peak = (*peak).max(size);

            if let Some(limit) = self.policy.terminate_cluster_size {
                if size >= limit {
                    raise(
                        Decision::Terminate,
                        format!("cluster_size≥{limit}"),
                        meta.layer,
                        meta.specimen,
                        &mut self.violations,
                    );
                    decision = Decision::Terminate;
                }
            }
            if let Some(limit) = self.policy.terminate_cluster_depth_mm {
                let depth = report.tuple.payload().float("depth_mm").unwrap_or(0.0);
                if depth >= limit {
                    raise(
                        Decision::Terminate,
                        format!("cluster_depth≥{limit}mm"),
                        meta.layer,
                        meta.specimen,
                        &mut self.violations,
                    );
                    decision = Decision::Terminate;
                }
            }
            if decision == Decision::Continue {
                if let Some(limit) = self.policy.adjust_cluster_size {
                    if size >= limit {
                        raise(
                            Decision::Adjust,
                            format!("cluster_size≥{limit}"),
                            meta.layer,
                            meta.specimen,
                            &mut self.violations,
                        );
                        decision = Decision::Adjust;
                    }
                }
            }
        }
        decision
    }

    /// QoS misses observed so far.
    pub fn qos_misses(&self) -> u32 {
        self.qos_misses
    }

    /// All rule violations observed so far, in order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Largest size ever seen for `(specimen, cluster)`.
    pub fn peak_cluster_size(&self, specimen: u32, cluster_id: i64) -> Option<i64> {
        self.peak_cluster_size.get(&(specimen, cluster_id)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::AmTuple;
    use strata_spe::Timestamp;

    fn cluster_report(layer: u32, specimen: u32, size: i64, depth_mm: f64) -> ExpertReport {
        let mut t =
            AmTuple::new(Timestamp::from_millis(layer as u64), 1, layer).with_specimen(specimen);
        t.payload_mut()
            .set_str("report", "cluster")
            .set_int("cluster_id", 0)
            .set_int("size", size)
            .set_float("depth_mm", depth_mm);
        ExpertReport {
            tuple: t,
            latency: Duration::from_millis(10),
            qos_met: true,
        }
    }

    #[test]
    fn empty_policy_always_continues() {
        let mut m = DecisionPolicy::new().into_monitor();
        assert_eq!(
            m.observe(&cluster_report(0, 0, 10_000, 50.0)),
            Decision::Continue
        );
        assert!(m.violations().is_empty());
    }

    #[test]
    fn size_thresholds_escalate() {
        let mut m = DecisionPolicy::new()
            .adjust_on_cluster_size(50)
            .terminate_on_cluster_size(200)
            .into_monitor();
        assert_eq!(
            m.observe(&cluster_report(1, 0, 10, 0.1)),
            Decision::Continue
        );
        assert_eq!(m.observe(&cluster_report(2, 0, 60, 0.1)), Decision::Adjust);
        assert_eq!(
            m.observe(&cluster_report(3, 0, 250, 0.1)),
            Decision::Terminate
        );
        assert_eq!(m.violations().len(), 2);
        assert_eq!(m.peak_cluster_size(0, 0), Some(250));
    }

    #[test]
    fn depth_rule_terminates() {
        let mut m = DecisionPolicy::new()
            .terminate_on_cluster_depth_mm(1.0)
            .into_monitor();
        assert_eq!(
            m.observe(&cluster_report(5, 2, 10, 0.4)),
            Decision::Continue
        );
        assert_eq!(
            m.observe(&cluster_report(6, 2, 10, 1.2)),
            Decision::Terminate
        );
        assert_eq!(m.violations()[0].specimen, Some(2));
    }

    #[test]
    fn qos_misses_accumulate_to_termination() {
        let mut m = DecisionPolicy::new()
            .terminate_on_qos_misses(2)
            .into_monitor();
        let mut miss = cluster_report(1, 0, 1, 0.0);
        miss.qos_met = false;
        assert_eq!(m.observe(&miss), Decision::Continue);
        assert_eq!(m.qos_misses(), 1);
        assert_eq!(m.observe(&miss), Decision::Terminate);
    }

    #[test]
    fn latency_rule_requests_adjustment() {
        let mut m = DecisionPolicy::new()
            .adjust_on_latency(Duration::from_millis(100))
            .into_monitor();
        let mut slow = cluster_report(1, 0, 1, 0.0);
        slow.latency = Duration::from_millis(500);
        assert_eq!(m.observe(&slow), Decision::Adjust);
    }

    #[test]
    fn summaries_do_not_trip_cluster_rules() {
        let mut m = DecisionPolicy::new()
            .terminate_on_cluster_size(1)
            .into_monitor();
        let mut t = AmTuple::new(Timestamp::MIN, 1, 0);
        t.payload_mut()
            .set_str("report", "summary")
            .set_int("size", 999);
        let report = ExpertReport {
            tuple: t,
            latency: Duration::from_millis(1),
            qos_met: true,
        };
        assert_eq!(m.observe(&report), Decision::Continue);
    }
}
