//! `strata` — a framework for scalable, low-latency, data-driven
//! monitoring of additive-manufacturing (PBF-LB) processes.
//!
//! This crate reproduces the STRATA framework of *Towards
//! Data-Driven Additive Manufacturing Processes* (Middleware '22
//! Industrial Track). STRATA lets an AM expert submit **custom data
//! pipelines** alongside a printing job: the pipelines retrieve live
//! data from the PBF-LB machine, analyze it on the fly, and report
//! results with sub-second latency so the expert can continue,
//! re-adjust, or terminate the process before the next layer starts.
//!
//! # Architecture (paper §4, Figure 2)
//!
//! ```text
//!  PBF-LB machine
//!      │ raw data (OT images, printing parameters)
//!  ┌───▼──────────────┐   addSource
//!  │ Raw Data         │──────────────┐
//!  │ Collector        │              │ publishes
//!  └──────────────────┘   ┌──────────▼─────────┐
//!                         │ Raw Data Connector │  (pub/sub topic)
//!                         └──────────┬─────────┘
//!  ┌──────────────────┐   subscribes │
//!  │ Event Monitor    │◄─────────────┘
//!  │ fuse · partition │
//!  │ · detectEvent    │──────────────┐
//!  └──────────────────┘   ┌──────────▼─────────┐
//!                         │ Event Connector    │  (pub/sub topic)
//!                         └──────────┬─────────┘
//!  ┌──────────────────┐              │
//!  │ Event Aggregator │◄─────────────┘
//!  │ correlateEvents  │───► expert (reports, QoS-checked latency)
//!  └──────────────────┘
//!        ▲ │
//!        │ ▼
//!  ┌──────────────────┐
//!  │ Key-Value Store  │  store(k,v) / get(k) — reachable from every module
//!  └──────────────────┘
//! ```
//!
//! Each module runs as its own stream-processing query
//! ([`strata-spe`](strata_spe)); the connectors are topics of an
//! in-process broker ([`strata-pubsub`](strata_pubsub)); the
//! key-value store is an LSM tree ([`strata-kv`](strata_kv)). Every
//! API method of Table 1 compiles to compositions of *native*
//! operators (Map/FlatMap/Filter/Aggregate/Join), which is what makes
//! pipelines parallelizable and portable.
//!
//! # Quick start
//!
//! ```
//! use strata::{Strata, StrataConfig};
//! use strata_amsim::{MachineConfig, PbfLbMachine};
//! use std::sync::Arc;
//!
//! // A small simulated machine (the paper's geometry, fewer pixels).
//! let machine = Arc::new(PbfLbMachine::new(
//!     MachineConfig::paper_build(1).image_px(200).timing(50, 3),
//! )?);
//!
//! let strata = Strata::new(StrataConfig::default())?;
//! let mut pipeline = strata.pipeline("quick");
//! let ot = pipeline.add_source(
//!     "ot",
//!     strata::collector::OtImageCollector::new(Arc::clone(&machine))
//!         .layers(0..3)
//!         .paced(0.0),
//! );
//! // Count bright pixels per layer, report to the expert.
//! let events = pipeline.detect_event("bright", &ot, |tuple: &strata::AmTuple| {
//!     let image = tuple.payload().image("image")?;
//!     let bright = image.pixels().iter().filter(|&&p| p > 100).count() as i64;
//!     let mut out = tuple.derive();
//!     out.payload_mut().set_int("bright_pixels", bright);
//!     Some(vec![out])
//! });
//! let reports = pipeline.deliver("expert", &events);
//! let running = pipeline.deploy()?;
//! let mut seen = 0;
//! while let Ok(report) = reports.recv_timeout(std::time::Duration::from_secs(10)) {
//!     assert!(report.tuple.payload().int("bright_pixels").unwrap() > 0);
//!     seen += 1;
//!     if seen == 3 { break; }
//! }
//! running.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The complete use-case of the paper (Algorithm 1: OT thermal-energy
//! monitoring with DBSCAN clustering) ships in [`usecase::thermal`].

pub mod codec;
pub mod collector;
pub mod config;
pub mod connector;
pub mod dashboard;
pub mod error;
pub mod expert;
pub mod pipeline;
pub mod report;
pub mod strata;
pub mod tuple;
pub mod usecase;

pub use config::{ConnectorMode, StrataConfig};
pub use dashboard::Dashboard;
pub use error::{Error, Result};
pub use pipeline::{AmStream, DeployedPipeline, PipelineBuilder};
pub use report::{ExpertReport, LatencySummary};
pub use strata::Strata;
pub use tuple::{AmTuple, Metadata, Payload, Value};
