//! Framework configuration.

use std::path::PathBuf;
use std::time::Duration;

use strata_pubsub::RetentionPolicy;

/// How STRATA's modules exchange data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectorMode {
    /// The paper's architecture: modules run as separate queries
    /// bridged by pub/sub topics (the *Raw Data Connector* and
    /// *Event Connector*), which decouples their lifecycles and lets
    /// independent pipelines share the data.
    PubSub,
    /// All modules fused into one query with direct channels —
    /// the ablation baseline quantifying the connector overhead.
    Direct,
    /// Like [`PubSub`](ConnectorMode::PubSub), but the broker lives
    /// in another process: connector topics are reached over TCP
    /// through a `strata-net` broker server at `addr`. This is the
    /// deployment the paper actually ran — connectors in a shared
    /// Kafka cluster, modules on separate machines.
    Remote {
        /// Address of the broker server, e.g. `"10.0.0.5:9009"`.
        addr: String,
    },
}

/// Configuration of a [`Strata`](crate::Strata) instance, builder
/// style.
///
/// ```
/// use strata::{ConnectorMode, StrataConfig};
/// use std::time::Duration;
/// let config = StrataConfig::default()
///     .qos(Duration::from_secs(3))
///     .connector_mode(ConnectorMode::PubSub)
///     .channel_capacity(64);
/// ```
#[derive(Debug, Clone)]
pub struct StrataConfig {
    qos: Duration,
    connector_mode: ConnectorMode,
    channel_capacity: usize,
    raw_retention: RetentionPolicy,
    event_retention: RetentionPolicy,
    kv_dir: Option<PathBuf>,
    poll_timeout: Duration,
    batch_size: usize,
    batch_timeout: Duration,
}

impl Default for StrataConfig {
    fn default() -> Self {
        StrataConfig {
            // The paper's QoS threshold: the ~3 s recoat gap between
            // layers, within which a layer's result must be out.
            qos: Duration::from_secs(3),
            connector_mode: ConnectorMode::PubSub,
            channel_capacity: 64,
            // Raw topics carry whole OT images: bound them by bytes.
            raw_retention: RetentionPolicy::default().with_max_bytes(512 * 1024 * 1024),
            event_retention: RetentionPolicy::default().with_max_records(1_000_000),
            kv_dir: None,
            poll_timeout: Duration::from_millis(20),
            // One OT image row region per channel wakeup amortizes
            // channel synchronization ~10× (see BENCH_spe_batch.json)
            // while the flush deadline keeps per-layer latency far
            // below the 3 s QoS gap.
            batch_size: 64,
            batch_timeout: Duration::from_millis(5),
        }
    }
}

impl StrataConfig {
    /// Sets the latency QoS threshold reported per result (default:
    /// the 3 s recoat gap of the paper's machine).
    pub fn qos(mut self, qos: Duration) -> Self {
        self.qos = qos;
        self
    }

    /// Chooses how modules exchange data (default
    /// [`ConnectorMode::PubSub`]).
    pub fn connector_mode(mut self, mode: ConnectorMode) -> Self {
        self.connector_mode = mode;
        self
    }

    /// Sets the SPE channel capacity used by all pipeline queries.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Bounds the raw-data connector topics.
    pub fn raw_retention(mut self, retention: RetentionPolicy) -> Self {
        self.raw_retention = retention;
        self
    }

    /// Bounds the event connector topics.
    pub fn event_retention(mut self, retention: RetentionPolicy) -> Self {
        self.event_retention = retention;
        self
    }

    /// Persists the key-value store under `dir` (default: in-memory).
    pub fn kv_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.kv_dir = Some(dir.into());
        self
    }

    /// Sets how long connector subscribers block per poll (default
    /// 20 ms; only affects shutdown promptness, not latency).
    pub fn poll_timeout(mut self, timeout: Duration) -> Self {
        self.poll_timeout = timeout;
        self
    }

    /// Sets the SPE micro-batch size used by all pipeline queries
    /// (default 64; clamped to ≥ 1). `1` restores item-at-a-time
    /// processing — lowest latency, lowest throughput. Results are
    /// identical at every batch size; only performance changes.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Bounds how long a partially filled source batch may wait
    /// before being flushed downstream (default 5 ms). Only
    /// meaningful with [`batch_size`](Self::batch_size) > 1.
    pub fn batch_timeout(mut self, timeout: Duration) -> Self {
        self.batch_timeout = timeout;
        self
    }

    /// The configured QoS threshold.
    pub fn qos_threshold(&self) -> Duration {
        self.qos
    }

    /// The configured connector mode.
    pub fn connector_mode_value(&self) -> ConnectorMode {
        self.connector_mode.clone()
    }

    pub(crate) fn channel_capacity_value(&self) -> usize {
        self.channel_capacity
    }

    pub(crate) fn raw_retention_value(&self) -> RetentionPolicy {
        self.raw_retention
    }

    pub(crate) fn event_retention_value(&self) -> RetentionPolicy {
        self.event_retention
    }

    pub(crate) fn kv_dir_value(&self) -> Option<&PathBuf> {
        self.kv_dir.as_ref()
    }

    pub(crate) fn poll_timeout_value(&self) -> Duration {
        self.poll_timeout
    }

    pub(crate) fn batch_size_value(&self) -> usize {
        self.batch_size
    }

    pub(crate) fn batch_timeout_value(&self) -> Duration {
        self.batch_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = StrataConfig::default();
        assert_eq!(c.qos_threshold(), Duration::from_secs(3));
        assert_eq!(c.connector_mode_value(), ConnectorMode::PubSub);
    }

    #[test]
    fn builder_sets_fields() {
        let c = StrataConfig::default()
            .qos(Duration::from_millis(500))
            .connector_mode(ConnectorMode::Direct)
            .channel_capacity(0)
            .batch_size(0)
            .batch_timeout(Duration::from_millis(2));
        assert_eq!(c.qos_threshold(), Duration::from_millis(500));
        assert_eq!(c.connector_mode_value(), ConnectorMode::Direct);
        assert_eq!(c.channel_capacity_value(), 1, "clamped");
        assert_eq!(c.batch_size_value(), 1, "clamped");
        assert_eq!(c.batch_timeout_value(), Duration::from_millis(2));
    }

    #[test]
    fn batching_defaults_are_on() {
        let c = StrataConfig::default();
        assert_eq!(c.batch_size_value(), 64);
        assert_eq!(c.batch_timeout_value(), Duration::from_millis(5));
    }

    #[test]
    fn remote_mode_carries_the_address() {
        let c = StrataConfig::default().connector_mode(ConnectorMode::Remote {
            addr: "127.0.0.1:9009".into(),
        });
        assert_eq!(
            c.connector_mode_value(),
            ConnectorMode::Remote {
                addr: "127.0.0.1:9009".into()
            }
        );
    }
}
