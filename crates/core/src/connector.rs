//! The pub/sub connectors: publishing a stream into a topic and
//! subscribing a downstream module to it.
//!
//! These implement the paper's *Raw Data Connector* and *Event
//! Connector* modules: decoupled, replayable hand-off points between
//! the Raw Data Collector, the Event Monitor and the Event
//! Aggregator. Stream control (watermarks, end-of-stream) crosses the
//! broker in-band as [`ConnectorMessage`]s, so event time keeps
//! progressing on the other side.

use std::time::Duration;

use strata_net::RemoteConsumer;
use strata_pubsub::{Consumer, Producer, Record};
use strata_spe::{Element, Source, SourceContext};

use crate::codec::{self, ConnectorMessage};
use crate::tuple::AmTuple;

/// Flattens a stream element into connector wire messages. The wire
/// format stays item-level at every engine batch size: a micro-batch
/// becomes that many consecutive `Tuple` messages, so the bytes in
/// the topic are identical whether the SPE ran batched or not.
fn connector_messages(element: Element<AmTuple>) -> Vec<ConnectorMessage> {
    match element {
        Element::Item(tuple) => vec![ConnectorMessage::Tuple(tuple)],
        Element::Batch(batch) => batch
            .into_vec()
            .into_iter()
            .map(ConnectorMessage::Tuple)
            .collect(),
        Element::Watermark(ts) => vec![ConnectorMessage::Watermark(ts)],
        Element::End => vec![ConnectorMessage::End],
    }
}

/// Encodes a connector message as a topic record. Keyed by
/// `job:layer` so a future multi-partition layout would keep
/// per-layer order.
fn connector_record(message: ConnectorMessage) -> Record {
    let key = match &message {
        ConnectorMessage::Tuple(t) => {
            format!("{}:{}", t.metadata().job, t.metadata().layer)
        }
        _ => "control".to_string(),
    };
    let timestamp = match &message {
        ConnectorMessage::Tuple(t) => t.metadata().timestamp.as_millis(),
        ConnectorMessage::Watermark(ts) => ts.as_millis(),
        ConnectorMessage::End => 0,
    };
    Record::new(Some(key.into_bytes()), codec::encode(&message)).with_timestamp(timestamp)
}

/// Builds the element-sink callback that republishes a stream into
/// `topic` of the in-process broker.
pub fn publisher(
    producer: Producer,
    topic: String,
) -> impl FnMut(Element<AmTuple>) + Send + 'static {
    move |element| {
        // A send can only fail if the topic was deleted mid-run;
        // dropping the element then matches "subscriber gone".
        for message in connector_messages(element) {
            let _ = producer.send_record(&topic, connector_record(message));
        }
    }
}

/// Builds the element-sink callback that republishes a stream into
/// `topic` of a remote broker over TCP. Transient transport failures
/// are retried by the producer's reliability layer; elements that
/// still fail are dropped, like a deleted local topic.
pub fn remote_publisher(
    mut producer: strata_net::RemoteProducer,
    topic: String,
) -> impl FnMut(Element<AmTuple>) + Send + 'static {
    move |element| {
        for message in connector_messages(element) {
            let _ = producer.send_record(&topic, connector_record(message));
        }
    }
}

/// An SPE [`Source`] feeding a downstream module from a connector
/// topic: decodes tuples, re-emits watermarks, and ends when the
/// upstream's end-of-stream marker arrives.
pub struct TopicSource {
    consumer: Consumer,
    poll_timeout: Duration,
}

impl std::fmt::Debug for TopicSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopicSource")
            .field("consumer", &self.consumer)
            .finish()
    }
}

impl TopicSource {
    /// Wraps a subscribed consumer. Each downstream module uses its
    /// own consumer group, so independent pipelines each see the full
    /// stream.
    pub fn new(consumer: Consumer, poll_timeout: Duration) -> Self {
        TopicSource {
            consumer,
            poll_timeout,
        }
    }
}

impl Source for TopicSource {
    type Out = AmTuple;

    fn run(&mut self, ctx: &mut SourceContext<AmTuple>) -> Result<(), String> {
        loop {
            if ctx.should_stop() {
                return Ok(());
            }
            let records = self
                .consumer
                .poll(self.poll_timeout)
                .map_err(|e| format!("connector poll failed: {e}"))?;
            for polled in records {
                match codec::decode(&polled.record.value)
                    .map_err(|e| format!("connector decode failed: {e}"))?
                {
                    ConnectorMessage::Tuple(tuple) => {
                        if !ctx.emit(tuple) {
                            return Ok(());
                        }
                    }
                    ConnectorMessage::Watermark(ts) => {
                        if !ctx.emit_watermark(ts) {
                            return Ok(());
                        }
                    }
                    ConnectorMessage::End => return Ok(()),
                }
            }
        }
    }
}

/// An SPE [`Source`] feeding a downstream module from a connector
/// topic that lives across a TCP connection. The remote consumer
/// commits its offsets after every delivered batch, so a restarted
/// module resumes from the last batch it fully handed to the engine.
pub struct RemoteTopicSource {
    consumer: RemoteConsumer,
    poll_timeout: Duration,
}

impl std::fmt::Debug for RemoteTopicSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteTopicSource")
            .field("consumer", &self.consumer)
            .finish()
    }
}

impl RemoteTopicSource {
    /// Wraps a connected remote consumer.
    pub fn new(consumer: RemoteConsumer, poll_timeout: Duration) -> Self {
        RemoteTopicSource {
            consumer,
            poll_timeout,
        }
    }
}

impl Source for RemoteTopicSource {
    type Out = AmTuple;

    fn run(&mut self, ctx: &mut SourceContext<AmTuple>) -> Result<(), String> {
        loop {
            if ctx.should_stop() {
                let _ = self.consumer.commit();
                return Ok(());
            }
            let records = self
                .consumer
                .poll(self.poll_timeout)
                .map_err(|e| format!("remote connector poll failed: {e}"))?;
            if records.is_empty() {
                continue;
            }
            for polled in records {
                match codec::decode(&polled.record.value)
                    .map_err(|e| format!("remote connector decode failed: {e}"))?
                {
                    ConnectorMessage::Tuple(tuple) => {
                        if !ctx.emit(tuple) {
                            let _ = self.consumer.commit();
                            return Ok(());
                        }
                    }
                    ConnectorMessage::Watermark(ts) => {
                        if !ctx.emit_watermark(ts) {
                            let _ = self.consumer.commit();
                            return Ok(());
                        }
                    }
                    ConnectorMessage::End => {
                        let _ = self.consumer.commit();
                        return Ok(());
                    }
                }
            }
            // Batch fully handed to the engine: make it the resume
            // point for a successor or a reconnect.
            let _ = self.consumer.commit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_pubsub::{Broker, TopicConfig};
    use strata_spe::prelude::*;

    #[test]
    fn stream_control_round_trips_through_a_topic() {
        let broker = Broker::new();
        broker.create_topic("bridge", TopicConfig::new(1)).unwrap();
        let mut publish = publisher(broker.producer(), "bridge".into());

        let t = AmTuple::new(Timestamp::from_millis(10), 1, 0);
        publish(Element::Item(t.clone()));
        publish(Element::Watermark(Timestamp::from_millis(11)));
        publish(Element::End);

        // Drive the TopicSource manually through a collect query.
        let consumer = broker.consumer("g", &["bridge"]).unwrap();
        let mut qb = QueryBuilder::new("sub");
        let src = qb.source("in", TopicSource::new(consumer, Duration::from_millis(10)));
        let out = qb.collect_sink("out", &src);
        qb.build().unwrap().run().join().unwrap();
        let got = out.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].metadata(), t.metadata());
    }

    #[test]
    fn watermarks_drive_windows_across_the_bridge() {
        let broker = Broker::new();
        broker.create_topic("wm", TopicConfig::new(1)).unwrap();
        let mut publish = publisher(broker.producer(), "wm".into());
        for layer in 0..3u32 {
            let t = AmTuple::new(Timestamp::from_millis(layer as u64 * 100), 1, layer);
            publish(Element::Item(t));
            publish(Element::Watermark(Timestamp::from_millis(
                (layer as u64 + 1) * 100,
            )));
        }
        publish(Element::End);

        let consumer = broker.consumer("g", &["wm"]).unwrap();
        let mut qb = QueryBuilder::new("windows");
        let src = qb.source("in", TopicSource::new(consumer, Duration::from_millis(10)));
        let counts = qb.aggregate(
            "count",
            &src,
            WindowSpec::tumbling(100).unwrap(),
            |_: &AmTuple| 0u8,
            |_, bounds, items: &[AmTuple]| vec![(bounds.index, items.len())],
        );
        let out = qb.collect_sink("out", &counts);
        qb.build().unwrap().run().join().unwrap();
        assert_eq!(out.take(), vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn independent_groups_both_receive_the_stream() {
        let broker = Broker::new();
        broker.create_topic("shared", TopicConfig::new(1)).unwrap();
        let mut publish = publisher(broker.producer(), "shared".into());
        publish(Element::Item(AmTuple::new(Timestamp::MIN, 1, 0)));
        publish(Element::End);

        for group in ["monitor-a", "monitor-b"] {
            let consumer = broker.consumer(group, &["shared"]).unwrap();
            let mut qb = QueryBuilder::new(group);
            let src = qb.source("in", TopicSource::new(consumer, Duration::from_millis(10)));
            let out = qb.collect_sink("out", &src);
            qb.build().unwrap().run().join().unwrap();
            assert_eq!(out.len(), 1, "group {group}");
        }
    }

    #[test]
    fn remote_bridge_round_trips_over_tcp() {
        let broker = Broker::new();
        broker.create_topic("bridge", TopicConfig::new(1)).unwrap();
        let mut server = strata_net::BrokerServer::bind("127.0.0.1:0", broker).unwrap();
        let addr = server.local_addr().to_string();

        let producer = strata_net::RemoteProducer::connect(&addr).unwrap();
        let mut publish = remote_publisher(producer, "bridge".into());
        let t = AmTuple::new(Timestamp::from_millis(10), 1, 0);
        publish(Element::Item(t.clone()));
        publish(Element::Watermark(Timestamp::from_millis(11)));
        publish(Element::End);

        let consumer = RemoteConsumer::connect(&addr, "g", &["bridge"]).unwrap();
        let mut qb = QueryBuilder::new("sub");
        let src = qb.source(
            "in",
            RemoteTopicSource::new(consumer, Duration::from_millis(10)),
        );
        let out = qb.collect_sink("out", &src);
        qb.build().unwrap().run().join().unwrap();
        let got = out.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].metadata(), t.metadata());
        server.shutdown();
    }
}
