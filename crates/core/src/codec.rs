//! Binary codec carrying tuples (and stream-control markers) through
//! the pub/sub connectors.
//!
//! The paper's prototype moves raw OT images (8 Mb each) through
//! Kafka between modules; this codec plays the same role for the
//! in-process broker. Everything is little-endian and
//! length-prefixed; images serialize as raw pixel buffers.

use std::sync::Arc;

use strata_amsim::OtImage;
use strata_spe::Timestamp;

use crate::error::{Error, Result};
use crate::tuple::{AmTuple, Metadata, Payload, Value};

const NONE_U32: u32 = u32::MAX;

/// A message crossing a connector topic: a data tuple, an event-time
/// watermark, or the end-of-stream marker. Watermarks must travel
/// through the same ordered channel as the data they describe.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectorMessage {
    /// A data tuple.
    Tuple(AmTuple),
    /// Event time on this stream has reached the carried timestamp.
    Watermark(Timestamp),
    /// The upstream module finished; no further messages follow.
    End,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(Error::Codec(format!(
                "truncated message: wanted {n} bytes at {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

fn encode_value(w: &mut Writer, value: &Value) {
    match value {
        Value::Int(v) => {
            w.u8(0);
            w.u64(*v as u64);
        }
        Value::Float(v) => {
            w.u8(1);
            w.f64(*v);
        }
        Value::Bool(v) => {
            w.u8(2);
            w.u8(u8::from(*v));
        }
        Value::Str(v) => {
            w.u8(3);
            w.u32(v.len() as u32);
            w.bytes(v.as_bytes());
        }
        Value::Bytes(v) => {
            w.u8(4);
            w.u32(v.len() as u32);
            w.bytes(v);
        }
        Value::Image(v) => {
            w.u8(5);
            w.u32(v.width());
            w.u32(v.height());
            w.bytes(v.pixels());
        }
        Value::Rects(v) => {
            w.u8(6);
            w.u32(v.len() as u32);
            for &(id, x, y, rw, rh) in v.iter() {
                w.u32(id);
                w.u32(x);
                w.u32(y);
                w.u32(rw);
                w.u32(rh);
            }
        }
        Value::Points(v) => {
            w.u8(7);
            w.u32(v.len() as u32);
            for &(x, y) in v.iter() {
                w.f64(x);
                w.f64(y);
            }
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Int(r.u64()? as i64),
        1 => Value::Float(r.f64()?),
        2 => Value::Bool(r.u8()? != 0),
        3 => {
            let len = r.u32()? as usize;
            let s = std::str::from_utf8(r.take(len)?)
                .map_err(|_| Error::Codec("string value is not utf-8".into()))?;
            Value::Str(Arc::from(s))
        }
        4 => {
            let len = r.u32()? as usize;
            Value::Bytes(Arc::from(r.take(len)?))
        }
        5 => {
            let w = r.u32()?;
            let h = r.u32()?;
            let pixels = r.take(w as usize * h as usize)?;
            let mut image = OtImage::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    image.set(x, y, pixels[y as usize * w as usize + x as usize]);
                }
            }
            Value::Image(Arc::new(image))
        }
        6 => {
            let len = r.u32()? as usize;
            let mut rects = Vec::with_capacity(len);
            for _ in 0..len {
                rects.push((r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?));
            }
            Value::Rects(Arc::new(rects))
        }
        7 => {
            let len = r.u32()? as usize;
            let mut points = Vec::with_capacity(len);
            for _ in 0..len {
                points.push((r.f64()?, r.f64()?));
            }
            Value::Points(Arc::new(points))
        }
        other => return Err(Error::Codec(format!("unknown value tag {other}"))),
    })
}

/// Serializes a connector message.
pub fn encode(message: &ConnectorMessage) -> Vec<u8> {
    let mut w = Writer::new();
    match message {
        ConnectorMessage::Watermark(ts) => {
            w.u8(1);
            w.u64(ts.as_millis());
        }
        ConnectorMessage::End => w.u8(2),
        ConnectorMessage::Tuple(tuple) => {
            w.u8(0);
            let m = tuple.metadata();
            w.u64(m.timestamp.as_millis());
            w.u32(m.job);
            w.u32(m.layer);
            w.u32(m.specimen.unwrap_or(NONE_U32));
            w.u32(m.portion.unwrap_or(NONE_U32));
            w.u64(m.ingest_ns);
            w.u16(tuple.payload().len() as u16);
            for (key, value) in tuple.payload().iter() {
                w.u16(key.len() as u16);
                w.bytes(key.as_bytes());
                encode_value(&mut w, value);
            }
        }
    }
    w.buf
}

/// Deserializes a connector message.
///
/// # Errors
///
/// [`Error::Codec`] on truncation, unknown tags, or invalid UTF-8.
pub fn decode(data: &[u8]) -> Result<ConnectorMessage> {
    let mut r = Reader::new(data);
    match r.u8()? {
        1 => Ok(ConnectorMessage::Watermark(Timestamp::from_millis(
            r.u64()?,
        ))),
        2 => Ok(ConnectorMessage::End),
        0 => {
            let timestamp = Timestamp::from_millis(r.u64()?);
            let job = r.u32()?;
            let layer = r.u32()?;
            let specimen = match r.u32()? {
                NONE_U32 => None,
                v => Some(v),
            };
            let portion = match r.u32()? {
                NONE_U32 => None,
                v => Some(v),
            };
            let ingest_ns = r.u64()?;
            let count = r.u16()?;
            let mut payload = Payload::new();
            for _ in 0..count {
                let key_len = r.u16()? as usize;
                let key = std::str::from_utf8(r.take(key_len)?)
                    .map_err(|_| Error::Codec("payload key is not utf-8".into()))?
                    .to_string();
                let value = decode_value(&mut r)?;
                payload.set(key, value);
            }
            Ok(ConnectorMessage::Tuple(AmTuple::from_parts(
                Metadata {
                    timestamp,
                    job,
                    layer,
                    specimen,
                    portion,
                    ingest_ns,
                },
                payload,
            )))
        }
        other => Err(Error::Codec(format!("unknown message tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> AmTuple {
        let mut t = AmTuple::new(Timestamp::from_millis(1234), 7, 42)
            .with_specimen(3)
            .with_portion(99);
        t.payload_mut()
            .set_int("count", -5)
            .set_float("mean", 133.25)
            .set_bool("hot", true)
            .set_str("kind", "very_warm")
            .set("blob", Value::Bytes(Arc::from(&b"\x00\x01\x02"[..])))
            .set_image(
                "image",
                Arc::new(OtImage::from_fn(4, 3, |x, y| (x * y) as u8)),
            )
            .set_rects("layout", Arc::new(vec![(0, 1, 2, 3, 4), (1, 5, 6, 7, 8)]))
            .set_points("events", Arc::new(vec![(1.5, -2.5), (0.0, 3.125)]));
        t
    }

    #[test]
    fn tuples_round_trip() {
        let t = sample_tuple();
        let decoded = decode(&encode(&ConnectorMessage::Tuple(t.clone()))).unwrap();
        assert_eq!(decoded, ConnectorMessage::Tuple(t));
    }

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            ConnectorMessage::Watermark(Timestamp::from_millis(987)),
            ConnectorMessage::End,
        ] {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn unset_specimen_and_portion_survive() {
        let t = AmTuple::new(Timestamp::from_millis(1), 0, 0);
        let ConnectorMessage::Tuple(decoded) =
            decode(&encode(&ConnectorMessage::Tuple(t))).unwrap()
        else {
            panic!("expected tuple");
        };
        assert_eq!(decoded.metadata().specimen, None);
        assert_eq!(decoded.metadata().portion, None);
    }

    #[test]
    fn truncation_is_detected() {
        let data = encode(&ConnectorMessage::Tuple(sample_tuple()));
        for cut in [1usize, data.len() / 2, data.len() - 1] {
            assert!(
                matches!(decode(&data[..cut]), Err(Error::Codec(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(decode(&[9]), Err(Error::Codec(_))));
        assert!(matches!(decode(&[]), Err(Error::Codec(_))));
    }
}
