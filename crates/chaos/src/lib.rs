//! `strata-chaos`: deterministic fault injection for crash-safety
//! testing.
//!
//! Long builds mean long-running monitoring pipelines; the only way
//! to *know* the storage and transport layers survive crashes is to
//! inject the crashes. This crate provides the three pieces the rest
//! of the workspace threads through its write paths:
//!
//! * a process-wide **failpoint registry** ([`Scenario`], [`hit`],
//!   [`fail_point`]) — zero-cost unless built with the `failpoints`
//!   feature, deterministic via hit counters and seeded RNGs;
//! * a **chaos I/O facade** ([`ChaosFile`], [`fsync_dir`],
//!   [`simulate_crash`]) — torn writes, short writes, failed fsyncs,
//!   injected error kinds, and power-loss simulation that truncates a
//!   file to its last synced length;
//! * **net-level faults** ([`ChaosStream`]) — sever or delay a
//!   `TcpStream` at an exact byte boundary.
//!
//! Point names are dotted paths owned by the instrumented crate
//! (`kv.wal.write`, `pubsub.segment.sync`, `net.server.send`, …); the
//! facades append the final `.write`/`.sync`/`.recv`/`.send` segment.
//!
//! ```
//! use strata_chaos::{Fault, Scenario};
//!
//! let scenario = Scenario::setup();
//! scenario.fail_nth("kv.wal.sync", 3, Fault::Io(std::io::ErrorKind::Other));
//! // ... run the workload; the third WAL fsync fails, deterministically.
//! drop(scenario); // disarms everything
//! ```

pub mod net;
pub mod registry;
pub mod vfs;

pub use net::ChaosStream;
pub use registry::{fail_point, fired, hit, is_compiled, total_fired, Fault, Scenario};
pub use vfs::{fsync_dir, simulate_crash, ChaosFile};
